//! Prints an FNV-1a digest of a seeded simulation's serialized report.
//!
//! CI runs this example twice — once with and once without the `parallel` feature — and
//! diffs the output: identical digests prove that per-row threaded physics produces
//! bit-identical results. The layout is sized above the engine's parallel threshold
//! (256 servers) so the threaded path actually executes when the feature is on and more
//! than one core is available.

use tapas_repro::prelude::*;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn main() {
    // 4 aisles × 2 rows × 10 racks × 4 servers = 320 servers (above the parallel threshold).
    let mut config = ExperimentConfig::production_week(Policy::Tapas);
    config.layout.aisles = 4;
    config.duration = SimTime::from_hours(4);
    config.step = SimDuration::from_minutes(5);
    let report = ClusterSimulator::new(config).run();
    let json = serde_json_digest(&report);
    println!("report-digest: {json:#018x}");
    println!("requests-served: {}", report.requests_served);
    println!("peak-temp-milli-c: {}", (report.peak_temperature_c() * 1000.0).round());
}

fn serde_json_digest(report: &RunReport) -> u64 {
    // The report serializes deterministically (shortest-round-trip float formatting), so
    // the digest is stable across runs, builds and feature sets.
    let json = serde_json::to_string(report).expect("serializable report");
    fnv1a(json.as_bytes())
}
