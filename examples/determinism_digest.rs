//! Prints FNV-1a digests of a seeded simulation's serialized report, of one serialized
//! physics-step outcome (the dense telemetry shapes: `TempGrid`, per-level grids), of a
//! 3-datacenter fleet run's serialized `FleetReport`, and of a scenario-driven fleet run
//! (heatwave + UPS failure + grid-price spike composed via `ScenarioBuilder`).
//!
//! CI runs this example twice — once with and once without the `parallel` feature — and
//! diffs the output: identical digests prove that per-row threaded physics *and* the
//! fleet's outer across-datacenter threading produce bit-identical results, both in the
//! aggregated reports and in the raw per-step telemetry. The single-datacenter layout is
//! sized above the engine's parallel threshold (256 servers) so the threaded row path
//! actually executes when the feature is on; the fleet run uses three cells so the outer
//! dimension dispatches one scoped thread per datacenter.

use tapas_repro::prelude::*;

use dc_sim::engine::{StepInput, StepOutcome};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn main() {
    // 4 aisles × 2 rows × 10 racks × 4 servers = 320 servers (above the parallel threshold).
    let mut config = ExperimentConfig::production_week(Policy::Tapas);
    config.layout.aisles = 4;
    config.duration = SimTime::from_hours(4);
    config.step = SimDuration::from_minutes(5);

    // One raw physics step on the same layout: covers the dense telemetry shapes
    // (`TempGrid`, the per-row/PDU/UPS/aisle ordinal grids, capping directives) that the
    // report aggregates away.
    let dc = Datacenter::new(config.layout.build(), config.seed);
    let input = StepInput::uniform_load(dc.layout(), Celsius::new(33.0), 0.95);
    let outcome = dc.evaluate(&input);
    println!("outcome-digest: {:#018x}", outcome_digest(&outcome));
    println!("throttled-gpus: {}", outcome.throttled_gpu_count());

    let report = ClusterSimulator::new(config).run();
    let json = serde_json_digest(&report);
    println!("report-digest: {json:#018x}");
    println!("requests-served: {}", report.requests_served);
    println!("peak-temp-milli-c: {}", (report.peak_temperature_c() * 1000.0).round());

    // A 3-datacenter fleet under cycling climates: covers the geo routing stage, the
    // per-site weather/physics seeds and the outer across-datacenter parallel dimension.
    let fleet_base = ExperimentConfig::real_cluster_hour(Policy::Tapas)
        .with_duration(SimTime::from_hours(3))
        .with_step(SimDuration::from_minutes(5));
    let generator_base = fleet_base.clone();
    let fleet = FleetSimulator::new(FleetConfig::evaluation(fleet_base.clone(), 3)).run();
    let fleet_json = serde_json::to_string(&fleet).expect("serializable fleet report");
    println!("fleet-digest: {:#018x}", fnv1a(fleet_json.as_bytes()));
    println!("fleet-vms-routed: {:?}", fleet.vms_routed);
    println!("fleet-requests-served: {}", fleet.total_requests_served());

    // The same fleet under a composed scenario (heatwave + UPS failure + price spike):
    // covers dense scenario resolution, the weather overlay and demand-shaping paths in
    // every cell, and the price term of the geo score — all of which must also be
    // bit-identical across feature builds.
    let scenario = Scenario::builder()
        .weather(0, SimTime::ZERO, SimTime::from_hours(3), 12.0)
        .grid_price_spike(0, SimTime::ZERO, SimTime::from_hours(3), 320.0)
        .fail_ups(1, SimTime::from_hours(1), SimTime::from_hours(2), 0.75)
        .surge(SimTime::ZERO, SimTime::from_hours(2), 1.5)
        .build()
        .expect("valid digest scenario");
    let scenario_fleet = FleetSimulator::new(
        FleetConfig::evaluation(fleet_base.with_scenario(scenario), 3),
    )
    .run();
    let scenario_json =
        serde_json::to_string(&scenario_fleet).expect("serializable fleet report");
    println!("scenario-fleet-digest: {:#018x}", fnv1a(scenario_json.as_bytes()));
    println!("scenario-fleet-vms-routed: {:?}", scenario_fleet.vms_routed);
    println!(
        "scenario-fleet-requests-served: {}",
        scenario_fleet.total_requests_served()
    );

    // A *generated* adversarial scenario (every event family, including operator power
    // caps) through the same 3-site fleet: covers the seeded generator and the power-cap
    // budget-clamp hot path, which must also be bit-identical across feature builds.
    let generated = generate(
        2025,
        &GeneratorConfig {
            tier: IntensityTier::Adversarial,
            sites: 3,
            duration: generator_base.duration,
            endpoints: generator_base.endpoint_count,
        },
    );
    let generated_fleet = FleetSimulator::new(
        FleetConfig::evaluation(generator_base.with_scenario(generated), 3),
    )
    .run();
    let generated_json =
        serde_json::to_string(&generated_fleet).expect("serializable fleet report");
    println!("generated-fleet-digest: {:#018x}", fnv1a(generated_json.as_bytes()));
    println!("generated-fleet-vms-routed: {:?}", generated_fleet.vms_routed);
    println!(
        "generated-fleet-capped-minutes: {}",
        generated_fleet.power_capped_minutes().round()
    );

    // The same 3-site fleet with the request fabric enabled: covers the fleet-wide
    // event-timestamped request stream, per-request geo routing before the cells step,
    // KV-bounded continuous batching in every cell, and the per-request TTFT/TBT metric
    // blocks — all of which must also be bit-identical across feature builds.
    let fabric_base = ExperimentConfig::real_cluster_hour(Policy::Tapas)
        .with_duration(SimTime::from_hours(3))
        .with_step(SimDuration::from_minutes(5))
        .with_request_fabric(RequestFabricConfig {
            rate_scale: 0.01,
            ..RequestFabricConfig::default()
        });
    let fabric_fleet = FleetSimulator::new(FleetConfig::evaluation(fabric_base, 3)).run();
    let fabric_json =
        serde_json::to_string(&fabric_fleet).expect("serializable fleet report");
    println!("fabric-fleet-digest: {:#018x}", fnv1a(fabric_json.as_bytes()));
    let fabric_metrics = fabric_fleet.request_fabric().expect("fabric ran on every site");
    println!("fabric-requests-completed: {}", fabric_metrics.completed);
    println!(
        "fabric-slo-attainment-5x-milli: {}",
        (fabric_metrics.attainment_at(5.0) * 1000.0).round()
    );

    // A generated adversarial scenario *with replica failures* over a fabric-enabled
    // fleet, at full demand with deadline shedding on: covers the request-lifecycle
    // fault path end to end — replica-kill windows shrinking effective serving
    // capacity, LIFO preemption and eviction when the KV commitment no longer fits,
    // deterministic backoff re-delivery, deadline shedding and the lifecycle fault
    // counters — which must all be bit-identical across feature builds too.
    let chaos_base = ExperimentConfig::real_cluster_hour(Policy::Tapas)
        .with_duration(SimTime::from_hours(3))
        .with_step(SimDuration::from_minutes(5))
        .with_request_fabric(RequestFabricConfig {
            rate_scale: 2.0,
            deadline_shedding: true,
            ..RequestFabricConfig::default()
        });
    let chaos_scenario = generate(
        4242,
        &GeneratorConfig {
            tier: IntensityTier::Adversarial,
            sites: 3,
            duration: chaos_base.duration,
            endpoints: chaos_base.endpoint_count,
        },
    );
    let chaos_fleet = FleetSimulator::new(
        FleetConfig::evaluation(chaos_base.with_scenario(chaos_scenario), 3),
    )
    .run();
    let chaos_json = serde_json::to_string(&chaos_fleet).expect("serializable fleet report");
    println!("chaos-fabric-fleet-digest: {:#018x}", fnv1a(chaos_json.as_bytes()));
    let chaos_metrics = chaos_fleet.request_fabric().expect("fabric ran on every site");
    let lifecycle = chaos_metrics.lifecycle;
    println!("chaos-fabric-arrived: {}", lifecycle.arrived);
    println!(
        "chaos-fabric-outcomes: completed={} shed={} timeouts={} in-flight={}",
        chaos_metrics.completed, lifecycle.shed, lifecycle.timeouts,
        lifecycle.in_flight_at_horizon
    );
    println!("chaos-fabric-preemptions: {}", lifecycle.preemptions);
}

fn serde_json_digest(report: &RunReport) -> u64 {
    // The report serializes deterministically (shortest-round-trip float formatting), so
    // the digest is stable across runs, builds and feature sets.
    let json = serde_json::to_string(report).expect("serializable report");
    fnv1a(json.as_bytes())
}

fn outcome_digest(outcome: &StepOutcome) -> u64 {
    let json = serde_json::to_string(outcome).expect("serializable outcome");
    fnv1a(json.as_bytes())
}
