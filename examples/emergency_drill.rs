//! Emergency drill: inject a UPS failure (power capacity drops to 75 %) and a cooling failure
//! (90 %) in the middle of a busy day and compare how the Baseline and TAPAS absorb them —
//! the scenario behind Table 2 and §5.4.
//!
//! Run with:
//! ```text
//! cargo run --release --example emergency_drill
//! ```

use cluster_sim::emergency::run_table2;
use tapas_repro::prelude::*;

fn main() {
    println!("Emergency drill: cooling and power failures on a loaded cluster\n");

    // Part 1: the closed-form Table 2 comparison (per-instance view).
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let table = run_table2(&profiles, 0.5);
    println!("Per-instance response (Table 2 shape):");
    println!("  power emergency  — Baseline: IaaS {:.0} %, SaaS {:.0} % perf, 0 % quality", table.power_baseline.iaas_perf_pct, table.power_baseline.saas_perf_pct);
    println!("  power emergency  — TAPAS   : IaaS {:.0} % perf, SaaS quality {:.0} %", table.power_tapas.iaas_perf_pct, table.power_tapas.saas_quality_pct);
    println!("  thermal emergency— Baseline: IaaS {:.0} %, SaaS {:.0} % perf", table.thermal_baseline.iaas_perf_pct, table.thermal_baseline.saas_perf_pct);
    println!("  thermal emergency— TAPAS   : IaaS {:.0} % perf, SaaS quality {:.0} %", table.thermal_tapas.iaas_perf_pct, table.thermal_tapas.saas_quality_pct);

    // Part 2: end-to-end simulation with the failure window injected mid-run, composed
    // through the scenario API (`Scenario::power_emergency` is the Table 2 preset).
    println!("\nEnd-to-end replay with a power emergency from hour 6 to hour 9:");
    for policy in [Policy::Baseline, Policy::Tapas] {
        let config = ExperimentConfig::medium(policy)
            .with_duration(SimTime::from_hours(12))
            .with_scenario(Scenario::power_emergency(
                SimTime::from_hours(6),
                SimTime::from_hours(9),
            ));
        let report = ClusterSimulator::new(config).run();
        println!(
            "  {:<10} power-capped {:6.2} % of the time, thermal-capped {:6.2} %, quality {:.3}",
            policy.label(),
            report.power_capped_time_fraction() * 100.0,
            report.thermal_capped_time_fraction() * 100.0,
            report.mean_quality()
        );
    }
    println!("\n(TAPAS routes around constrained servers and reconfigures SaaS instances; the Baseline can only cap.)");
}
