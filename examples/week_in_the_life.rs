//! A week in the life of a GPU datacenter: run the ablation matrix (Baseline, each TAPAS
//! mechanism alone, and full TAPAS) on a two-day replay and print the normalized thermal and
//! power peaks — a scaled-down version of Fig. 19/20.
//!
//! Run with:
//! ```text
//! cargo run --release --example week_in_the_life
//! ```

use tapas_repro::prelude::*;

fn main() {
    println!("Policy ablation on the two-row cluster (two days, 10-minute steps)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>14}",
        "policy", "norm. temp", "norm. power", "quality", "SLO", "reconfigs"
    );

    for policy in Policy::ALL {
        let report = ClusterSimulator::new(ExperimentConfig::medium(policy)).run();
        let reconfigs = report
            .events
            .count(simkit::events::EventKind::InstanceReconfigured);
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>14}",
            policy.label(),
            report.normalized_peak_temperature(),
            report.normalized_peak_power(),
            report.mean_quality(),
            report.slo_attainment(),
            reconfigs
        );
    }

    println!("\nExpected shape (Fig. 20): every mechanism helps on its own, pairs help more, and");
    println!("full TAPAS achieves the largest reductions in both the thermal and the power peak.");
}
