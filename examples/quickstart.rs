//! Quickstart: simulate one hour of the two-row GPU cluster under the Baseline and under
//! TAPAS, and print how much the thermal and power peaks shrink.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tapas_repro::prelude::*;

fn main() {
    println!("TAPAS quickstart: 80 A100 servers, 1 hour, 50/50 IaaS/SaaS mix\n");

    let baseline = ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Baseline)).run();
    let tapas = ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Tapas)).run();

    for report in [&baseline, &tapas] {
        println!("{}", report.one_liner());
    }

    let temp_change = (tapas.peak_temperature_c() / baseline.peak_temperature_c() - 1.0) * 100.0;
    let power_change = (tapas.peak_row_power_kw() / baseline.peak_row_power_kw() - 1.0) * 100.0;
    println!("\nTAPAS vs Baseline:");
    println!("  peak GPU temperature : {temp_change:+.1} %");
    println!("  peak row power       : {power_change:+.1} %");
    println!("  SLO attainment       : {:.3} -> {:.3}", baseline.slo_attainment(), tapas.slo_attainment());
    println!("  mean result quality  : {:.3} -> {:.3}", baseline.mean_quality(), tapas.mean_quality());
    println!("\n(The paper's real-cluster experiment reports ≈20 % lower peak power with unchanged latency and quality.)");
}
