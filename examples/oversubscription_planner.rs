//! Oversubscription planner: how many extra racks can this datacenter absorb before thermal
//! or power capping becomes significant? This is the provisioning question Fig. 21 answers —
//! the paper finds TAPAS makes ≈40 % additional capacity safe.
//!
//! Run with:
//! ```text
//! cargo run --release --example oversubscription_planner
//! ```

use cluster_sim::oversubscription::sweep;
use tapas_repro::prelude::*;

fn main() {
    println!("Oversubscription planner (two-row cluster, one-day replay per point)\n");
    let mut base = ExperimentConfig::medium(Policy::Baseline);
    base.duration = SimTime::from_days(1);

    let levels = [0.0, 0.1, 0.2, 0.3, 0.4];
    let baseline = sweep(&base, Policy::Baseline, &levels);
    let tapas = sweep(&base, Policy::Tapas, &levels);

    println!(
        "{:>8} | {:>22} | {:>22}",
        "extra %", "Baseline capped (th/pw %)", "TAPAS capped (th/pw %)"
    );
    let mut safe_baseline = 0.0;
    let mut safe_tapas = 0.0;
    for (b, t) in baseline.iter().zip(&tapas) {
        println!(
            "{:>8.0} | {:>10.2} / {:>9.2} | {:>10.2} / {:>9.2}",
            b.oversubscription * 100.0,
            b.thermal_capped_fraction * 100.0,
            b.power_capped_fraction * 100.0,
            t.thermal_capped_fraction * 100.0,
            t.power_capped_fraction * 100.0
        );
        let capped_b = b.thermal_capped_fraction.max(b.power_capped_fraction);
        let capped_t = t.thermal_capped_fraction.max(t.power_capped_fraction);
        if capped_b <= 0.007 {
            safe_baseline = b.oversubscription;
        }
        if capped_t <= 0.007 {
            safe_tapas = t.oversubscription;
        }
    }
    println!(
        "\nLargest level with capping below 0.7 % of the time: Baseline {:.0} %, TAPAS {:.0} %",
        safe_baseline * 100.0,
        safe_tapas * 100.0
    );
    println!("(The paper reports TAPAS sustains up to 40 % additional servers at < 0.7 % capping.)");
}
