//! Offline vendored serde facade.
//!
//! The build environment has no crates.io access, so the workspace vendors a small,
//! self-consistent serialization framework under the `serde` name. Instead of upstream
//! serde's visitor-based data model, types convert to and from a single [`Value`] tree; the
//! companion `serde_json` shim renders and parses that tree as JSON. The derive macros in
//! `serde_derive` generate the same struct/enum encodings upstream serde uses (externally
//! tagged enums, transparent newtypes), so JSON produced here is shaped like real serde JSON
//! for the types this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A dynamically typed serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map of string keys to values.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    ///
    /// # Errors
    /// Returns an error if `self` is not a map or the key is missing.
    pub fn get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!("expected map for `{key}`, got {}", other.kind()))),
        }
    }

    /// The sequence elements, if `self` is a sequence.
    ///
    /// # Errors
    /// Returns an error if `self` is not a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!("expected sequence, got {}", other.kind()))),
        }
    }

    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    /// Returns an error if the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                match value {
                    Value::U64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::new("integer out of range")),
                    Value::I64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::new("integer out of range")),
                    other => Err(Error::new(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_precision_loss)]
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(v) => Ok(v.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq()?;
        if items.len() != 2 {
            return Err(Error::new("expected a 2-element sequence"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq()?;
        if items.len() != 3 {
            return Err(Error::new("expected a 3-element sequence"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize
    for (A, B, C, D)
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq()?;
        if items.len() != 4 {
            return Err(Error::new("expected a 4-element sequence"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
            D::from_value(&items[3])?,
        ))
    }
}

// Maps are encoded as sequences of `[key, value]` pairs so that non-string keys (e.g. the
// id newtypes of this workspace) round-trip without a string conversion.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()?
            .iter()
            .map(|entry| {
                let pair = entry.as_seq()?;
                if pair.len() != 2 {
                    return Err(Error::new("expected a [key, value] pair"));
                }
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        assert_eq!(BTreeMap::<u64, String>::from_value(&m.to_value()).unwrap(), m);
        let pair = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn errors_name_the_problem() {
        let err = Value::Str("x".into()).get("field").unwrap_err();
        assert!(err.to_string().contains("expected map"));
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
    }
}
