//! Offline vendored ChaCha8-based RNG.
//!
//! Implements the real ChaCha8 stream cipher keystream (IETF variant with a 64-bit block
//! counter and zero nonce) behind the `rand` shim traits. Deterministic and portable; not
//! guaranteed bit-compatible with the upstream `rand_chacha` crate, which this workspace does
//! not require — only self-consistent reproducibility.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// "expand 32-byte k" in little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    /// Next unread 32-bit word in `buffer`; `BLOCK_WORDS` means the buffer is exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The 32-byte seed this stream was created from.
    #[must_use]
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self { seed, key, counter: 0, buffer: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            for (d, s) in chunk.iter_mut().zip(bytes) {
                *d = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 2);
    }

    #[test]
    fn seed_round_trips() {
        let rng = ChaCha8Rng::seed_from_u64(7);
        let seed = rng.get_seed();
        let mut c = ChaCha8Rng::from_seed(seed);
        let mut d = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.next_u64().count_ones();
        }
        let total = 1024 * 64;
        let fraction = f64::from(ones) / f64::from(total);
        assert!((fraction - 0.5).abs() < 0.01, "bit balance {fraction}");
    }
}
