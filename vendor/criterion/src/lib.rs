//! Offline vendored micro-benchmark harness.
//!
//! Exposes the subset of the criterion API this workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group`, `sample_size`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box`. Timing uses `std::time::Instant` with a warm-up
//! pass, adaptive per-sample iteration counts and a median-of-samples report. Supports the
//! cargo-bench CLI surface the workspace's CI relies on: `--test` runs each benchmark once
//! (smoke mode), positional arguments filter benchmarks by substring, and
//! `CRITERION_OUT=<path>` appends machine-readable JSON result lines for baseline snapshots.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-benchmark measurement settings and CLI state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filters = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        Self { sample_size: 50, test_mode, filters }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the measurement time; accepted for API compatibility (the adaptive sampler
    /// already bounds total time).
    #[must_use]
    pub fn measurement_time(self, _duration: Duration) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and optional settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(2));
        self
    }

    /// Sets the measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            samples_ns: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: find an iteration count that makes one sample take
        // roughly 5 ms, bounding total benchmark time while keeping timer noise small.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 24 {
                break;
            }
            let target = Duration::from_millis(5).as_nanos() as f64;
            let measured = elapsed.as_nanos().max(1) as f64;
            let scale = (target / measured).clamp(2.0, 100.0);
            iters_per_sample = ((iters_per_sample as f64) * scale) as u64;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        if let Ok(path) = std::env::var("CRITERION_OUT") {
            if let Ok(mut file) =
                std::fs::OpenOptions::new().create(true).append(true).open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\":\"{name}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1}}}"
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion { sample_size: 3, test_mode: false, filters: Vec::new() };
        let mut ran = 0u64;
        criterion.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut criterion = Criterion {
            sample_size: 3,
            test_mode: false,
            filters: vec!["other".to_string()],
        };
        let mut ran = false;
        criterion.bench_function("name", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut criterion = Criterion { sample_size: 50, test_mode: true, filters: Vec::new() };
        let mut count = 0u64;
        criterion.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
