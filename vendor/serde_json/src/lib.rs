//! Offline vendored JSON support for the serde facade.
//!
//! Renders and parses the facade's [`serde::Value`] tree as JSON. Numbers use Rust's
//! shortest-round-trip float formatting, so `to_string` → `from_str` reproduces every finite
//! `f64` exactly. Maps are rendered as JSON objects; sequence-of-pairs trees produced by the
//! facade's `BTreeMap` encoding stay sequences, which keeps non-string keys lossless.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to a compact JSON string.
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
///
/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize a non-finite number"));
            }
            // Rust's Display for f64 prints the shortest string that round-trips.
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!("unexpected input at byte {}: {other:?}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep multi-byte UTF-8 intact.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in sequence")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in map")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&72.25f64).unwrap(), "72.25");
        let back: f64 = from_str("72.25").unwrap();
        assert_eq!(back, 72.25);
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, 2.0, -3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,2,-3.25]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains("\n  1"));
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let s = "héllo \"wörld\" \t✓".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
