//! Offline vendored shim of the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors the trait surface
//! (`RngCore`, `SeedableRng`, `Rng`) it relies on. The implementations are self-consistent and
//! deterministic but make no attempt to be bit-compatible with upstream `rand`; every consumer
//! in this workspace only requires reproducibility against itself.

#![allow(clippy::module_name_repetitions)]

use std::ops::Range;

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
    impl Sealed for bool {}
}

/// Types that can be sampled uniformly from a generator (`Rng::gen`).
pub trait Standard: sealed::Sealed + Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`Rng::gen_range`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Unbiased bounded sampling by rejection over the widest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + (v % span) as usize;
            }
        }
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + v % span;
            }
        }
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a sample of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform sample from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                for (d, s) in chunk.iter_mut().zip(bytes) {
                    *d = s;
                }
            }
        }
    }

    #[test]
    fn f64_samples_stay_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
        }
    }
}
