//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde facade.
//!
//! Implements the derive by walking the raw token stream directly (the build environment has
//! no `syn`/`quote`), supporting the item shapes this workspace uses: structs with named
//! fields, tuple structs (serialized transparently when they have one field, as upstream
//! serde does for newtypes), and enums with unit, newtype-tuple and struct variants encoded
//! with external tagging. Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item being derived.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().expect("valid compile_error")
}

/// Skips a run of outer attributes (`#[...]`), returning the index of the next token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on top-level commas, tracking angle-bracket depth so commas inside
/// generic arguments (e.g. `BTreeMap<K, V>`) do not split.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses named fields from the tokens inside a brace group. Returns field names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level_commas(tokens) {
        let mut i = skip_attrs(&part, 0);
        i = skip_vis(&part, i);
        match part.get(i) {
            Some(TokenTree::Ident(ident)) => names.push(ident.to_string()),
            Some(other) => return Err(format!("unexpected token in field list: {other}")),
            None => {}
        }
    }
    Ok(names)
}

fn parse_item(input: &TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic item `{name}` is not supported by the vendored derive"));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::NamedStruct { name, fields: parse_named_fields(&body)? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct { name, arity: split_top_level_commas(&body).len() })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for part in split_top_level_commas(&body) {
                    let j = skip_attrs(&part, 0);
                    let Some(TokenTree::Ident(ident)) = part.get(j) else {
                        if part.is_empty() {
                            continue;
                        }
                        return Err(format!("unexpected variant tokens: {part:?}"));
                    };
                    let variant_name = ident.to_string();
                    let kind = match part.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Struct(parse_named_fields(&inner)?)
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Tuple(split_top_level_commas(&inner).len())
                        }
                        _ => VariantKind::Unit,
                    };
                    variants.push(Variant { name: variant_name, kind });
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Generates the `Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(&input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Seq(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), {inner})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Generates the `Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(&input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(value.get({f:?})?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                    .to_string()
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_seq()?;\n\
                     if items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::new(\
                             \"wrong tuple arity\"));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self({}))",
                    elems.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname})"
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Tuple(arity) if *arity == 1 => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                     let items = inner.as_seq()?;\n\
                                     if items.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::new(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.get({f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {} }})",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Unit => unreachable!("filtered above"),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::Error::new(\
                                         ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected enum, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                if unit_arms.is_empty() {
                    "#[allow(unreachable_patterns)] _ if false => ::std::unreachable!(),"
                        .to_string()
                } else {
                    unit_arms.join(",\n") + ","
                },
                if tagged_arms.is_empty() {
                    "#[allow(unreachable_patterns)] _ if false => ::std::unreachable!(),"
                        .to_string()
                } else {
                    tagged_arms.join(",\n") + ","
                }
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
