//! Cooling and power emergency response (§4.4, §5.4).
//!
//! When an AHU or cooling device fails the datacenter must live with ≈90 % of its cooling
//! capacity; when a UPS fails (4N/3 redundancy) the usable power capacity drops to 75 %. The
//! **Baseline** responds the only way a thermal/power-oblivious system can: it applies a
//! uniform frequency cap to every server at the affected level until the draw fits, hurting
//! IaaS and SaaS alike. **TAPAS** instead recomputes the budgets, steers requests away from
//! constrained servers and reconfigures SaaS instances (accepting a bounded quality loss) so
//! that IaaS VMs keep running at full frequency; it only power-caps IaaS VMs if all of that
//! is still insufficient.

use crate::configurator::{InstanceConfigurator, InstanceLimits};
use crate::profiles::ProfileStore;
use llm_sim::config::InstanceConfig;
use serde::{Deserialize, Serialize};
use simkit::units::{Kilowatts, Watts};

/// The kind of emergency being handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmergencyKind {
    /// Power capacity reduced (UPS failure): the affected domain must shed power.
    Power,
    /// Cooling capacity reduced (AHU / cooling-device failure): the affected domain must shed
    /// heat, which for air-cooled GPUs also means shedding power.
    Thermal,
}

/// A summary of how an emergency was absorbed across the IaaS and SaaS populations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergencyPlan {
    /// The emergency kind.
    pub kind: EmergencyKind,
    /// Fraction of nominal frequency IaaS servers are capped to (1.0 = unaffected).
    pub iaas_frequency_cap: f64,
    /// Fraction of nominal frequency SaaS servers are capped to (only used by the Baseline).
    pub saas_frequency_cap: f64,
    /// New configuration applied to SaaS instances (TAPAS only).
    pub saas_config: Option<InstanceConfig>,
    /// Average result-quality factor across SaaS requests after the response (1.0 = no
    /// impact).
    pub saas_quality: f64,
    /// Relative SaaS goodput after the response compared to before (can exceed 1.0 when the
    /// replacement configuration is faster than the original).
    pub saas_goodput_ratio: f64,
}

impl EmergencyPlan {
    /// Performance impact on IaaS workloads, expressed as the paper does in Table 2 (negative
    /// percentage of lost frequency).
    #[must_use]
    pub fn iaas_perf_impact_pct(&self) -> f64 {
        (self.iaas_frequency_cap - 1.0) * 100.0
    }

    /// Performance impact on SaaS workloads (percentage change of goodput).
    #[must_use]
    pub fn saas_perf_impact_pct(&self) -> f64 {
        (self.saas_goodput_ratio - 1.0) * 100.0
    }

    /// Quality impact on SaaS workloads (negative percentage).
    #[must_use]
    pub fn saas_quality_impact_pct(&self) -> f64 {
        (self.saas_quality - 1.0) * 100.0
    }
}

/// Computes emergency responses for the Baseline and for TAPAS.
#[derive(Debug, Clone)]
pub struct EmergencyResponder {
    /// The configurator used to pick replacement SaaS configurations.
    pub configurator: InstanceConfigurator,
}

impl EmergencyResponder {
    /// Creates a responder with the endpoint quality SLO used during emergencies.
    #[must_use]
    pub fn new(quality_slo: f64) -> Self {
        Self { configurator: InstanceConfigurator::new(quality_slo) }
    }

    /// The Baseline response: a uniform frequency cap on every server (IaaS and SaaS) chosen
    /// so the aggregate power fits the reduced capacity.
    ///
    /// A sizeable share of server power is static (idle components, leakage, memory), and the
    /// dynamic share of mixed inference workloads responds roughly linearly to the clock cap
    /// in practice (the memory-bound phases barely speed up with frequency, so operators must
    /// cap clocks deeply to shed real power). The cap needed to reach a power fraction `r` is
    /// therefore `(r − s) / (1 − s)` with `s` the static fraction — which reproduces the
    /// ≈35 % uniform caps Table 2 reports for the 75 % power emergency.
    #[must_use]
    pub fn baseline_response(&self, kind: EmergencyKind, capacity_fraction: f64) -> EmergencyPlan {
        let r = capacity_fraction.clamp(0.1, 1.0);
        let static_fraction = 0.35; // idle + static power that frequency cannot shed
        let cap = if r >= 1.0 {
            1.0
        } else {
            ((r - static_fraction) / (1.0 - static_fraction)).clamp(0.05, 1.0)
        };
        // The uniform cap slows decode roughly linearly with the compute-bound share and
        // prefill fully; the paper reports SaaS hurt slightly less than IaaS.
        let saas_goodput_ratio = 0.3 + 0.7 * cap;
        EmergencyPlan {
            kind,
            iaas_frequency_cap: cap,
            saas_frequency_cap: cap,
            saas_config: None,
            saas_quality: 1.0,
            saas_goodput_ratio,
        }
    }

    /// The TAPAS response: leave IaaS untouched and absorb the entire reduction by
    /// reconfiguring SaaS instances within the new per-server budgets.
    ///
    /// `saas_fraction` is the fraction of affected servers that run SaaS (the flexibility
    /// TAPAS has to work with); `nominal_server_power` and `nominal_goodput` describe the SaaS
    /// instances before the emergency.
    #[must_use]
    pub fn tapas_response(
        &self,
        kind: EmergencyKind,
        capacity_fraction: f64,
        saas_fraction: f64,
        current_config: &InstanceConfig,
        profiles: &ProfileStore,
    ) -> EmergencyPlan {
        let r = capacity_fraction.clamp(0.1, 1.0);
        let saas_fraction = saas_fraction.clamp(0.01, 1.0);
        let current_profile = profiles
            .llm
            .profiles
            .iter()
            .find(|p| p.config == *current_config)
            .copied()
            .unwrap_or_else(|| {
                llm_sim::profile::ConfigProfile::build(
                    current_config,
                    &llm_sim::hardware::GpuHardware::a100(),
                )
            });
        let nominal_server_power = current_profile.blended_server_power(0.7);
        let nominal_goodput = current_profile.goodput_tokens_per_s;

        // The whole reduction (1 − r) of the affected domain must come out of the SaaS share:
        // SaaS servers must drop to `1 − (1 − r)/saas_fraction` of their nominal power.
        let saas_power_fraction = (1.0 - (1.0 - r) / saas_fraction).max(0.1);
        let limits = InstanceLimits {
            max_gpu_power: Watts::new(f64::MAX),
            max_server_power: Kilowatts::new(nominal_server_power.value() * saas_power_fraction),
            demand_tokens_per_s: nominal_goodput * 0.5,
        };
        let decision = self.configurator.select(current_config, &limits, profiles);
        EmergencyPlan {
            kind,
            iaas_frequency_cap: 1.0,
            saas_frequency_cap: 1.0,
            saas_config: Some(decision.config),
            saas_quality: decision.profile.quality / current_profile.quality.max(1e-9),
            saas_goodput_ratio: decision.profile.goodput_tokens_per_s / nominal_goodput.max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;

    fn profiles() -> ProfileStore {
        let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 42);
        ProfileStore::offline_profiling(&dc, &GpuHardware::a100())
    }

    #[test]
    fn baseline_power_emergency_caps_everyone() {
        let responder = EmergencyResponder::new(0.85);
        let plan = responder.baseline_response(EmergencyKind::Power, 0.75);
        // Table 2: the Baseline applies uniform caps of up to ≈35 %, hurting IaaS and SaaS.
        assert!(plan.iaas_frequency_cap < 0.95);
        assert!(plan.iaas_frequency_cap > 0.5);
        assert_eq!(plan.iaas_frequency_cap, plan.saas_frequency_cap);
        assert!(plan.iaas_perf_impact_pct() < -10.0);
        assert!(plan.saas_perf_impact_pct() < -10.0);
        assert_eq!(plan.saas_quality_impact_pct(), 0.0, "baseline never touches quality");
        assert!(plan.saas_config.is_none());
    }

    #[test]
    fn baseline_thermal_emergency_is_milder_than_power() {
        let responder = EmergencyResponder::new(0.85);
        let power = responder.baseline_response(EmergencyKind::Power, 0.75);
        let thermal = responder.baseline_response(EmergencyKind::Thermal, 0.9);
        assert!(thermal.iaas_frequency_cap > power.iaas_frequency_cap);
        assert!(thermal.iaas_perf_impact_pct() > power.iaas_perf_impact_pct());
        // No reduction means no cap.
        let none = responder.baseline_response(EmergencyKind::Thermal, 1.0);
        assert_eq!(none.iaas_frequency_cap, 1.0);
    }

    #[test]
    fn tapas_power_emergency_spares_iaas_and_trades_quality() {
        let profiles = profiles();
        let responder = EmergencyResponder::new(0.85);
        let plan = responder.tapas_response(
            EmergencyKind::Power,
            0.75,
            0.5,
            &InstanceConfig::default_70b(),
            &profiles,
        );
        // Table 2: TAPAS keeps IaaS at full performance.
        assert_eq!(plan.iaas_frequency_cap, 1.0);
        assert_eq!(plan.iaas_perf_impact_pct(), 0.0);
        // SaaS absorbs the cut by reconfiguring; quality may drop but stays bounded.
        assert!(plan.saas_config.is_some());
        assert!(plan.saas_quality <= 1.0);
        assert!(plan.saas_quality >= 0.8, "quality loss should stay bounded, got {}", plan.saas_quality);
    }

    #[test]
    fn tapas_thermal_emergency_needs_smaller_quality_sacrifice_than_power() {
        let profiles = profiles();
        let responder = EmergencyResponder::new(0.85);
        let power = responder.tapas_response(
            EmergencyKind::Power,
            0.75,
            0.5,
            &InstanceConfig::default_70b(),
            &profiles,
        );
        let thermal = responder.tapas_response(
            EmergencyKind::Thermal,
            0.9,
            0.5,
            &InstanceConfig::default_70b(),
            &profiles,
        );
        // The milder thermal emergency (90 % capacity) costs less quality than the power one
        // (75 % capacity), matching the 6 % vs 12 % split in Table 2.
        assert!(thermal.saas_quality >= power.saas_quality);
        assert_eq!(thermal.iaas_frequency_cap, 1.0);
    }

    #[test]
    fn more_saas_flexibility_means_gentler_per_instance_cuts() {
        let profiles = profiles();
        let responder = EmergencyResponder::new(0.85);
        let scarce = responder.tapas_response(
            EmergencyKind::Power,
            0.75,
            0.3,
            &InstanceConfig::default_70b(),
            &profiles,
        );
        let plentiful = responder.tapas_response(
            EmergencyKind::Power,
            0.75,
            1.0,
            &InstanceConfig::default_70b(),
            &profiles,
        );
        assert!(plentiful.saas_quality >= scarce.saas_quality);
        assert!(plentiful.saas_goodput_ratio >= scarce.saas_goodput_ratio);
    }
}
