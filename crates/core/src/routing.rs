//! LLM inference request routing (§4.2, §4.5 "Load Balancer").
//!
//! Each SaaS endpoint routes its requests across its VM instances. The baseline router is the
//! conventional latency-oriented policy: send the request to the instance with the fewest
//! outstanding requests. The TAPAS router first *filters out* instances with a high risk of
//! violating one of the three operational limits — aisle airflow, row power, or server GPU
//! temperature — using the profiled models and the current (cached, periodically refreshed)
//! infrastructure state, and then applies the state-of-the-art ordering: (1) KV-cache
//! affinity (prefer an instance that recently served the same customer), (2) energy
//! concentration (prefer busier instances below a utilization knee so idle instances can stay
//! quiet), (3) spread for performance.
//!
//! # Hot path
//!
//! The simulator routes millions of request quanta per experiment, so the router has two
//! entry points. The [`RequestRouterPolicy`] trait keeps the snapshot-slice API for tests and
//! ad-hoc callers. The hot path routes over a [`CandidateSource`] (a struct-of-arrays view of
//! an endpoint's instances maintained incrementally by the caller) with a
//! [`PreparedRoutingContext`] that pre-computes per-row/per-aisle headrooms and memoizes
//! per-server inlet predictions in a [`RouterScratch`], returning a candidate *index* so the
//! caller can update its registry in O(1). Both entry points share one generic decision core,
//! so the policy cannot diverge between them.

use crate::profiles::ProfileStore;
use dc_sim::ids::ServerId;
use llm_sim::config::InstanceConfig;
use llm_sim::request::{CustomerId, InferenceRequest};
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts};
use workload::vm::VmId;

/// Length of the per-instance recent-customer window used for KV-affinity scoring.
pub const RECENT_WINDOW: usize = 32;

/// A bounded ring of recently served customers.
///
/// Mirrors the instance runtime's bounded window: pushes evict the oldest entry once the
/// window is full, and affinity checks scan at most [`RECENT_WINDOW`] entries, so the scoring
/// cost cannot drift upward over long simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecentWindow {
    items: Vec<CustomerId>,
    head: usize,
    /// 128-bit Bloom filter over the window (split into two words so the offline serde
    /// facade can encode it); lets most negative affinity checks skip the scan.
    mask_lo: u64,
    mask_hi: u64,
}

impl Default for RecentWindow {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn customer_bit(customer: CustomerId) -> (u64, u64) {
    let hash = customer.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57;
    if hash < 64 {
        (1u64 << hash, 0)
    } else {
        (0, 1u64 << (hash - 64))
    }
}

impl RecentWindow {
    /// An empty window.
    #[must_use]
    pub fn new() -> Self {
        Self { items: Vec::with_capacity(RECENT_WINDOW), head: 0, mask_lo: 0, mask_hi: 0 }
    }

    /// Records a served customer, evicting the oldest entry when full.
    pub fn push(&mut self, customer: CustomerId) {
        if self.items.len() < RECENT_WINDOW {
            self.items.push(customer);
            let (lo, hi) = customer_bit(customer);
            self.mask_lo |= lo;
            self.mask_hi |= hi;
        } else {
            self.items[self.head] = customer;
            self.head = (self.head + 1) % RECENT_WINDOW;
            // An entry was evicted: rebuild the filter over the surviving window. This runs
            // once per routed quantum (for one window), not per affinity check.
            self.mask_lo = 0;
            self.mask_hi = 0;
            for &item in &self.items {
                let (lo, hi) = customer_bit(item);
                self.mask_lo |= lo;
                self.mask_hi |= hi;
            }
        }
    }

    /// Returns `true` if the customer is within the window.
    #[inline]
    #[must_use]
    pub fn contains(&self, customer: CustomerId) -> bool {
        let (lo, hi) = customer_bit(customer);
        if self.mask_lo & lo == 0 && self.mask_hi & hi == 0 {
            return false;
        }
        self.items.contains(&customer)
    }

    /// Number of recorded customers (at most [`RECENT_WINDOW`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no customer was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A snapshot of one SaaS instance the router can send requests to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// The VM running the instance.
    pub vm: VmId,
    /// The server hosting it.
    pub server: ServerId,
    /// Requests currently queued or running on the instance.
    pub outstanding_requests: usize,
    /// Current mean GPU utilization of the instance in `[0, 1]`.
    pub utilization: f64,
    /// Customers whose KV cache is likely still resident (recently served).
    pub recent_customers: Vec<CustomerId>,
    /// The instance's current configuration.
    pub config: InstanceConfig,
    /// Whether the instance is currently unavailable (e.g. reloading after a
    /// reconfiguration, §4.3).
    pub in_transition: bool,
}

/// The infrastructure state the router consults (recomputed every few minutes, §4.2).
///
/// Per-row power and per-aisle airflow are dense vectors indexed by `RowId::index` /
/// `AisleId::index`, matching the carry-over state the simulator maintains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingContext {
    /// Current outside temperature.
    pub outside_temp: Celsius,
    /// Current normalized datacenter load.
    pub dc_load: f64,
    /// Current power draw per row, indexed by `RowId::index`.
    pub row_power: Vec<Kilowatts>,
    /// Current airflow demand per aisle, indexed by `AisleId::index`.
    pub aisle_airflow: Vec<CubicFeetPerMinute>,
}

impl RoutingContext {
    /// A context with every row and aisle at the given fill fractions of their budgets.
    #[must_use]
    pub fn uniform(
        profiles: &ProfileStore,
        outside_temp: Celsius,
        dc_load: f64,
        row_fill: f64,
        aisle_fill: f64,
    ) -> Self {
        Self {
            outside_temp,
            dc_load,
            row_power: profiles
                .budgets
                .row_power
                .values()
                .map(|&b| b * row_fill)
                .collect(),
            aisle_airflow: profiles
                .budgets
                .aisle_airflow
                .values()
                .map(|&b| b * aisle_fill)
                .collect(),
        }
    }
}

/// A struct-of-arrays view over one endpoint's routable instances.
///
/// All slices have equal length; index `i` describes one instance. The caller (the cluster
/// simulator's instance registry) maintains these columns incrementally and updates them in
/// place as quanta are routed.
#[derive(Debug)]
pub struct CandidateView<'a> {
    /// VM ids.
    pub vm: &'a [VmId],
    /// Hosting servers.
    pub server: &'a [ServerId],
    /// Outstanding request counts.
    pub outstanding: &'a [u32],
    /// Current utilizations.
    pub utilization: &'a [f64],
    /// Transition (reload) flags.
    pub in_transition: &'a [bool],
    /// Recent-customer windows.
    pub recent: &'a [RecentWindow],
}

/// Anything the routing core can draw candidates from.
pub trait CandidateSource {
    /// Number of candidates.
    fn len(&self) -> usize;
    /// Returns `true` if there are no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// VM id of candidate `i`.
    fn vm(&self, i: usize) -> VmId;
    /// Server of candidate `i`.
    fn server(&self, i: usize) -> ServerId;
    /// Outstanding requests of candidate `i`.
    fn outstanding(&self, i: usize) -> usize;
    /// Utilization of candidate `i`.
    fn utilization(&self, i: usize) -> f64;
    /// Whether candidate `i` is reloading.
    fn in_transition(&self, i: usize) -> bool;
    /// Whether candidate `i` recently served `customer`.
    fn has_recent(&self, i: usize, customer: CustomerId) -> bool;
}

impl CandidateSource for &[InstanceSnapshot] {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn vm(&self, i: usize) -> VmId {
        self[i].vm
    }
    fn server(&self, i: usize) -> ServerId {
        self[i].server
    }
    fn outstanding(&self, i: usize) -> usize {
        self[i].outstanding_requests
    }
    fn utilization(&self, i: usize) -> f64 {
        self[i].utilization
    }
    fn in_transition(&self, i: usize) -> bool {
        self[i].in_transition
    }
    fn has_recent(&self, i: usize, customer: CustomerId) -> bool {
        self[i].recent_customers.contains(&customer)
    }
}

impl CandidateSource for CandidateView<'_> {
    fn len(&self) -> usize {
        self.vm.len()
    }
    fn vm(&self, i: usize) -> VmId {
        self.vm[i]
    }
    fn server(&self, i: usize) -> ServerId {
        self.server[i]
    }
    fn outstanding(&self, i: usize) -> usize {
        self.outstanding[i] as usize
    }
    fn utilization(&self, i: usize) -> f64 {
        self.utilization[i]
    }
    fn in_transition(&self, i: usize) -> bool {
        self.in_transition[i]
    }
    fn has_recent(&self, i: usize, customer: CustomerId) -> bool {
        self.recent[i].contains(customer)
    }
}

/// A request routing policy.
pub trait RequestRouterPolicy {
    /// Picks the instance to serve `request`, or `None` if `instances` is empty.
    fn route(
        &self,
        request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        profiles: &ProfileStore,
        context: &RoutingContext,
    ) -> Option<VmId>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The conventional baseline: least outstanding requests, ignoring thermal/power state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselineRouter;

impl BaselineRouter {
    /// Routes over any candidate source, returning the chosen candidate index.
    ///
    /// Single pass, allocation-free: tracks the best available and the best overall
    /// candidate by `(outstanding, vm)` and falls back to the overall best only when every
    /// instance is in transition.
    #[must_use]
    pub fn route_candidates<S: CandidateSource>(&self, candidates: &S) -> Option<usize> {
        let mut best_available: Option<(usize, u64, usize)> = None;
        let mut best_any: Option<(usize, u64, usize)> = None;
        for i in 0..candidates.len() {
            let key = (candidates.outstanding(i), candidates.vm(i).0);
            let better = |best: &Option<(usize, u64, usize)>| match best {
                Some((outstanding, vm, _)) => key < (*outstanding, *vm),
                None => true,
            };
            if better(&best_any) {
                best_any = Some((key.0, key.1, i));
            }
            if !candidates.in_transition(i) && better(&best_available) {
                best_available = Some((key.0, key.1, i));
            }
        }
        best_available.or(best_any).map(|(_, _, i)| i)
    }
}

impl BaselineRouter {
    /// Specialized scan over the struct-of-arrays view: one pass tracking the minimum of a
    /// packed `(outstanding, vm)` key, with transitioning instances forced to the maximum
    /// key so they never win. Falls back to the generic tiered scan only when every
    /// instance is transitioning.
    #[must_use]
    pub fn route_view(&self, view: &CandidateView<'_>) -> Option<usize> {
        let n = view.vm.len();
        if n == 0 {
            return None;
        }
        let mut best_key = u128::MAX;
        let mut best = usize::MAX;
        for (i, ((&outstanding, &transitioning), &vm)) in view
            .outstanding
            .iter()
            .zip(view.in_transition)
            .zip(view.vm)
            .enumerate()
        {
            let key = ((u128::from(outstanding) << 64) | u128::from(vm.0))
                | (transitioning as u128).wrapping_neg();
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        if best == usize::MAX {
            // Every instance is in transition: the generic scan handles the degenerate tier.
            return self.route_candidates(view);
        }
        Some(best)
    }
}

impl RequestRouterPolicy for BaselineRouter {
    fn route(
        &self,
        _request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        _profiles: &ProfileStore,
        _context: &RoutingContext,
    ) -> Option<VmId> {
        self.route_candidates(&instances).map(|i| instances[i].vm)
    }

    fn name(&self) -> &'static str {
        "baseline-router"
    }
}

/// Tuning parameters of the TAPAS router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapasRouterConfig {
    /// Fraction of the row budget above which a row is considered at risk.
    pub row_power_risk_fraction: f64,
    /// Fraction of the aisle airflow provisioning above which an aisle is considered at risk.
    pub aisle_airflow_risk_fraction: f64,
    /// Safety margin (°C) below the throttle temperature at which a server is considered at
    /// risk.
    pub thermal_margin_c: f64,
    /// Utilization knee for the energy-concentration preference: instances below the knee are
    /// filled up before idle instances are woken.
    pub concentration_knee: f64,
    /// Additional utilization a routed request is assumed to add (used in risk estimates).
    pub marginal_utilization: f64,
}

impl Default for TapasRouterConfig {
    fn default() -> Self {
        Self {
            row_power_risk_fraction: 0.95,
            aisle_airflow_risk_fraction: 0.95,
            thermal_margin_c: 3.0,
            concentration_knee: 0.7,
            marginal_utilization: 0.05,
        }
    }
}

/// Per-step pre-computation for the TAPAS risk filter.
///
/// Row and aisle headrooms collapse the budget comparison to one subtraction per candidate,
/// and per-server inlet predictions are memoized in the [`RouterScratch`] so each server's
/// piecewise-polynomial inlet model is evaluated at most once per step regardless of how many
/// quanta route to instances on it.
#[derive(Debug)]
pub struct PreparedRoutingContext {
    outside_temp: Celsius,
    dc_load: f64,
    /// `budget × risk_fraction − current draw` per row (kW).
    row_headroom_kw: Vec<f64>,
    /// `provisioned × risk_fraction − current demand` per aisle (CFM).
    aisle_headroom_cfm: Vec<f64>,
}

impl PreparedRoutingContext {
    /// Builds the prepared context for one step.
    #[must_use]
    pub fn new(
        context: &RoutingContext,
        config: &TapasRouterConfig,
        profiles: &ProfileStore,
    ) -> Self {
        let mut prepared = Self {
            outside_temp: context.outside_temp,
            dc_load: context.dc_load,
            row_headroom_kw: Vec::new(),
            aisle_headroom_cfm: Vec::new(),
        };
        prepared.refresh(context, config, profiles);
        prepared
    }

    /// Recomputes the prepared state for a new step, reusing the headroom buffers.
    pub fn refresh(
        &mut self,
        context: &RoutingContext,
        config: &TapasRouterConfig,
        profiles: &ProfileStore,
    ) {
        self.outside_temp = context.outside_temp;
        self.dc_load = context.dc_load;
        // Iterate the profiled layout's rows/aisles, not the context vectors: a context
        // shorter than the layout (e.g. no telemetry yet) reads as zero draw, matching the
        // previous map-based `get().unwrap_or(ZERO)` tolerance.
        self.row_headroom_kw.clear();
        self.row_headroom_kw.extend((0..profiles.row_count()).map(|row| {
            let now = context.row_power.get(row).copied().unwrap_or(Kilowatts::ZERO);
            profiles.row_budget(dc_sim::ids::RowId::new(row)).value()
                * config.row_power_risk_fraction
                - now.value()
        }));
        self.aisle_headroom_cfm.clear();
        self.aisle_headroom_cfm.extend((0..profiles.aisle_count()).map(|aisle| {
            let now = context
                .aisle_airflow
                .get(aisle)
                .copied()
                .unwrap_or(CubicFeetPerMinute::ZERO);
            profiles.aisle_budget(dc_sim::ids::AisleId::new(aisle)).value()
                * config.aisle_airflow_risk_fraction
                - now.value()
        }));
    }
}

/// Reusable per-step buffers for the routing hot path.
#[derive(Debug, Default)]
pub struct RouterScratch {
    /// Memoized per-server predicted inlet (°C); NaN marks "not yet computed this step".
    inlet_c: Vec<f64>,
}

impl RouterScratch {
    /// Resets the memo for a new step.
    pub fn begin_step(&mut self, server_count: usize) {
        self.inlet_c.clear();
        self.inlet_c.resize(server_count, f64::NAN);
    }
}

/// The TAPAS thermal- and power-aware request router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct TapasRouter {
    /// Tuning parameters.
    pub config: TapasRouterConfig,
}


impl TapasRouter {
    /// Returns `true` if routing another request to this instance risks violating one of the
    /// three operational limits. `inlet` is the server's predicted inlet temperature.
    fn is_risky_with_inlet(
        &self,
        server: ServerId,
        utilization: f64,
        inlet: Celsius,
        profiles: &ProfileStore,
        row_headroom_kw: f64,
        aisle_headroom_cfm: f64,
    ) -> bool {
        let profile = profiles.server(server);

        // Server-level thermal risk (Eq. 2 with the current inlet estimate).
        let next_util = (utilization + self.config.marginal_utilization).clamp(0.0, 1.0);
        let gpu_max = profile.spec.gpu_max_power.to_watts().value();
        let gpu_power = simkit::units::Watts::new(gpu_max * (0.15 + 0.85 * next_util));
        let predicted_temp = profile.predicted_worst_gpu_temp(inlet, gpu_power);
        let limit = profile.spec.gpu_throttle_temp_c - self.config.thermal_margin_c;
        if predicted_temp.value() > limit {
            return true;
        }

        // Row-level power risk (Eq. 4).
        let marginal_power = profile.predicted_power(next_util)
            - profile.predicted_power(utilization.clamp(0.0, 1.0));
        if marginal_power.value() > row_headroom_kw {
            return true;
        }

        // Aisle-level airflow risk (Eq. 3).
        let marginal_airflow = profile.predicted_airflow(next_util)
            - profile.predicted_airflow(utilization.clamp(0.0, 1.0));
        if marginal_airflow.value() > aisle_headroom_cfm {
            return true;
        }

        false
    }

    /// Scores an eligible candidate; higher is better. `affinity` is evaluated lazily so the
    /// recent-customer window is only scanned for instances below the concentration knee.
    fn score(
        &self,
        outstanding: usize,
        utilization: f64,
        affinity: impl FnOnce() -> bool,
    ) -> f64 {
        // (3) Spread: fewer outstanding requests is better. This is the only criterion that
        // applies to instances already past the utilization knee — sending them affinity or
        // concentration traffic would trade latency for locality/energy, which the paper's
        // ordering never does.
        let spread = 1.0 / (1.0 + outstanding as f64);
        if utilization > self.config.concentration_knee {
            return spread;
        }
        // (1) KV-cache affinity dominates among instances with headroom.
        let affinity = if affinity() { 1.0 } else { 0.0 };
        // (2) Energy concentration: prefer the most-utilized instance below the knee.
        let concentration = utilization / self.config.concentration_knee;
        100.0 * affinity + 2.0 * concentration + spread
    }

    /// The shared decision core: one pass over the candidates, tracking the best candidate
    /// of each fallback tier (available+safe, available, safe, any). Ties break toward the
    /// smaller VM id, so the result is independent of candidate order.
    fn route_core<S: CandidateSource>(
        &self,
        request: &InferenceRequest,
        candidates: &S,
        mut risky: impl FnMut(usize, ServerId, f64) -> bool,
    ) -> Option<usize> {
        #[derive(Clone, Copy)]
        struct Best {
            score: f64,
            vm: u64,
            index: usize,
        }
        #[inline]
        fn consider(best: &mut Option<Best>, score: f64, vm: u64, index: usize) {
            let replace = match best {
                Some(b) => score > b.score || (score == b.score && vm < b.vm),
                None => true,
            };
            if replace {
                *best = Some(Best { score, vm, index });
            }
        }

        let mut avail_safe: Option<Best> = None;
        let mut avail_any: Option<Best> = None;
        let mut all_safe: Option<Best> = None;
        let mut all_any: Option<Best> = None;

        for i in 0..candidates.len() {
            let vm = candidates.vm(i).0;
            let utilization = candidates.utilization(i);
            let score = self.score(candidates.outstanding(i), utilization, || {
                candidates.has_recent(i, request.customer)
            });
            let is_safe = !risky(i, candidates.server(i), utilization);
            consider(&mut all_any, score, vm, i);
            if is_safe {
                consider(&mut all_safe, score, vm, i);
            }
            if !candidates.in_transition(i) {
                consider(&mut avail_any, score, vm, i);
                if is_safe {
                    consider(&mut avail_safe, score, vm, i);
                }
            }
        }

        // If every instance is risky we must still serve the request: fall back to the full
        // pool (the instance configurator will shed the load instead). Instances in
        // transition are only used when nothing else is available.
        let chosen = if avail_any.is_some() {
            avail_safe.or(avail_any)
        } else {
            all_safe.or(all_any)
        };
        chosen.map(|b| b.index)
    }

    /// Hot-path routing over a struct-of-arrays candidate view with pre-computed headrooms
    /// and a per-step inlet memo. Returns the index of the chosen candidate.
    #[must_use]
    pub fn route_candidates<S: CandidateSource>(
        &self,
        request: &InferenceRequest,
        candidates: &S,
        profiles: &ProfileStore,
        prepared: &PreparedRoutingContext,
        scratch: &mut RouterScratch,
    ) -> Option<usize> {
        let inlet_memo = &mut scratch.inlet_c;
        self.route_core(request, candidates, |_, server, utilization| {
            Self::risk_with_memo(
                &self.config,
                server,
                utilization,
                profiles,
                prepared,
                inlet_memo,
            )
        })
    }

    #[inline]
    fn risk_with_memo(
        config: &TapasRouterConfig,
        server: ServerId,
        utilization: f64,
        profiles: &ProfileStore,
        prepared: &PreparedRoutingContext,
        inlet_memo: &mut [f64],
    ) -> bool {
        let slot = &mut inlet_memo[server.index()];
        if slot.is_nan() {
            *slot = profiles
                .server(server)
                .predicted_inlet(prepared.outside_temp, prepared.dc_load)
                .value();
        }
        let inlet = Celsius::new(*slot);
        let profile = profiles.server(server);
        let router = TapasRouter { config: *config };
        router.is_risky_with_inlet(
            server,
            utilization,
            inlet,
            profiles,
            prepared.row_headroom_kw[profile.row.index()],
            prepared.aisle_headroom_cfm[profile.aisle.index()],
        )
    }

    /// Evaluates the risk filter for one candidate (used to refresh a cached flag after the
    /// caller mutated that candidate's utilization).
    #[must_use]
    pub fn candidate_risk(
        &self,
        server: ServerId,
        utilization: f64,
        profiles: &ProfileStore,
        prepared: &PreparedRoutingContext,
        scratch: &mut RouterScratch,
    ) -> bool {
        Self::risk_with_memo(
            &self.config,
            server,
            utilization,
            profiles,
            prepared,
            &mut scratch.inlet_c,
        )
    }

    /// Fills `flags[i] = risky(candidate i)` for every candidate, reusing the scratch memo.
    pub fn fill_risk_flags<S: CandidateSource>(
        &self,
        candidates: &S,
        profiles: &ProfileStore,
        prepared: &PreparedRoutingContext,
        scratch: &mut RouterScratch,
        flags: &mut Vec<bool>,
    ) {
        flags.clear();
        flags.reserve(candidates.len());
        for i in 0..candidates.len() {
            flags.push(Self::risk_with_memo(
                &self.config,
                candidates.server(i),
                candidates.utilization(i),
                profiles,
                prepared,
                &mut scratch.inlet_c,
            ));
        }
    }

    /// Hot-path routing with pre-computed risk flags.
    ///
    /// The caller computes the flags once per endpoint per step with
    /// [`Self::fill_risk_flags`], then refreshes only the mutated candidate's flag (via
    /// [`Self::candidate_risk`]) after each routed quantum — so each decision costs one
    /// scoring pass and zero risk-model evaluations. Equivalent to
    /// [`Self::route_candidates`] when the flags are current.
    ///
    /// # Panics
    /// Panics if `flags` is shorter than the candidate list.
    #[must_use]
    pub fn route_prescored<S: CandidateSource>(
        &self,
        request: &InferenceRequest,
        candidates: &S,
        flags: &[bool],
    ) -> Option<usize> {
        assert!(flags.len() >= candidates.len(), "risk flags must cover every candidate");
        self.route_core(request, candidates, |i, _, _| flags[i])
    }
}

impl RequestRouterPolicy for TapasRouter {
    fn route(
        &self,
        request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        profiles: &ProfileStore,
        context: &RoutingContext,
    ) -> Option<VmId> {
        let prepared = PreparedRoutingContext::new(context, &self.config, profiles);
        let mut scratch = RouterScratch::default();
        scratch.begin_step(profiles.server_count());
        self.route_candidates(request, &instances, profiles, &prepared, &mut scratch)
            .map(|i| instances[i].vm)
    }

    fn name(&self) -> &'static str {
        "tapas-router"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::ids::{AisleId, RowId};
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;
    use llm_sim::request::RequestId;
    use simkit::time::SimTime;

    fn profiles() -> ProfileStore {
        let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
        ProfileStore::offline_profiling(&dc, &GpuHardware::a100())
    }

    fn snapshot(vm: u64, server: usize, outstanding: usize, util: f64) -> InstanceSnapshot {
        InstanceSnapshot {
            vm: VmId(vm),
            server: ServerId::new(server),
            outstanding_requests: outstanding,
            utilization: util,
            recent_customers: Vec::new(),
            config: InstanceConfig::default_70b(),
            in_transition: false,
        }
    }

    fn request(customer: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(1),
            customer: CustomerId(customer),
            arrival: SimTime::ZERO,
            prompt_tokens: 512,
            output_tokens: 128,
        }
    }

    fn calm_context(profiles: &ProfileStore) -> RoutingContext {
        RoutingContext {
            outside_temp: Celsius::new(20.0),
            dc_load: 0.4,
            row_power: profiles
                .budgets
                .row_power
                .keys()
                .map(|_| Kilowatts::new(50.0))
                .collect(),
            aisle_airflow: profiles
                .budgets
                .aisle_airflow
                .keys()
                .map(|_| CubicFeetPerMinute::new(10_000.0))
                .collect(),
        }
    }

    #[test]
    fn baseline_picks_least_outstanding() {
        let profiles = profiles();
        let ctx = calm_context(&profiles);
        let instances = vec![snapshot(1, 0, 10, 0.9), snapshot(2, 1, 2, 0.3), snapshot(3, 2, 5, 0.5)];
        let choice = BaselineRouter.route(&request(0), &instances, &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)));
        assert_eq!(BaselineRouter.name(), "baseline-router");
        assert!(BaselineRouter.route(&request(0), &[], &profiles, &ctx).is_none());
    }

    #[test]
    fn baseline_skips_instances_in_transition_when_possible() {
        let profiles = profiles();
        let ctx = calm_context(&profiles);
        let mut busy = snapshot(1, 0, 1, 0.2);
        busy.in_transition = true;
        let instances = vec![busy.clone(), snapshot(2, 1, 5, 0.5)];
        assert_eq!(BaselineRouter.route(&request(0), &instances, &profiles, &ctx), Some(VmId(2)));
        // If every instance is in transition the request still goes somewhere.
        let all_busy = vec![busy];
        assert_eq!(BaselineRouter.route(&request(0), &all_busy, &profiles, &ctx), Some(VmId(1)));
    }

    #[test]
    fn tapas_avoids_rows_near_their_power_budget() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let mut ctx = calm_context(&profiles);
        // Row 0 is right at its budget; row 1 is calm. Instance 1 sits in row 0 (server 0),
        // instance 2 in row 1 (server 40).
        let row0 = profiles.server(ServerId::new(0)).row;
        let budget = profiles.budgets.row_power[row0];
        ctx.row_power[row0.index()] = budget * 0.99;
        let instances = vec![snapshot(1, 0, 1, 0.5), snapshot(2, 40, 5, 0.5)];
        let choice = router.route(&request(0), &instances, &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)), "the request must avoid the at-risk row");
        assert_eq!(router.name(), "tapas-router");
    }

    #[test]
    fn tapas_avoids_hot_servers() {
        let profiles = profiles();
        // A wide thermal margin makes the fully-loaded server risky and the lightly-loaded
        // one safe for any seed-dependent spatial offsets, so the test checks the filter
        // logic rather than one RNG draw.
        let mut router = TapasRouter::default();
        router.config.thermal_margin_c = 20.0;
        let mut ctx = calm_context(&profiles);
        // A very hot day with high utilization puts fully-loaded servers at thermal risk.
        ctx.outside_temp = Celsius::new(42.0);
        ctx.dc_load = 1.0;
        let hot = snapshot(1, 0, 0, 0.98);
        let cool = snapshot(2, 40, 8, 0.2);
        let choice = router.route(&request(0), &[hot.clone(), cool], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)));
        // If every instance is risky, the router still returns something.
        let choice = router.route(&request(0), &[hot], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(1)));
    }

    #[test]
    fn tapas_prefers_kv_affinity() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = calm_context(&profiles);
        let mut with_cache = snapshot(1, 0, 6, 0.5);
        with_cache.recent_customers.push(CustomerId(7));
        let without_cache = snapshot(2, 1, 0, 0.1);
        let choice =
            router.route(&request(7), &[with_cache.clone(), without_cache.clone()], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(1)), "KV affinity should dominate");
        // A different customer goes by concentration/spread instead.
        let other = router.route(&request(9), &[with_cache, without_cache], &profiles, &ctx);
        assert_eq!(other, Some(VmId(1)), "concentration prefers the busier-but-safe instance");
    }

    #[test]
    fn tapas_concentrates_below_knee_and_spreads_above() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = calm_context(&profiles);
        // Both below the knee: prefer the busier one (concentration).
        let low = snapshot(1, 0, 2, 0.2);
        let mid = snapshot(2, 1, 2, 0.6);
        assert_eq!(
            router.route(&request(0), &[low.clone(), mid], &profiles, &ctx),
            Some(VmId(2))
        );
        // One far above the knee: prefer the one with headroom.
        let hot = snapshot(3, 2, 2, 0.95);
        assert_eq!(router.route(&request(0), &[low, hot], &profiles, &ctx), Some(VmId(1)));
    }

    #[test]
    fn tapas_airflow_risk_filters_aisle() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let mut ctx = calm_context(&profiles);
        let aisle = profiles.server(ServerId::new(0)).aisle;
        let provisioned = profiles.budgets.aisle_airflow[aisle];
        ctx.aisle_airflow[aisle.index()] = provisioned * 0.999;
        // Both instances are in the same (only) aisle, so the filter rejects both and the
        // fallback still routes the request.
        let instances = vec![snapshot(1, 0, 3, 0.5), snapshot(2, 40, 1, 0.5)];
        let choice = router.route(&request(0), &instances, &profiles, &ctx);
        assert!(choice.is_some());
    }

    #[test]
    fn candidate_view_and_snapshot_paths_agree() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = calm_context(&profiles);
        let snapshots: Vec<InstanceSnapshot> = (0..20)
            .map(|i| {
                let mut s = snapshot(i, (i as usize * 7) % 80, (i % 5) as usize, (i % 10) as f64 / 10.0);
                if i % 6 == 0 {
                    s.recent_customers.push(CustomerId(3));
                }
                if i % 7 == 0 {
                    s.in_transition = true;
                }
                s
            })
            .collect();
        // Build the SoA columns mirroring the snapshots.
        let vm: Vec<VmId> = snapshots.iter().map(|s| s.vm).collect();
        let server: Vec<ServerId> = snapshots.iter().map(|s| s.server).collect();
        let outstanding: Vec<u32> = snapshots.iter().map(|s| s.outstanding_requests as u32).collect();
        let utilization: Vec<f64> = snapshots.iter().map(|s| s.utilization).collect();
        let in_transition: Vec<bool> = snapshots.iter().map(|s| s.in_transition).collect();
        let recent: Vec<RecentWindow> = snapshots
            .iter()
            .map(|s| {
                let mut w = RecentWindow::new();
                for &c in &s.recent_customers {
                    w.push(c);
                }
                w
            })
            .collect();
        let view = CandidateView {
            vm: &vm,
            server: &server,
            outstanding: &outstanding,
            utilization: &utilization,
            in_transition: &in_transition,
            recent: &recent,
        };
        let prepared = PreparedRoutingContext::new(&ctx, &router.config, &profiles);
        let mut scratch = RouterScratch::default();
        for customer in 0..8u64 {
            scratch.begin_step(profiles.server_count());
            let via_view = router
                .route_candidates(&request(customer), &view, &profiles, &prepared, &mut scratch)
                .map(|i| vm[i]);
            let via_snapshots = router.route(&request(customer), &snapshots, &profiles, &ctx);
            assert_eq!(via_view, via_snapshots, "customer {customer}");
            let base_view = BaselineRouter.route_candidates(&view).map(|i| vm[i]);
            let base_snap = BaselineRouter.route(&request(customer), &snapshots, &profiles, &ctx);
            assert_eq!(base_view, base_snap);
        }
    }

    #[test]
    fn empty_context_reads_as_zero_draw() {
        // A context shorter than the layout (e.g. before the first physics step) must be
        // tolerated as zero draw, matching the old map-based lookup semantics.
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = RoutingContext {
            outside_temp: Celsius::new(20.0),
            dc_load: 0.4,
            row_power: Vec::new(),
            aisle_airflow: Vec::new(),
        };
        let instances = vec![snapshot(1, 0, 1, 0.5), snapshot(2, 40, 3, 0.4)];
        assert!(router.route(&request(0), &instances, &profiles, &ctx).is_some());
        assert!(BaselineRouter.route(&request(0), &instances, &profiles, &ctx).is_some());
    }

    #[test]
    fn recent_window_is_bounded_and_evicts_oldest() {
        let mut window = RecentWindow::new();
        assert!(window.is_empty());
        for i in 0..(RECENT_WINDOW as u64 + 5) {
            window.push(CustomerId(i));
        }
        assert_eq!(window.len(), RECENT_WINDOW);
        // The first five customers were evicted; the most recent ones remain.
        assert!(!window.contains(CustomerId(0)));
        assert!(!window.contains(CustomerId(4)));
        assert!(window.contains(CustomerId(5)));
        assert!(window.contains(CustomerId(RECENT_WINDOW as u64 + 4)));
    }

    #[test]
    fn uniform_context_fills_budget_fractions() {
        let profiles = profiles();
        let ctx = RoutingContext::uniform(&profiles, Celsius::new(25.0), 0.5, 0.8, 0.6);
        assert_eq!(ctx.row_power.len(), profiles.budgets.row_power.len());
        let row0 = RowId::new(0);
        assert!(
            (ctx.row_power[0].value() - profiles.budgets.row_power[row0].value() * 0.8).abs()
                < 1e-9
        );
        let aisle0 = AisleId::new(0);
        assert!(
            (ctx.aisle_airflow[0].value()
                - profiles.budgets.aisle_airflow[aisle0].value() * 0.6)
                .abs()
                < 1e-9
        );
    }
}
