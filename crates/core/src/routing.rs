//! LLM inference request routing (§4.2, §4.5 "Load Balancer").
//!
//! Each SaaS endpoint routes its requests across its VM instances. The baseline router is the
//! conventional latency-oriented policy: send the request to the instance with the fewest
//! outstanding requests. The TAPAS router first *filters out* instances with a high risk of
//! violating one of the three operational limits — aisle airflow, row power, or server GPU
//! temperature — using the profiled models and the current (cached, periodically refreshed)
//! infrastructure state, and then applies the state-of-the-art ordering: (1) KV-cache
//! affinity (prefer an instance that recently served the same customer), (2) energy
//! concentration (prefer busier instances below a utilization knee so idle instances can stay
//! quiet), (3) spread for performance.

use crate::profiles::ProfileStore;
use dc_sim::ids::{AisleId, RowId, ServerId};
use llm_sim::config::InstanceConfig;
use llm_sim::request::{CustomerId, InferenceRequest};
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts};
use std::collections::BTreeMap;
use workload::vm::VmId;

/// A snapshot of one SaaS instance the router can send requests to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// The VM running the instance.
    pub vm: VmId,
    /// The server hosting it.
    pub server: ServerId,
    /// Requests currently queued or running on the instance.
    pub outstanding_requests: usize,
    /// Current mean GPU utilization of the instance in `[0, 1]`.
    pub utilization: f64,
    /// Customers whose KV cache is likely still resident (recently served).
    pub recent_customers: Vec<CustomerId>,
    /// The instance's current configuration.
    pub config: InstanceConfig,
    /// Whether the instance is currently unavailable (e.g. reloading after a
    /// reconfiguration, §4.3).
    pub in_transition: bool,
}

/// The infrastructure state the router consults (recomputed every few minutes, §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingContext {
    /// Current outside temperature.
    pub outside_temp: Celsius,
    /// Current normalized datacenter load.
    pub dc_load: f64,
    /// Current power draw per row.
    pub row_power: BTreeMap<RowId, Kilowatts>,
    /// Current airflow demand per aisle.
    pub aisle_airflow: BTreeMap<AisleId, CubicFeetPerMinute>,
}

/// A request routing policy.
pub trait RequestRouterPolicy {
    /// Picks the instance to serve `request`, or `None` if `instances` is empty.
    fn route(
        &self,
        request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        profiles: &ProfileStore,
        context: &RoutingContext,
    ) -> Option<VmId>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The conventional baseline: least outstanding requests, ignoring thermal/power state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselineRouter;

impl RequestRouterPolicy for BaselineRouter {
    fn route(
        &self,
        _request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        _profiles: &ProfileStore,
        _context: &RoutingContext,
    ) -> Option<VmId> {
        instances
            .iter()
            .filter(|i| !i.in_transition)
            .min_by_key(|i| (i.outstanding_requests, i.vm.0))
            .or_else(|| instances.iter().min_by_key(|i| (i.outstanding_requests, i.vm.0)))
            .map(|i| i.vm)
    }

    fn name(&self) -> &'static str {
        "baseline-router"
    }
}

/// Tuning parameters of the TAPAS router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapasRouterConfig {
    /// Fraction of the row budget above which a row is considered at risk.
    pub row_power_risk_fraction: f64,
    /// Fraction of the aisle airflow provisioning above which an aisle is considered at risk.
    pub aisle_airflow_risk_fraction: f64,
    /// Safety margin (°C) below the throttle temperature at which a server is considered at
    /// risk.
    pub thermal_margin_c: f64,
    /// Utilization knee for the energy-concentration preference: instances below the knee are
    /// filled up before idle instances are woken.
    pub concentration_knee: f64,
    /// Additional utilization a routed request is assumed to add (used in risk estimates).
    pub marginal_utilization: f64,
}

impl Default for TapasRouterConfig {
    fn default() -> Self {
        Self {
            row_power_risk_fraction: 0.95,
            aisle_airflow_risk_fraction: 0.95,
            thermal_margin_c: 3.0,
            concentration_knee: 0.7,
            marginal_utilization: 0.05,
        }
    }
}

/// The TAPAS thermal- and power-aware request router.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapasRouter {
    /// Tuning parameters.
    pub config: TapasRouterConfig,
}

impl Default for TapasRouter {
    fn default() -> Self {
        Self { config: TapasRouterConfig::default() }
    }
}

impl TapasRouter {
    /// Returns `true` if routing another request to this instance risks violating one of the
    /// three operational limits.
    fn is_risky(
        &self,
        instance: &InstanceSnapshot,
        profiles: &ProfileStore,
        context: &RoutingContext,
    ) -> bool {
        let profile = profiles.server(instance.server);

        // Server-level thermal risk (Eq. 2 with the current inlet estimate).
        let inlet = profile.predicted_inlet(context.outside_temp, context.dc_load);
        let next_util = (instance.utilization + self.config.marginal_utilization).clamp(0.0, 1.0);
        let gpu_max = profile.spec.gpu_max_power.to_watts().value();
        let gpu_power = simkit::units::Watts::new(gpu_max * (0.15 + 0.85 * next_util));
        let predicted_temp = profile.predicted_worst_gpu_temp(inlet, gpu_power);
        let limit = profile.spec.gpu_throttle_temp_c - self.config.thermal_margin_c;
        if predicted_temp.value() > limit {
            return true;
        }

        // Row-level power risk (Eq. 4).
        let row_budget = profiles.budgets.row_power[&profile.row];
        let row_now = context
            .row_power
            .get(&profile.row)
            .copied()
            .unwrap_or(Kilowatts::ZERO);
        let marginal_power = profile.predicted_power(next_util)
            - profile.predicted_power(instance.utilization.clamp(0.0, 1.0));
        if (row_now + marginal_power).value()
            > row_budget.value() * self.config.row_power_risk_fraction
        {
            return true;
        }

        // Aisle-level airflow risk (Eq. 3).
        let aisle_budget = profiles.budgets.aisle_airflow[&profile.aisle];
        let aisle_now = context
            .aisle_airflow
            .get(&profile.aisle)
            .copied()
            .unwrap_or(CubicFeetPerMinute::ZERO);
        let marginal_airflow = profile.predicted_airflow(next_util)
            - profile.predicted_airflow(instance.utilization.clamp(0.0, 1.0));
        if (aisle_now + marginal_airflow).value()
            > aisle_budget.value() * self.config.aisle_airflow_risk_fraction
        {
            return true;
        }

        false
    }

    /// Scores an eligible instance; higher is better.
    fn score(&self, request: &InferenceRequest, instance: &InstanceSnapshot) -> f64 {
        // (3) Spread: fewer outstanding requests is better. This is the only criterion that
        // applies to instances already past the utilization knee — sending them affinity or
        // concentration traffic would trade latency for locality/energy, which the paper's
        // ordering never does.
        let spread = 1.0 / (1.0 + instance.outstanding_requests as f64);
        if instance.utilization > self.config.concentration_knee {
            return spread;
        }
        // (1) KV-cache affinity dominates among instances with headroom.
        let affinity = if instance.recent_customers.contains(&request.customer) {
            1.0
        } else {
            0.0
        };
        // (2) Energy concentration: prefer the most-utilized instance below the knee.
        let concentration = instance.utilization / self.config.concentration_knee;
        100.0 * affinity + 2.0 * concentration + spread
    }
}

impl RequestRouterPolicy for TapasRouter {
    fn route(
        &self,
        request: &InferenceRequest,
        instances: &[InstanceSnapshot],
        profiles: &ProfileStore,
        context: &RoutingContext,
    ) -> Option<VmId> {
        if instances.is_empty() {
            return None;
        }
        let available: Vec<&InstanceSnapshot> =
            instances.iter().filter(|i| !i.in_transition).collect();
        let pool = if available.is_empty() {
            instances.iter().collect::<Vec<_>>()
        } else {
            available
        };
        let safe: Vec<&InstanceSnapshot> = pool
            .iter()
            .copied()
            .filter(|i| !self.is_risky(i, profiles, context))
            .collect();
        // If every instance is risky we must still serve the request: fall back to the full
        // pool (the instance configurator will shed the load instead).
        let candidates = if safe.is_empty() { pool } else { safe };
        candidates
            .into_iter()
            .max_by(|a, b| {
                self.score(request, a)
                    .partial_cmp(&self.score(request, b))
                    .expect("finite scores")
                    .then(b.vm.0.cmp(&a.vm.0))
            })
            .map(|i| i.vm)
    }

    fn name(&self) -> &'static str {
        "tapas-router"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;
    use llm_sim::request::RequestId;
    use simkit::time::SimTime;

    fn profiles() -> ProfileStore {
        let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
        ProfileStore::offline_profiling(&dc, &GpuHardware::a100())
    }

    fn snapshot(vm: u64, server: usize, outstanding: usize, util: f64) -> InstanceSnapshot {
        InstanceSnapshot {
            vm: VmId(vm),
            server: ServerId::new(server),
            outstanding_requests: outstanding,
            utilization: util,
            recent_customers: Vec::new(),
            config: InstanceConfig::default_70b(),
            in_transition: false,
        }
    }

    fn request(customer: u64) -> InferenceRequest {
        InferenceRequest {
            id: RequestId(1),
            customer: CustomerId(customer),
            arrival: SimTime::ZERO,
            prompt_tokens: 512,
            output_tokens: 128,
        }
    }

    fn calm_context(profiles: &ProfileStore) -> RoutingContext {
        RoutingContext {
            outside_temp: Celsius::new(20.0),
            dc_load: 0.4,
            row_power: profiles
                .budgets
                .row_power
                .keys()
                .map(|&r| (r, Kilowatts::new(50.0)))
                .collect(),
            aisle_airflow: profiles
                .budgets
                .aisle_airflow
                .keys()
                .map(|&a| (a, CubicFeetPerMinute::new(10_000.0)))
                .collect(),
        }
    }

    #[test]
    fn baseline_picks_least_outstanding() {
        let profiles = profiles();
        let ctx = calm_context(&profiles);
        let instances = vec![snapshot(1, 0, 10, 0.9), snapshot(2, 1, 2, 0.3), snapshot(3, 2, 5, 0.5)];
        let choice = BaselineRouter.route(&request(0), &instances, &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)));
        assert_eq!(BaselineRouter.name(), "baseline-router");
        assert!(BaselineRouter.route(&request(0), &[], &profiles, &ctx).is_none());
    }

    #[test]
    fn baseline_skips_instances_in_transition_when_possible() {
        let profiles = profiles();
        let ctx = calm_context(&profiles);
        let mut busy = snapshot(1, 0, 1, 0.2);
        busy.in_transition = true;
        let instances = vec![busy.clone(), snapshot(2, 1, 5, 0.5)];
        assert_eq!(BaselineRouter.route(&request(0), &instances, &profiles, &ctx), Some(VmId(2)));
        // If every instance is in transition the request still goes somewhere.
        let all_busy = vec![busy];
        assert_eq!(BaselineRouter.route(&request(0), &all_busy, &profiles, &ctx), Some(VmId(1)));
    }

    #[test]
    fn tapas_avoids_rows_near_their_power_budget() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let mut ctx = calm_context(&profiles);
        // Row 0 is right at its budget; row 1 is calm. Instance 1 sits in row 0 (server 0),
        // instance 2 in row 1 (server 40).
        let row0 = profiles.server(ServerId::new(0)).row;
        let budget = profiles.budgets.row_power[&row0];
        ctx.row_power.insert(row0, budget * 0.99);
        let instances = vec![snapshot(1, 0, 1, 0.5), snapshot(2, 40, 5, 0.5)];
        let choice = router.route(&request(0), &instances, &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)), "the request must avoid the at-risk row");
        assert_eq!(router.name(), "tapas-router");
    }

    #[test]
    fn tapas_avoids_hot_servers() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let mut ctx = calm_context(&profiles);
        // A very hot day with high utilization puts fully-loaded servers at thermal risk.
        ctx.outside_temp = Celsius::new(42.0);
        ctx.dc_load = 1.0;
        let hot = snapshot(1, 0, 0, 0.98);
        let cool = snapshot(2, 40, 8, 0.2);
        let choice = router.route(&request(0), &[hot.clone(), cool], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(2)));
        // If every instance is risky, the router still returns something.
        let choice = router.route(&request(0), &[hot], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(1)));
    }

    #[test]
    fn tapas_prefers_kv_affinity() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = calm_context(&profiles);
        let mut with_cache = snapshot(1, 0, 6, 0.5);
        with_cache.recent_customers.push(CustomerId(7));
        let without_cache = snapshot(2, 1, 0, 0.1);
        let choice =
            router.route(&request(7), &[with_cache.clone(), without_cache.clone()], &profiles, &ctx);
        assert_eq!(choice, Some(VmId(1)), "KV affinity should dominate");
        // A different customer goes by concentration/spread instead.
        let other = router.route(&request(9), &[with_cache, without_cache], &profiles, &ctx);
        assert_eq!(other, Some(VmId(1)), "concentration prefers the busier-but-safe instance");
    }

    #[test]
    fn tapas_concentrates_below_knee_and_spreads_above() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let ctx = calm_context(&profiles);
        // Both below the knee: prefer the busier one (concentration).
        let low = snapshot(1, 0, 2, 0.2);
        let mid = snapshot(2, 1, 2, 0.6);
        assert_eq!(
            router.route(&request(0), &[low.clone(), mid], &profiles, &ctx),
            Some(VmId(2))
        );
        // One far above the knee: prefer the one with headroom.
        let hot = snapshot(3, 2, 2, 0.95);
        assert_eq!(router.route(&request(0), &[low, hot], &profiles, &ctx), Some(VmId(1)));
    }

    #[test]
    fn tapas_airflow_risk_filters_aisle() {
        let profiles = profiles();
        let router = TapasRouter::default();
        let mut ctx = calm_context(&profiles);
        let aisle = profiles.server(ServerId::new(0)).aisle;
        let provisioned = profiles.budgets.aisle_airflow[&aisle];
        ctx.aisle_airflow.insert(aisle, provisioned * 0.999);
        // Both instances are in the same (only) aisle, so the filter rejects both and the
        // fallback still routes the request.
        let instances = vec![snapshot(1, 0, 3, 0.5), snapshot(2, 40, 1, 0.5)];
        let choice = router.route(&request(0), &instances, &profiles, &ctx);
        assert!(choice.is_some());
    }
}
