//! The per-VM instance configurator (§4.3, §4.5 "Instance Configurator").
//!
//! For every SaaS instance, TAPAS periodically computes the maximum allowable per-GPU power
//! (from the GPU temperature headroom via the fitted Eq. 2), server power (from the row power
//! headroom) and airflow, then selects the configuration that maximizes goodput within those
//! limits while honouring the endpoint's quality SLO. Changes that affect quality (model size
//! or quantization) are a last resort: the configurator first tries frequency and batch-size
//! changes (which apply online), then parallelism, and only then model downgrades — and it
//! reports the reload downtime so the router can steer requests away during the transition.

use crate::profiles::ProfileStore;
use llm_sim::config::{InstanceConfig, ReconfigurationCost};
use llm_sim::profile::ConfigProfile;
use serde::{Deserialize, Serialize};
use simkit::units::{Kilowatts, Watts};

/// The budgets the configurator must keep one instance within.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceLimits {
    /// Maximum per-GPU power (derived from the GPU temperature headroom).
    pub max_gpu_power: Watts,
    /// Maximum server power for the slice the instance occupies (derived from the row power
    /// headroom).
    pub max_server_power: Kilowatts,
    /// Minimum goodput the instance should retain if possible (tokens/s of offered load).
    pub demand_tokens_per_s: f64,
}

impl InstanceLimits {
    /// Unconstrained limits (normal operation with ample headroom).
    #[must_use]
    pub fn unconstrained(demand_tokens_per_s: f64) -> Self {
        Self {
            max_gpu_power: Watts::new(f64::MAX),
            max_server_power: Kilowatts::new(f64::MAX),
            demand_tokens_per_s,
        }
    }
}

/// The configurator's decision for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigDecision {
    /// The configuration to run.
    pub config: InstanceConfig,
    /// The profiled behaviour of that configuration.
    pub profile: ConfigProfile,
    /// Cost of switching from the current configuration.
    pub cost: ReconfigurationCost,
    /// Whether the decision had to accept quality below the SLO to satisfy the limits.
    pub quality_degraded: bool,
}

/// The TAPAS instance configurator.
#[derive(Debug, Clone)]
pub struct InstanceConfigurator {
    /// Quality SLO in `[0, 1]`; configurations below it are last-resort only.
    pub quality_slo: f64,
}

impl InstanceConfigurator {
    /// Creates a configurator with the endpoint's quality SLO.
    #[must_use]
    pub fn new(quality_slo: f64) -> Self {
        Self { quality_slo: quality_slo.clamp(0.0, 1.0) }
    }

    /// Returns `true` if a profile fits the limits.
    fn fits(profile: &ConfigProfile, limits: &InstanceLimits) -> bool {
        let hottest_gpu = profile
            .prefill
            .gpu_power
            .value()
            .max(profile.decode.gpu_power.value());
        let server = profile
            .prefill
            .server_power
            .value()
            .max(profile.decode.server_power.value());
        hottest_gpu <= limits.max_gpu_power.value() && server <= limits.max_server_power.value()
    }

    /// Selects the configuration for one instance.
    ///
    /// The candidate set is every profiled configuration that fits the limits. Within it the
    /// configurator prefers, in order: (1) meeting the quality SLO, (2) meeting the offered
    /// demand, (3) cheaper reconfiguration (no change, then online changes, then model
    /// reloads — the paper's "last resort" rule), (4) higher goodput, (5) lower power. If
    /// nothing fits the limits, the lowest-power configuration is returned (the closest the instance can get to compliance; the failure manager will
    /// shed the remaining excess elsewhere).
    #[must_use]
    pub fn select(
        &self,
        current: &InstanceConfig,
        limits: &InstanceLimits,
        profiles: &ProfileStore,
    ) -> ConfigDecision {
        let all = &profiles.llm.profiles;

        // Fast path: when the current configuration fits the limits, meets the demand and
        // satisfies the quality SLO, no candidate can beat it — `meets_demand` ties at best,
        // and only the current configuration itself has the top `ReconfigurationCost::None`
        // rank, which dominates the remaining criteria. This is the steady state for most
        // instances on most steps, so the sweep scan only runs under actual pressure.
        if let Some(current_profile) = profiles.profile_for(current) {
            if Self::fits(current_profile, limits)
                && current_profile.goodput_tokens_per_s >= limits.demand_tokens_per_s
                && current_profile.quality >= self.quality_slo
            {
                return ConfigDecision {
                    config: current_profile.config,
                    cost: ReconfigurationCost::None,
                    quality_degraded: false,
                    profile: *current_profile,
                };
            }
        }

        // Preference key, compared lexicographically: (1) meets the offered demand, (2)
        // cheaper reconfiguration (no change, then online changes, then model reloads — the
        // paper's "last resort" rule), (3) higher goodput, (4) lower blended power. On exact
        // ties the later profile in sweep order wins, matching `Iterator::max_by`.
        #[derive(Clone, Copy, PartialEq)]
        struct Key {
            meets_demand: bool,
            cost_rank: u8,
            goodput: f64,
            power: f64,
        }
        impl Key {
            fn at_least(&self, other: &Key) -> bool {
                match self.meets_demand.cmp(&other.meets_demand) {
                    std::cmp::Ordering::Less => return false,
                    std::cmp::Ordering::Greater => return true,
                    std::cmp::Ordering::Equal => {}
                }
                match self.cost_rank.cmp(&other.cost_rank) {
                    std::cmp::Ordering::Less => return false,
                    std::cmp::Ordering::Greater => return true,
                    std::cmp::Ordering::Equal => {}
                }
                if self.goodput != other.goodput {
                    return self.goodput > other.goodput;
                }
                // Lower power is better.
                self.power <= other.power
            }
        }

        // One pass over the sweep, tracking the best fitting profile within the quality SLO
        // and the best fitting profile overall (the quality-degraded fallback).
        let mut best_quality: Option<(Key, &ConfigProfile)> = None;
        let mut best_any: Option<(Key, &ConfigProfile)> = None;
        for profile in all {
            if !Self::fits(profile, limits) {
                continue;
            }
            let key = Key {
                meets_demand: profile.goodput_tokens_per_s >= limits.demand_tokens_per_s,
                cost_rank: match current.reconfiguration_cost(&profile.config) {
                    ReconfigurationCost::None => 2,
                    ReconfigurationCost::Online => 1,
                    ReconfigurationCost::Reload { .. } => 0,
                },
                goodput: profile.goodput_tokens_per_s,
                power: profile.blended_server_power(0.7).value(),
            };
            let replace =
                |best: &Option<(Key, &ConfigProfile)>| best.is_none_or(|(k, _)| key.at_least(&k));
            if replace(&best_any) {
                best_any = Some((key, profile));
            }
            if profile.quality >= self.quality_slo && replace(&best_quality) {
                best_quality = Some((key, profile));
            }
        }

        // First try within the quality SLO; otherwise degrade quality (last resort).
        if let Some((_, profile)) = best_quality {
            return ConfigDecision {
                config: profile.config,
                cost: current.reconfiguration_cost(&profile.config),
                quality_degraded: false,
                profile: *profile,
            };
        }
        if let Some((_, profile)) = best_any {
            return ConfigDecision {
                config: profile.config,
                cost: current.reconfiguration_cost(&profile.config),
                quality_degraded: true,
                profile: *profile,
            };
        }
        // Nothing fits at all: run the lowest-power configuration available.
        let coolest = all
            .iter()
            .min_by(|a, b| {
                a.blended_server_power(0.7)
                    .value()
                    .partial_cmp(&b.blended_server_power(0.7).value())
                    .expect("finite power")
            })
            .copied()
            .expect("profile sweep is never empty");
        ConfigDecision {
            config: coolest.config,
            cost: current.reconfiguration_cost(&coolest.config),
            quality_degraded: coolest.quality < self.quality_slo,
            profile: coolest,
        }
    }

    /// Convenience: the decision under no thermal/power pressure. Used by the baseline (which
    /// never reconfigures) and at instance start-up.
    #[must_use]
    pub fn unconstrained(&self, current: &InstanceConfig, demand: f64, profiles: &ProfileStore) -> ConfigDecision {
        self.select(current, &InstanceLimits::unconstrained(demand), profiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;
    use llm_sim::model::ModelSize;

    fn profiles() -> ProfileStore {
        let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 42);
        ProfileStore::offline_profiling(&dc, &GpuHardware::a100())
    }

    #[test]
    fn unconstrained_selection_keeps_quality_and_high_goodput() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.9);
        let current = InstanceConfig::default_70b();
        let decision = configurator.unconstrained(&current, 500.0, &profiles);
        assert!(!decision.quality_degraded);
        assert!(decision.profile.quality >= 0.9);
        assert!(decision.profile.goodput_tokens_per_s >= 500.0);
        assert_eq!(decision.config.variant.size, ModelSize::Llama2_70B);
    }

    #[test]
    fn tight_gpu_power_budget_forces_a_cooler_configuration() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.9);
        let current = InstanceConfig::default_70b();
        let unconstrained = configurator.unconstrained(&current, 100.0, &profiles);
        let limits = InstanceLimits {
            max_gpu_power: Watts::new(220.0),
            max_server_power: Kilowatts::new(f64::MAX),
            demand_tokens_per_s: 100.0,
        };
        let constrained = configurator.select(&current, &limits, &profiles);
        let hottest = constrained
            .profile
            .prefill
            .gpu_power
            .value()
            .max(constrained.profile.decode.gpu_power.value());
        assert!(hottest <= 220.0);
        assert!(
            constrained.profile.goodput_tokens_per_s <= unconstrained.profile.goodput_tokens_per_s
        );
        // Quality stays within the SLO if at all possible.
        assert!(constrained.profile.quality >= 0.9 || constrained.quality_degraded);
    }

    #[test]
    fn severe_limits_degrade_quality_as_last_resort() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.99);
        let current = InstanceConfig::default_70b();
        // A server power budget so low that no full-quality 70B FP16 configuration fits.
        let limits = InstanceLimits {
            max_gpu_power: Watts::new(400.0),
            max_server_power: Kilowatts::new(1.0),
            demand_tokens_per_s: 10.0,
        };
        let decision = configurator.select(&current, &limits, &profiles);
        assert!(decision.quality_degraded);
        assert!(decision.profile.quality < 0.99);
        assert!(
            decision
                .profile
                .prefill
                .server_power
                .value()
                .max(decision.profile.decode.server_power.value())
                <= 1.0
        );
    }

    #[test]
    fn impossible_limits_fall_back_to_lowest_power() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.9);
        let current = InstanceConfig::default_70b();
        let limits = InstanceLimits {
            max_gpu_power: Watts::new(1.0),
            max_server_power: Kilowatts::new(0.001),
            demand_tokens_per_s: 10.0,
        };
        let decision = configurator.select(&current, &limits, &profiles);
        // The fallback is the lowest-power profile in the sweep.
        let min_power = profiles
            .llm
            .profiles
            .iter()
            .map(|p| p.blended_server_power(0.7).value())
            .fold(f64::MAX, f64::min);
        assert!((decision.profile.blended_server_power(0.7).value() - min_power).abs() < 1e-9);
    }

    #[test]
    fn mild_pressure_prefers_online_changes_over_model_reloads() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.9);
        let current = InstanceConfig::default_70b();
        // A modest per-GPU power cut that a frequency/batch change can absorb.
        let unconstrained = configurator.unconstrained(&current, 100.0, &profiles);
        let hottest_now = unconstrained
            .profile
            .prefill
            .gpu_power
            .value()
            .max(unconstrained.profile.decode.gpu_power.value());
        let limits = InstanceLimits {
            max_gpu_power: Watts::new(hottest_now * 0.9),
            max_server_power: Kilowatts::new(f64::MAX),
            demand_tokens_per_s: 50.0,
        };
        let decision = configurator.select(&current, &limits, &profiles);
        assert!(!decision.quality_degraded);
        assert!(
            !decision.cost.requires_reload() || decision.config.variant == current.variant,
            "a mild cut should not force a model reload: {:?}",
            decision.cost
        );
    }

    #[test]
    fn no_change_has_zero_cost() {
        let profiles = profiles();
        let configurator = InstanceConfigurator::new(0.9);
        let current = InstanceConfig::default_70b();
        let decision = configurator.unconstrained(&current, 100.0, &profiles);
        if decision.config == current {
            assert_eq!(decision.cost, ReconfigurationCost::None);
        }
        assert_eq!(InstanceConfigurator::new(2.0).quality_slo, 1.0);
    }
}
