//! Geo-aware placement: steering VM arrivals across datacenters.
//!
//! TAPAS's thermal/power headroom exploitation compounds across sites: different
//! datacenters see different outside temperatures, power budgets and load, so a fleet
//! layer can route each VM arrival to the site with the most thermal and power slack and
//! shift load away from sites in a power or thermal emergency. This module is the
//! decision core: it consumes one [`SiteSignals`] per datacenter — a fixed-size summary a
//! fleet step loop refreshes from the dense per-step telemetry grids — and returns a site
//! ordinal per arrival. It holds no per-site maps and allocates nothing after
//! [`GeoPlacement::begin_step`] has sized its per-site scratch once.

use serde::{Deserialize, Serialize};

/// One datacenter's per-step scheduling signals, aggregated from its dense telemetry.
///
/// All fields are plain scalars so a fleet can keep one flat `Vec<SiteSignals>` refreshed
/// in place each step (site ordinal = vector index, mirroring the ordinal-grid contract).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSignals {
    /// Aggregate unused row power budget (kW), from `PowerAssessment::total_row_headroom`.
    pub power_headroom_kw: f64,
    /// Worst utilization across the site's power hierarchy (`> 1.0` means capping).
    pub worst_power_utilization: f64,
    /// Margin to the GPU throttle limit (°C): `throttle_temp − max_gpu_temp`. Negative
    /// while GPUs are throttling.
    pub thermal_slack_c: f64,
    /// Normalized datacenter load in `[0, 1]`.
    pub dc_load: f64,
    /// Servers currently free to take a VM.
    pub free_servers: u32,
    /// GPUs thermally throttled in the last step.
    pub throttled_gpus: u32,
    /// Servers power-capped in the last step.
    pub capped_servers: u32,
    /// Grid energy price the site currently pays ($/MWh). Exogenous: a fleet layer
    /// refreshes it from its scenario's price timeline, not from telemetry. Sites with
    /// equal prices score identically on the price term, so fleets without price
    /// diversity behave exactly as if the term did not exist.
    pub grid_price_per_mwh: f64,
}

impl SiteSignals {
    /// Signals of a site that has reported no telemetry yet: fully free, no emergencies.
    #[must_use]
    pub fn cold_start(free_servers: u32, power_headroom_kw: f64) -> Self {
        Self {
            power_headroom_kw,
            worst_power_utilization: 0.0,
            thermal_slack_c: 40.0,
            dc_load: 0.0,
            free_servers,
            throttled_gpus: 0,
            capped_servers: 0,
            grid_price_per_mwh: 0.0,
        }
    }

    /// Returns `true` while the site is in a power or thermal emergency: it throttled or
    /// capped during the last step, or some hierarchy level is at its budget.
    #[must_use]
    pub fn in_emergency(&self) -> bool {
        self.throttled_gpus > 0
            || self.capped_servers > 0
            || self.worst_power_utilization >= 1.0
            || self.thermal_slack_c <= 0.0
    }
}

/// Tunable weights of the geo score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoConfig {
    /// Weight of the normalized power headroom term.
    pub power_weight: f64,
    /// Weight of the normalized thermal-slack term.
    pub thermal_weight: f64,
    /// Weight of the current-load penalty.
    pub load_weight: f64,
    /// Thermal slack (°C) that counts as "fully comfortable" (slack is normalized by it).
    pub thermal_slack_scale_c: f64,
    /// Weight of the grid-price penalty. The penalty is the price normalized across the
    /// fleet's current min–max price spread, so it only engages when sites actually pay
    /// different prices — a fleet with uniform prices scores bit-identically to one with
    /// no price signal at all.
    pub price_weight: f64,
    /// Score penalty applied to sites in emergency (large enough to dominate the other
    /// terms, so an emergency site is only chosen when every site is in emergency).
    pub emergency_penalty: f64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        Self {
            power_weight: 1.0,
            thermal_weight: 1.0,
            load_weight: 0.5,
            thermal_slack_scale_c: 30.0,
            price_weight: 0.75,
            emergency_penalty: 100.0,
        }
    }
}

/// Requests one free server is assumed to absorb per step before the request-routing
/// burst penalty reaches one full server's worth of charge. Mirrors the per-endpoint
/// quanta cap the cluster layer uses when splitting a step's demand.
const REQUESTS_PER_SERVER_SLOT: f64 = 64.0;

/// The headroom-seeking geo router.
///
/// Per step, call [`GeoPlacement::begin_step`] once, then [`GeoPlacement::choose`] once per
/// arrival. Within a step the router spreads a burst by charging each site for the
/// arrivals already assigned to it (one predicted server each), so a single step's burst
/// cannot pile onto one site just because its last-telemetry score was best.
///
/// The request fabric reuses the same scoring through [`GeoPlacement::choose_request`],
/// which keeps its own per-step counter so inference-request routing and VM routing do
/// not perturb each other's burst accounting.
#[derive(Debug, Clone, Default)]
pub struct GeoPlacement {
    /// Scoring weights.
    pub config: GeoConfig,
    /// Arrivals assigned to each site during the current step.
    assigned: Vec<u32>,
    /// Inference requests routed to each site during the current step.
    request_assigned: Vec<u32>,
}

impl GeoPlacement {
    /// Creates a router with explicit weights.
    #[must_use]
    pub fn new(config: GeoConfig) -> Self {
        Self { config, assigned: Vec::new(), request_assigned: Vec::new() }
    }

    /// Resets the per-step assignment scratch (sizes it on first use, then reuses it).
    pub fn begin_step(&mut self, site_count: usize) {
        self.assigned.resize(site_count, 0);
        self.assigned.fill(0);
        self.request_assigned.resize(site_count, 0);
        self.request_assigned.fill(0);
    }

    /// Picks the site for the next arrival. Deterministic: ties break toward the lowest
    /// site ordinal. Sites with no free server (after this step's earlier assignments) are
    /// skipped unless every site is full, in which case the best-scoring site still wins
    /// (the arrival will queue or be rejected there).
    ///
    /// # Panics
    /// Panics if `signals` is empty or its length differs from the `begin_step` size.
    #[must_use]
    pub fn choose(&mut self, signals: &[SiteSignals]) -> usize {
        assert!(!signals.is_empty(), "geo placement needs at least one site");
        assert_eq!(signals.len(), self.assigned.len(), "begin_step must size the scratch");
        let max_headroom = signals
            .iter()
            .map(|s| s.power_headroom_kw)
            .fold(0.0, f64::max)
            .max(1.0);
        // The price term normalizes over the fleet's current price spread: with uniform
        // prices the spread is zero and the term vanishes entirely, keeping price-less
        // fleets bit-identical to the pre-price scoring.
        let min_price = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::INFINITY, f64::min);
        let price_span = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::NEG_INFINITY, f64::max)
            - min_price;
        let any_capacity = signals
            .iter()
            .zip(&self.assigned)
            .any(|(s, &a)| s.free_servers > a);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (site, signal) in signals.iter().enumerate() {
            let assigned = self.assigned[site];
            let remaining = signal.free_servers.saturating_sub(assigned);
            if any_capacity && remaining == 0 {
                continue;
            }
            // Charge the site for arrivals already routed to it this step, relative to
            // its remaining capacity, so bursts spread across comparable sites.
            let burst = f64::from(assigned) / f64::from(signal.free_servers.max(1));
            let mut score = self.score(signal, burst, max_headroom);
            if price_span > 0.0 {
                score -= self.config.price_weight
                    * ((signal.grid_price_per_mwh - min_price) / price_span);
            }
            if score > best_score {
                best_score = score;
                best = site;
            }
        }
        self.assigned[best] += 1;
        best
    }

    /// Picks the site for the next inference request. Deterministic: ties break toward
    /// the lowest site ordinal, and no RNG is consumed. Unlike [`GeoPlacement::choose`]
    /// a site with zero free servers is never skipped — requests are served by the
    /// instances a site already runs, not by spare servers — and the burst charge is
    /// per-request scale (one free server absorbs [`REQUESTS_PER_SERVER_SLOT`] requests
    /// per step before the penalty reaches one server's worth), so routing a step's
    /// request stream does not instantly saturate the counter that VM `choose` uses.
    ///
    /// # Panics
    /// Panics if `signals` is empty or its length differs from the `begin_step` size.
    #[must_use]
    pub fn choose_request(&mut self, signals: &[SiteSignals]) -> usize {
        assert!(!signals.is_empty(), "geo placement needs at least one site");
        assert_eq!(
            signals.len(),
            self.request_assigned.len(),
            "begin_step must size the scratch"
        );
        let max_headroom = signals
            .iter()
            .map(|s| s.power_headroom_kw)
            .fold(0.0, f64::max)
            .max(1.0);
        let min_price = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::INFINITY, f64::min);
        let price_span = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::NEG_INFINITY, f64::max)
            - min_price;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (site, signal) in signals.iter().enumerate() {
            let burst = f64::from(self.request_assigned[site])
                / (f64::from(signal.free_servers.max(1)) * REQUESTS_PER_SERVER_SLOT);
            let mut score = self.score(signal, burst, max_headroom);
            if price_span > 0.0 {
                score -= self.config.price_weight
                    * ((signal.grid_price_per_mwh - min_price) / price_span);
            }
            if score > best_score {
                best_score = score;
                best = site;
            }
        }
        self.request_assigned[best] += 1;
        best
    }

    /// The score of one site (higher is better), given its pre-computed burst charge.
    fn score(&self, signal: &SiteSignals, burst: f64, max_headroom: f64) -> f64 {
        let c = &self.config;
        let headroom = (signal.power_headroom_kw / max_headroom).clamp(0.0, 1.0);
        let thermal =
            (signal.thermal_slack_c / c.thermal_slack_scale_c).clamp(-1.0, 1.0);
        let mut score = c.power_weight * headroom + c.thermal_weight * thermal
            - c.load_weight * signal.dc_load
            - burst;
        if signal.in_emergency() {
            score -= c.emergency_penalty;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comfortable(headroom: f64, slack: f64, load: f64) -> SiteSignals {
        SiteSignals {
            power_headroom_kw: headroom,
            worst_power_utilization: 0.5,
            thermal_slack_c: slack,
            dc_load: load,
            free_servers: 100,
            throttled_gpus: 0,
            capped_servers: 0,
            grid_price_per_mwh: 0.0,
        }
    }

    #[test]
    fn prefers_the_highest_headroom_coolest_site() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(200.0, 15.0, 0.6),
            comfortable(400.0, 30.0, 0.3),
        ];
        assert_eq!(geo.choose(&signals), 2);
    }

    #[test]
    fn spreads_bursts_across_comparable_sites() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let signals = [comfortable(100.0, 20.0, 0.5), comfortable(100.0, 20.0, 0.5)];
        let picks: Vec<usize> = (0..6).map(|_| geo.choose(&signals)).collect();
        assert!(picks.contains(&0) && picks.contains(&1), "burst must spread: {picks:?}");
    }

    #[test]
    fn shifts_load_away_from_emergencies() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut hot = comfortable(500.0, 25.0, 0.2);
        hot.throttled_gpus = 4;
        let cool = comfortable(10.0, 3.0, 0.95);
        // The emergency site loses even though every other term favours it.
        assert_eq!(geo.choose(&[hot, cool]), 1);
        // When every site is in emergency, the least-bad one is still chosen.
        let mut also_bad = cool;
        also_bad.capped_servers = 2;
        geo.begin_step(2);
        assert_eq!(geo.choose(&[hot, also_bad]), 0);
    }

    #[test]
    fn skips_full_sites_until_everything_is_full() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut full = comfortable(500.0, 30.0, 0.1);
        full.free_servers = 0;
        let open = comfortable(10.0, 5.0, 0.9);
        assert_eq!(geo.choose(&[full, open]), 1);
        let mut also_full = open;
        also_full.free_servers = 0;
        geo.begin_step(2);
        // Everything full: the better-scoring site wins and the arrival queues there.
        assert_eq!(geo.choose(&[full, also_full]), 0);
    }

    #[test]
    fn deterministic_tie_breaks_toward_the_lowest_ordinal() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let same = comfortable(100.0, 20.0, 0.5);
        assert_eq!(geo.choose(&[same, same, same]), 0);
    }

    #[test]
    fn price_spread_steers_away_from_the_expensive_site() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut expensive = comfortable(100.0, 20.0, 0.5);
        expensive.grid_price_per_mwh = 300.0;
        let mut cheap = comfortable(100.0, 20.0, 0.5);
        cheap.grid_price_per_mwh = 40.0;
        assert_eq!(geo.choose(&[expensive, cheap]), 1);
        // The penalty is bounded: an expensive site with far more slack still wins.
        let mut roomy = comfortable(400.0, 30.0, 0.1);
        roomy.grid_price_per_mwh = 300.0;
        let mut cramped = comfortable(10.0, 2.0, 0.95);
        cramped.grid_price_per_mwh = 40.0;
        geo.begin_step(2);
        assert_eq!(geo.choose(&[roomy, cramped]), 0);
    }

    #[test]
    fn uniform_prices_do_not_change_the_choice() {
        // Equal prices collapse the spread to zero: scores (and therefore picks) are
        // exactly those of a fleet with no price signal at all.
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(200.0, 15.0, 0.6),
            comfortable(400.0, 30.0, 0.3),
        ];
        let mut priced = signals;
        for s in &mut priced {
            s.grid_price_per_mwh = 120.0;
        }
        let mut geo = GeoPlacement::default();
        for _ in 0..3 {
            geo.begin_step(3);
            let plain: Vec<usize> = (0..5).map(|_| geo.choose(&signals)).collect();
            geo.begin_step(3);
            let with_price: Vec<usize> = (0..5).map(|_| geo.choose(&priced)).collect();
            assert_eq!(plain, with_price);
        }
    }

    #[test]
    fn request_routing_prefers_slack_and_avoids_emergencies() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(400.0, 30.0, 0.3),
            comfortable(200.0, 15.0, 0.6),
        ];
        assert_eq!(geo.choose_request(&signals), 1);
        let mut hot = comfortable(500.0, 25.0, 0.2);
        hot.throttled_gpus = 4;
        geo.begin_step(2);
        assert_eq!(geo.choose_request(&[hot, comfortable(10.0, 3.0, 0.95)]), 1);
    }

    #[test]
    fn request_routing_spreads_large_bursts_without_touching_vm_state() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let signals = [comfortable(100.0, 20.0, 0.5), comfortable(100.0, 20.0, 0.5)];
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[geo.choose_request(&signals)] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "request burst must spread: {counts:?}");
        // The VM burst counter is untouched: the next VM pick still ties to ordinal 0.
        assert_eq!(geo.choose(&signals), 0);
    }

    #[test]
    fn request_routing_never_skips_sites_without_free_servers() {
        // A site serving at capacity (no free servers) still holds running instances;
        // requests may be routed there when its score wins.
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut busy = comfortable(400.0, 30.0, 0.3);
        busy.free_servers = 0;
        let idle = comfortable(10.0, 3.0, 0.9);
        assert_eq!(geo.choose_request(&[busy, idle]), 0);
    }

    #[test]
    fn request_routing_ties_break_toward_the_lowest_ordinal() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let same = comfortable(100.0, 20.0, 0.5);
        assert_eq!(geo.choose_request(&[same, same, same]), 0);
    }

    #[test]
    fn cold_start_signals_are_not_emergencies() {
        let signals = SiteSignals::cold_start(8, 120.0);
        assert!(!signals.in_emergency());
        assert_eq!(signals.free_servers, 8);
        let mut throttling = signals;
        throttling.thermal_slack_c = -1.0;
        assert!(throttling.in_emergency());
    }
}
