//! Geo-aware placement: steering VM arrivals across datacenters.
//!
//! TAPAS's thermal/power headroom exploitation compounds across sites: different
//! datacenters see different outside temperatures, power budgets and load, so a fleet
//! layer can route each VM arrival to the site with the most thermal and power slack and
//! shift load away from sites in a power or thermal emergency. This module is the
//! decision core: it consumes one [`SiteSignals`] per datacenter — a fixed-size summary a
//! fleet step loop refreshes from the dense per-step telemetry grids — and returns a site
//! ordinal per arrival. It holds no per-site maps and allocates nothing after
//! [`GeoPlacement::begin_step`] has sized its per-site scratch once.

use serde::{Deserialize, Serialize};

/// One datacenter's per-step scheduling signals, aggregated from its dense telemetry.
///
/// All fields are plain scalars so a fleet can keep one flat `Vec<SiteSignals>` refreshed
/// in place each step (site ordinal = vector index, mirroring the ordinal-grid contract).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSignals {
    /// Aggregate unused row power budget (kW), from `PowerAssessment::total_row_headroom`.
    pub power_headroom_kw: f64,
    /// Worst utilization across the site's power hierarchy (`> 1.0` means capping).
    pub worst_power_utilization: f64,
    /// Margin to the GPU throttle limit (°C): `throttle_temp − max_gpu_temp`. Negative
    /// while GPUs are throttling.
    pub thermal_slack_c: f64,
    /// Normalized datacenter load in `[0, 1]`.
    pub dc_load: f64,
    /// Servers currently free to take a VM.
    pub free_servers: u32,
    /// GPUs thermally throttled in the last step.
    pub throttled_gpus: u32,
    /// Servers power-capped in the last step.
    pub capped_servers: u32,
    /// Grid energy price the site currently pays ($/MWh). Exogenous: a fleet layer
    /// refreshes it from its scenario's price timeline, not from telemetry. Sites with
    /// equal prices score identically on the price term, so fleets without price
    /// diversity behave exactly as if the term did not exist.
    pub grid_price_per_mwh: f64,
    /// Worst request-fabric KV/backlog pressure across the site's serving endpoints
    /// after the last step (`0.0` with the fabric off). Values above `1.0` mean at
    /// least one endpoint's schedulers are saturated — queues growing or decode slots
    /// evicting — typically because replica failures shrank effective serving capacity.
    /// Only [`GeoPlacement::choose_request`] reads it, and only past the saturation
    /// point, so VM routing and unsaturated fleets are bit-identical to builds without
    /// the field.
    pub request_pressure: f64,
}

impl SiteSignals {
    /// Signals of a site that has reported no telemetry yet: fully free, no emergencies.
    #[must_use]
    pub fn cold_start(free_servers: u32, power_headroom_kw: f64) -> Self {
        Self {
            power_headroom_kw,
            worst_power_utilization: 0.0,
            thermal_slack_c: 40.0,
            dc_load: 0.0,
            free_servers,
            throttled_gpus: 0,
            capped_servers: 0,
            grid_price_per_mwh: 0.0,
            request_pressure: 0.0,
        }
    }

    /// Returns `true` while the site is in a power or thermal emergency: it throttled or
    /// capped during the last step, or some hierarchy level is at its budget.
    #[must_use]
    pub fn in_emergency(&self) -> bool {
        self.throttled_gpus > 0
            || self.capped_servers > 0
            || self.worst_power_utilization >= 1.0
            || self.thermal_slack_c <= 0.0
    }
}

/// Tunable weights of the geo score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoConfig {
    /// Weight of the normalized power headroom term.
    pub power_weight: f64,
    /// Weight of the normalized thermal-slack term.
    pub thermal_weight: f64,
    /// Weight of the current-load penalty.
    pub load_weight: f64,
    /// Thermal slack (°C) that counts as "fully comfortable" (slack is normalized by it).
    pub thermal_slack_scale_c: f64,
    /// Weight of the grid-price penalty. The penalty is the price normalized across the
    /// fleet's current min–max price spread, so it only engages when sites actually pay
    /// different prices — a fleet with uniform prices scores bit-identically to one with
    /// no price signal at all.
    pub price_weight: f64,
    /// Score penalty applied to sites in emergency (large enough to dominate the other
    /// terms, so an emergency site is only chosen when every site is in emergency).
    pub emergency_penalty: f64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        Self {
            power_weight: 1.0,
            thermal_weight: 1.0,
            load_weight: 0.5,
            thermal_slack_scale_c: 30.0,
            price_weight: 0.75,
            emergency_penalty: 100.0,
        }
    }
}

/// Requests one free server is assumed to absorb per step before the request-routing
/// burst penalty reaches one full server's worth of charge. Mirrors the per-endpoint
/// quanta cap the cluster layer uses when splitting a step's demand.
const REQUESTS_PER_SERVER_SLOT: f64 = 64.0;

/// Down-weighting per unit of request-fabric pressure beyond saturation (`1.0`), applied
/// only in [`GeoPlacement::choose_request`]'s failover spread: a saturated site's share
/// weight is divided by `1 + penalty × over_pressure`. The fabric clamps its reported
/// pressure at `1.5`, so a distressed site bottoms out at half its
/// capacity-proportional share — enough slack for its backlog to drain, while never
/// starving it (a trickle keeps its recovery observable). Deliberately mild: the
/// capacity weights already subtract failed replicas, so a stronger penalty would
/// double-count the failure, idle the distressed site's surviving replicas and push
/// their load onto healthy sites that are already at capacity.
const REQUEST_SATURATION_PENALTY: f64 = 2.0;

/// The headroom-seeking geo router.
///
/// Per step, call [`GeoPlacement::begin_step`] once, then [`GeoPlacement::choose`] once per
/// arrival. Within a step the router spreads a burst by charging each site for the
/// arrivals already assigned to it (one predicted server each), so a single step's burst
/// cannot pile onto one site just because its last-telemetry score was best.
///
/// The request fabric reuses the same scoring through [`GeoPlacement::choose_request`],
/// which keeps its own per-step counter so inference-request routing and VM routing do
/// not perturb each other's burst accounting.
#[derive(Debug, Clone)]
pub struct GeoPlacement {
    /// Scoring weights.
    pub config: GeoConfig,
    /// Arrivals assigned to each site during the current step.
    assigned: Vec<u32>,
    /// Inference requests routed to each `(site, endpoint)` pair during the current
    /// step, site-major (`site × request_endpoints + endpoint`). Preference routing
    /// charges a site the row sum; the failover spread deals each endpoint's stream
    /// independently off its own column.
    request_assigned: Vec<u32>,
    /// Effective serving instances per `(site, endpoint)` pair, same layout — placed
    /// fabric replicas minus currently failed ones, refreshed by the fleet each step
    /// via [`GeoPlacement::set_request_capacity`]. All-zero columns (no placement
    /// telemetry yet, or the fabric is off) fall back to uniform capacity weights.
    request_capacity: Vec<u32>,
    /// Serving endpoints per site (sizes the two request matrices; at least 1).
    request_endpoints: usize,
    /// Latched once any site ever crossed request saturation: request routing stays in
    /// failover spread for the rest of the run (see [`GeoPlacement::choose_request`]).
    request_failover: bool,
}

impl Default for GeoPlacement {
    fn default() -> Self {
        Self::new(GeoConfig::default())
    }
}

impl GeoPlacement {
    /// Creates a router with explicit weights.
    #[must_use]
    pub fn new(config: GeoConfig) -> Self {
        Self {
            config,
            assigned: Vec::new(),
            request_assigned: Vec::new(),
            request_capacity: Vec::new(),
            request_endpoints: 1,
            request_failover: false,
        }
    }

    /// Declares how many serving endpoints each site runs (sizes the per-endpoint
    /// request matrices; call once before the first [`GeoPlacement::begin_step`]).
    /// Routers that never call this treat the request stream as one endpoint.
    pub fn set_request_endpoints(&mut self, endpoints: usize) {
        self.request_endpoints = endpoints.max(1);
    }

    /// Resets the per-step assignment scratch (sizes it on first use, then reuses it).
    pub fn begin_step(&mut self, site_count: usize) {
        self.assigned.resize(site_count, 0);
        self.assigned.fill(0);
        let cells = site_count * self.request_endpoints;
        self.request_assigned.resize(cells, 0);
        self.request_assigned.fill(0);
        self.request_capacity.resize(cells, 0);
        self.request_capacity.fill(0);
    }

    /// Publishes one site's effective per-endpoint serving capacity (placed fabric
    /// replicas minus currently failed ones) for this step's failover spread. Rows
    /// shorter than the declared endpoint count leave the remaining columns at zero;
    /// extra entries are ignored.
    pub fn set_request_capacity(&mut self, site: usize, effective_replicas: &[u32]) {
        let base = site * self.request_endpoints;
        for (endpoint, &count) in
            effective_replicas.iter().take(self.request_endpoints).enumerate()
        {
            self.request_capacity[base + endpoint] = count;
        }
    }

    /// Picks the site for the next arrival. Deterministic: ties break toward the lowest
    /// site ordinal. Sites with no free server (after this step's earlier assignments) are
    /// skipped unless every site is full, in which case the best-scoring site still wins
    /// (the arrival will queue or be rejected there).
    ///
    /// # Panics
    /// Panics if `signals` is empty or its length differs from the `begin_step` size.
    #[must_use]
    pub fn choose(&mut self, signals: &[SiteSignals]) -> usize {
        assert!(!signals.is_empty(), "geo placement needs at least one site");
        assert_eq!(signals.len(), self.assigned.len(), "begin_step must size the scratch");
        let max_headroom = signals
            .iter()
            .map(|s| s.power_headroom_kw)
            .fold(0.0, f64::max)
            .max(1.0);
        // The price term normalizes over the fleet's current price spread: with uniform
        // prices the spread is zero and the term vanishes entirely, keeping price-less
        // fleets bit-identical to the pre-price scoring.
        let min_price = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::INFINITY, f64::min);
        let price_span = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::NEG_INFINITY, f64::max)
            - min_price;
        let any_capacity = signals
            .iter()
            .zip(&self.assigned)
            .any(|(s, &a)| s.free_servers > a);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (site, signal) in signals.iter().enumerate() {
            let assigned = self.assigned[site];
            let remaining = signal.free_servers.saturating_sub(assigned);
            if any_capacity && remaining == 0 {
                continue;
            }
            // Charge the site for arrivals already routed to it this step, relative to
            // its remaining capacity, so bursts spread across comparable sites.
            let burst = f64::from(assigned) / f64::from(signal.free_servers.max(1));
            let mut score = self.score(signal, burst, max_headroom);
            if price_span > 0.0 {
                score -= self.config.price_weight
                    * ((signal.grid_price_per_mwh - min_price) / price_span);
            }
            if score > best_score {
                best_score = score;
                best = site;
            }
        }
        self.assigned[best] += 1;
        best
    }

    /// Picks the site for the next inference request. Deterministic: ties break toward
    /// the lowest site ordinal, and no RNG is consumed. Unlike [`GeoPlacement::choose`]
    /// a site with zero free servers is never skipped — requests are served by the
    /// instances a site already runs, not by spare servers — and the burst charge is
    /// per-request scale (one free server absorbs [`REQUESTS_PER_SERVER_SLOT`] requests
    /// per step before the penalty reaches one server's worth), so routing a step's
    /// request stream does not instantly saturate the counter that VM `choose` uses.
    ///
    /// While no site has ever reported saturation, routing is pure preference scoring
    /// (headroom, thermal, load, price) and bit-identical to builds without the
    /// pressure signal. The moment *any* site crosses saturation
    /// (`request_pressure > 1.0` — its schedulers are shedding or evicting, typically
    /// under replica failures), the router latches into **failover spread** for the
    /// rest of the run: a weighted deficit round-robin that deals each endpoint's
    /// stream proportionally to where that endpoint's effective serving instances
    /// live (see [`GeoPlacement::set_request_capacity`]), with a saturated site's
    /// weight shrinking by [`REQUEST_SATURATION_PENALTY`] per unit of over-pressure.
    /// Preference routing concentrates — exactly the wrong move once serving capacity
    /// is the binding constraint — and because the pressure telemetry is one step
    /// stale, un-latching on recovery would oscillate: a single concentrated step
    /// re-saturates the favoured site and sheds its excess before the signal can
    /// react. So after first distress the router protects capacity permanently,
    /// keeping a trickle flowing to distressed sites (never zero, so their recovery
    /// is observable). With uniform capacity and every site saturated the weights
    /// collapse to uniform and the spread degrades gracefully to an even split.
    ///
    /// # Panics
    /// Panics if `signals` is empty, its length differs from the `begin_step` size, or
    /// `endpoint` is at or beyond the declared endpoint count.
    #[must_use]
    pub fn choose_request(&mut self, signals: &[SiteSignals], endpoint: usize) -> usize {
        assert!(!signals.is_empty(), "geo placement needs at least one site");
        assert_eq!(
            signals.len() * self.request_endpoints,
            self.request_assigned.len(),
            "begin_step must size the scratch"
        );
        assert!(
            endpoint < self.request_endpoints,
            "endpoint {endpoint} beyond the declared {} endpoints",
            self.request_endpoints
        );
        if self.request_failover || signals.iter().any(|s| s.request_pressure > 1.0) {
            self.request_failover = true;
            return self.choose_request_failover(signals, endpoint);
        }
        let max_headroom = signals
            .iter()
            .map(|s| s.power_headroom_kw)
            .fold(0.0, f64::max)
            .max(1.0);
        let min_price = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::INFINITY, f64::min);
        let price_span = signals
            .iter()
            .map(|s| s.grid_price_per_mwh)
            .fold(f64::NEG_INFINITY, f64::max)
            - min_price;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (site, signal) in signals.iter().enumerate() {
            let burst = f64::from(self.site_request_total(site))
                / (f64::from(signal.free_servers.max(1)) * REQUESTS_PER_SERVER_SLOT);
            let mut score = self.score(signal, burst, max_headroom);
            if price_span > 0.0 {
                score -= self.config.price_weight
                    * ((signal.grid_price_per_mwh - min_price) / price_span);
            }
            if score > best_score {
                best_score = score;
                best = site;
            }
        }
        self.request_assigned[best * self.request_endpoints + endpoint] += 1;
        best
    }

    /// Requests routed to `site` so far this step, across all endpoints (the burst
    /// charge of preference-mode request routing).
    fn site_request_total(&self, site: usize) -> u32 {
        let base = site * self.request_endpoints;
        self.request_assigned[base..base + self.request_endpoints].iter().sum()
    }

    /// Failover spread: weighted deficit round-robin over the step's per-endpoint
    /// request counters. Each pick goes to the site with the smallest weighted deficit
    /// `(assigned[site, endpoint] + 1) / weight`, where the weight is the site's
    /// effective serving-instance count *for this endpoint* divided by
    /// `1 + REQUEST_SATURATION_PENALTY × over_pressure`. Endpoint schedulers cannot
    /// steal work from each other, so dealing must match each endpoint's stream to
    /// where that endpoint's replicas actually run (VM placement and replica failures
    /// skew them independently per site); at the fabric's pressure clamp (`1.5`) a
    /// distressed site draws half of its capacity-proportional share. Endpoints
    /// with no reported instances anywhere fall back to uniform capacity weights. The
    /// split is volume-independent (shares, not scores, so it holds at any step's
    /// request rate) and deterministic: ties break toward the lowest site ordinal.
    fn choose_request_failover(&mut self, signals: &[SiteSignals], endpoint: usize) -> usize {
        let instances_known = (0..signals.len())
            .any(|site| self.request_capacity[site * self.request_endpoints + endpoint] > 0);
        let mut best = 0usize;
        let mut best_deficit = f64::INFINITY;
        for (site, signal) in signals.iter().enumerate() {
            let cell = site * self.request_endpoints + endpoint;
            let capacity = if instances_known {
                f64::from(self.request_capacity[cell])
            } else {
                1.0
            };
            let over = (signal.request_pressure - 1.0).max(0.0);
            let weight = capacity / (1.0 + REQUEST_SATURATION_PENALTY * over);
            let deficit = (f64::from(self.request_assigned[cell]) + 1.0) / weight;
            if deficit < best_deficit {
                best_deficit = deficit;
                best = site;
            }
        }
        self.request_assigned[best * self.request_endpoints + endpoint] += 1;
        best
    }

    /// The score of one site (higher is better), given its pre-computed burst charge.
    fn score(&self, signal: &SiteSignals, burst: f64, max_headroom: f64) -> f64 {
        let c = &self.config;
        let headroom = (signal.power_headroom_kw / max_headroom).clamp(0.0, 1.0);
        let thermal =
            (signal.thermal_slack_c / c.thermal_slack_scale_c).clamp(-1.0, 1.0);
        let mut score = c.power_weight * headroom + c.thermal_weight * thermal
            - c.load_weight * signal.dc_load
            - burst;
        if signal.in_emergency() {
            score -= c.emergency_penalty;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comfortable(headroom: f64, slack: f64, load: f64) -> SiteSignals {
        SiteSignals {
            power_headroom_kw: headroom,
            worst_power_utilization: 0.5,
            thermal_slack_c: slack,
            dc_load: load,
            free_servers: 100,
            throttled_gpus: 0,
            capped_servers: 0,
            grid_price_per_mwh: 0.0,
            request_pressure: 0.0,
        }
    }

    #[test]
    fn prefers_the_highest_headroom_coolest_site() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(200.0, 15.0, 0.6),
            comfortable(400.0, 30.0, 0.3),
        ];
        assert_eq!(geo.choose(&signals), 2);
    }

    #[test]
    fn spreads_bursts_across_comparable_sites() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let signals = [comfortable(100.0, 20.0, 0.5), comfortable(100.0, 20.0, 0.5)];
        let picks: Vec<usize> = (0..6).map(|_| geo.choose(&signals)).collect();
        assert!(picks.contains(&0) && picks.contains(&1), "burst must spread: {picks:?}");
    }

    #[test]
    fn shifts_load_away_from_emergencies() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut hot = comfortable(500.0, 25.0, 0.2);
        hot.throttled_gpus = 4;
        let cool = comfortable(10.0, 3.0, 0.95);
        // The emergency site loses even though every other term favours it.
        assert_eq!(geo.choose(&[hot, cool]), 1);
        // When every site is in emergency, the least-bad one is still chosen.
        let mut also_bad = cool;
        also_bad.capped_servers = 2;
        geo.begin_step(2);
        assert_eq!(geo.choose(&[hot, also_bad]), 0);
    }

    #[test]
    fn skips_full_sites_until_everything_is_full() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut full = comfortable(500.0, 30.0, 0.1);
        full.free_servers = 0;
        let open = comfortable(10.0, 5.0, 0.9);
        assert_eq!(geo.choose(&[full, open]), 1);
        let mut also_full = open;
        also_full.free_servers = 0;
        geo.begin_step(2);
        // Everything full: the better-scoring site wins and the arrival queues there.
        assert_eq!(geo.choose(&[full, also_full]), 0);
    }

    #[test]
    fn deterministic_tie_breaks_toward_the_lowest_ordinal() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let same = comfortable(100.0, 20.0, 0.5);
        assert_eq!(geo.choose(&[same, same, same]), 0);
    }

    #[test]
    fn price_spread_steers_away_from_the_expensive_site() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut expensive = comfortable(100.0, 20.0, 0.5);
        expensive.grid_price_per_mwh = 300.0;
        let mut cheap = comfortable(100.0, 20.0, 0.5);
        cheap.grid_price_per_mwh = 40.0;
        assert_eq!(geo.choose(&[expensive, cheap]), 1);
        // The penalty is bounded: an expensive site with far more slack still wins.
        let mut roomy = comfortable(400.0, 30.0, 0.1);
        roomy.grid_price_per_mwh = 300.0;
        let mut cramped = comfortable(10.0, 2.0, 0.95);
        cramped.grid_price_per_mwh = 40.0;
        geo.begin_step(2);
        assert_eq!(geo.choose(&[roomy, cramped]), 0);
    }

    #[test]
    fn uniform_prices_do_not_change_the_choice() {
        // Equal prices collapse the spread to zero: scores (and therefore picks) are
        // exactly those of a fleet with no price signal at all.
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(200.0, 15.0, 0.6),
            comfortable(400.0, 30.0, 0.3),
        ];
        let mut priced = signals;
        for s in &mut priced {
            s.grid_price_per_mwh = 120.0;
        }
        let mut geo = GeoPlacement::default();
        for _ in 0..3 {
            geo.begin_step(3);
            let plain: Vec<usize> = (0..5).map(|_| geo.choose(&signals)).collect();
            geo.begin_step(3);
            let with_price: Vec<usize> = (0..5).map(|_| geo.choose(&priced)).collect();
            assert_eq!(plain, with_price);
        }
    }

    #[test]
    fn request_routing_prefers_slack_and_avoids_emergencies() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let signals = [
            comfortable(50.0, 5.0, 0.9),
            comfortable(400.0, 30.0, 0.3),
            comfortable(200.0, 15.0, 0.6),
        ];
        assert_eq!(geo.choose_request(&signals, 0), 1);
        let mut hot = comfortable(500.0, 25.0, 0.2);
        hot.throttled_gpus = 4;
        geo.begin_step(2);
        assert_eq!(geo.choose_request(&[hot, comfortable(10.0, 3.0, 0.95)], 0), 1);
    }

    #[test]
    fn request_routing_spreads_large_bursts_without_touching_vm_state() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let signals = [comfortable(100.0, 20.0, 0.5), comfortable(100.0, 20.0, 0.5)];
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[geo.choose_request(&signals, 0)] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "request burst must spread: {counts:?}");
        // The VM burst counter is untouched: the next VM pick still ties to ordinal 0.
        assert_eq!(geo.choose(&signals), 0);
    }

    #[test]
    fn request_routing_never_skips_sites_without_free_servers() {
        // A site serving at capacity (no free servers) still holds running instances;
        // requests may be routed there when its score wins.
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut busy = comfortable(400.0, 30.0, 0.3);
        busy.free_servers = 0;
        let idle = comfortable(10.0, 3.0, 0.9);
        assert_eq!(geo.choose_request(&[busy, idle], 0), 0);
    }

    #[test]
    fn saturated_request_pressure_diverts_requests_but_not_vms() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let mut saturated = comfortable(400.0, 30.0, 0.3);
        saturated.request_pressure = 1.5;
        let healthy = comfortable(50.0, 5.0, 0.9);
        // Requests avoid the saturated schedulers even though every other term favours
        // that site; VM placement ignores request pressure entirely.
        assert_eq!(geo.choose_request(&[saturated, healthy], 0), 1);
        assert_eq!(geo.choose(&[saturated, healthy]), 0);
    }

    #[test]
    fn failover_spread_splits_by_pressure_weight() {
        // One site at the pressure clamp (half weight), two healthy: over 1000 requests
        // the healthy pair splits evenly and the distressed site draws about half a
        // healthy share — room for its backlog to drain, but never starved.
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let mut distressed = comfortable(400.0, 30.0, 0.3);
        distressed.request_pressure = 1.5;
        let healthy = comfortable(100.0, 20.0, 0.5);
        let signals = [distressed, healthy, healthy];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[geo.choose_request(&signals, 0)] += 1;
        }
        assert!(
            counts[1].abs_diff(counts[2]) <= 1,
            "healthy sites split evenly: {counts:?}"
        );
        assert!(counts[0] > 0, "distressed site keeps a trickle: {counts:?}");
        assert!(
            counts[0] < counts[1] && counts[0] * 3 > counts[1],
            "distressed site draws about half a healthy share: {counts:?}"
        );
    }

    #[test]
    fn failover_latches_for_the_rest_of_the_run_after_first_saturation() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let preferred = comfortable(400.0, 30.0, 0.3);
        let weaker = comfortable(50.0, 5.0, 0.9);
        // Preference scoring picks the roomy site while everything is healthy.
        assert_eq!(geo.choose_request(&[preferred, weaker], 0), 0);
        // One saturated observation latches failover spread...
        let mut saturated = preferred;
        saturated.request_pressure = 1.5;
        geo.begin_step(2);
        assert_eq!(geo.choose_request(&[saturated, weaker], 0), 1);
        // ...and recovery does not un-latch: the next step still spreads evenly
        // (deficit round-robin alternates) instead of re-concentrating on site 0.
        geo.begin_step(2);
        let picks: Vec<usize> =
            (0..4).map(|_| geo.choose_request(&[preferred, weaker], 0)).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
        // VM placement is unaffected by the request latch.
        assert_eq!(geo.choose(&[preferred, weaker]), 0);
    }

    #[test]
    fn failover_spread_deals_each_endpoint_to_its_own_capacity() {
        // Two endpoints placed in opposite proportions across two sites: each
        // endpoint's stream must follow its *own* replicas (schedulers cannot steal
        // work across endpoints), not the sites' aggregate instance counts.
        let mut geo = GeoPlacement::default();
        geo.set_request_endpoints(2);
        geo.begin_step(2);
        geo.set_request_capacity(0, &[3, 1]);
        geo.set_request_capacity(1, &[1, 3]);
        let mut saturated = comfortable(100.0, 20.0, 0.5);
        saturated.request_pressure = 1.01; // engages failover, negligible down-weight
        let signals = [saturated, comfortable(100.0, 20.0, 0.5)];
        let mut by_endpoint = [[0usize; 2]; 2];
        for _ in 0..400 {
            by_endpoint[0][geo.choose_request(&signals, 0)] += 1;
            by_endpoint[1][geo.choose_request(&signals, 1)] += 1;
        }
        assert!(
            by_endpoint[0][0] > 2 * by_endpoint[0][1],
            "endpoint 0 follows site 0's replicas: {by_endpoint:?}"
        );
        assert!(
            by_endpoint[1][1] > 2 * by_endpoint[1][0],
            "endpoint 1 follows site 1's replicas: {by_endpoint:?}"
        );
    }

    #[test]
    fn failover_spread_degrades_to_an_even_split_when_every_site_is_saturated() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let mut drowning = comfortable(100.0, 20.0, 0.5);
        drowning.request_pressure = 1.5;
        let signals = [drowning, drowning, drowning];
        let mut counts = [0usize; 3];
        for _ in 0..999 {
            counts[geo.choose_request(&signals, 0)] += 1;
        }
        assert_eq!(counts, [333, 333, 333], "uniform weights spread evenly");
    }

    #[test]
    fn sub_saturation_request_pressure_changes_nothing() {
        let base = [comfortable(50.0, 5.0, 0.9), comfortable(400.0, 30.0, 0.3)];
        let mut loaded = base;
        loaded[0].request_pressure = 0.97;
        loaded[1].request_pressure = 1.0;
        let mut geo = GeoPlacement::default();
        geo.begin_step(2);
        let plain: Vec<usize> = (0..6).map(|_| geo.choose_request(&base, 0)).collect();
        geo.begin_step(2);
        let pressured: Vec<usize> = (0..6).map(|_| geo.choose_request(&loaded, 0)).collect();
        assert_eq!(plain, pressured, "pressure at or below 1.0 is score-neutral");
    }

    #[test]
    fn request_routing_ties_break_toward_the_lowest_ordinal() {
        let mut geo = GeoPlacement::default();
        geo.begin_step(3);
        let same = comfortable(100.0, 20.0, 0.5);
        assert_eq!(geo.choose_request(&[same, same, same], 0), 0);
    }

    #[test]
    fn cold_start_signals_are_not_emergencies() {
        let signals = SiteSignals::cold_start(8, 120.0);
        assert!(!signals.in_emergency());
        assert_eq!(signals.free_servers, 8);
        let mut throttling = signals;
        throttling.thermal_slack_c = -1.0;
        assert!(throttling.in_emergency());
    }
}
