//! VM placement policies (§4.1, §4.5 "VM Allocator").
//!
//! The allocator is rule-based, in the spirit of Protean: a *validator* rule filters out
//! servers whose aisle or row would exceed its airflow or power provisioning if the new VM's
//! predicted peak load landed there (Eq. 3/4 with predicted values); a first *preference* rule
//! steers IaaS VMs toward cooler servers and SaaS VMs toward warmer servers (classified into
//! cold/medium/warm terciles of predicted peak GPU temperature); a second preference rule
//! keeps the IaaS/SaaS mix of each row balanced so the SaaS flexibility is spread across the
//! power/airflow domains. The Baseline allocator is thermal- and power-oblivious: it packs
//! VMs onto the lowest-numbered free server.

use crate::profiles::ProfileStore;
use crate::state::ClusterState;
use dc_sim::ids::ServerId;
use dc_sim::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts};
use std::collections::BTreeMap;
use workload::vm::{Vm, VmKind};

/// A placement request for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// The VM to place.
    pub vm: Vm,
    /// Predicted peak mean-GPU load of the VM in `[0, 1]` (from the owning customer's or
    /// endpoint's history; 1.0 when no history exists, §4.1).
    pub predicted_peak_load: f64,
}

/// Design conditions the allocator plans for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignConditions {
    /// Outside temperature assumed when estimating peak GPU temperatures (a hot-day design
    /// point).
    pub design_outside_temp: Celsius,
    /// Datacenter load fraction assumed for inlet estimation.
    pub design_dc_load: f64,
}

impl Default for DesignConditions {
    fn default() -> Self {
        Self { design_outside_temp: Celsius::new(32.0), design_dc_load: 0.8 }
    }
}

/// A VM placement policy.
pub trait VmPlacementPolicy {
    /// Chooses a server for the VM, or `None` if no feasible server exists.
    fn place(
        &self,
        request: &PlacementRequest,
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
    ) -> Option<ServerId>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The thermal- and power-oblivious baseline: first free server in id order (a packing
/// placement that concentrates load, as conventional allocators optimized for fragmentation
/// do).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BaselinePlacement;

impl VmPlacementPolicy for BaselinePlacement {
    fn place(
        &self,
        _request: &PlacementRequest,
        state: &ClusterState,
        _layout: &Layout,
        _profiles: &ProfileStore,
    ) -> Option<ServerId> {
        state.first_free()
    }

    fn name(&self) -> &'static str {
        "baseline-placement"
    }
}

/// Incrementally maintained placement aggregates plus reusable scratch buffers.
///
/// The TAPAS validator compares each candidate row's/aisle's *predicted peak* power and
/// airflow against its provisioning. Recomputing those aggregates scans every server per
/// placement decision; the planner instead carries them as dense vectors updated in O(1) on
/// every place/retire event the caller reports, and caches each server's predicted inlet at
/// the design conditions (a per-server constant).
#[derive(Debug, Clone)]
pub struct PlacementPlanner {
    design: DesignConditions,
    /// Predicted peak power per row (kW), counting idle power for empty servers.
    row_power_kw: Vec<f64>,
    /// Predicted peak airflow per aisle (CFM), counting idle airflow for empty servers.
    aisle_airflow_cfm: Vec<f64>,
    /// Predicted inlet temperature per server at the design conditions.
    design_inlet_c: Vec<f64>,
    /// Scratch: validated candidate servers.
    candidates: Vec<ServerId>,
    /// Scratch: `(server, predicted peak temperature)` pairs, sorted by temperature.
    temps: Vec<(ServerId, f64)>,
}

impl PlacementPlanner {
    /// Builds the planner from the current cluster state.
    #[must_use]
    pub fn new(
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
        design: DesignConditions,
    ) -> Self {
        let mut row_power_kw = vec![0.0; layout.rows().len()];
        let mut aisle_airflow_cfm = vec![0.0; layout.aisles().len()];
        for server in layout.servers() {
            let profile = profiles.server(server.id);
            let (power, airflow) = match state.vm_on(server.id) {
                Some(placed) => (
                    profile.predicted_power(placed.predicted_peak_load).value(),
                    profile.predicted_airflow(placed.predicted_peak_load).value(),
                ),
                None => (
                    profile.spec.idle_power.value(),
                    profile.spec.idle_airflow.value(),
                ),
            };
            row_power_kw[server.row.index()] += power;
            aisle_airflow_cfm[server.aisle.index()] += airflow;
        }
        let design_inlet_c = layout
            .servers()
            .iter()
            .map(|server| {
                profiles
                    .server(server.id)
                    .predicted_inlet(design.design_outside_temp, design.design_dc_load)
                    .value()
            })
            .collect();
        Self {
            design,
            row_power_kw,
            aisle_airflow_cfm,
            design_inlet_c,
            candidates: Vec::new(),
            temps: Vec::new(),
        }
    }

    /// The design conditions the planner assumes.
    #[must_use]
    pub fn design(&self) -> DesignConditions {
        self.design
    }

    /// Records that a VM with `predicted_peak_load` was placed on `server`.
    pub fn on_place(&mut self, server: ServerId, predicted_peak_load: f64, profiles: &ProfileStore) {
        let profile = profiles.server(server);
        let load = predicted_peak_load.clamp(0.0, 1.0);
        self.row_power_kw[profile.row.index()] +=
            profile.predicted_power(load).value() - profile.spec.idle_power.value();
        self.aisle_airflow_cfm[profile.aisle.index()] +=
            profile.predicted_airflow(load).value() - profile.spec.idle_airflow.value();
    }

    /// Records that the VM previously placed on `server` (with the given predicted peak)
    /// retired.
    pub fn on_remove(
        &mut self,
        server: ServerId,
        predicted_peak_load: f64,
        profiles: &ProfileStore,
    ) {
        let profile = profiles.server(server);
        let load = predicted_peak_load.clamp(0.0, 1.0);
        self.row_power_kw[profile.row.index()] -=
            profile.predicted_power(load).value() - profile.spec.idle_power.value();
        self.aisle_airflow_cfm[profile.aisle.index()] -=
            profile.predicted_airflow(load).value() - profile.spec.idle_airflow.value();
    }

    /// Predicted peak power of a row (kW).
    #[must_use]
    pub fn row_power_kw(&self, row: dc_sim::ids::RowId) -> f64 {
        self.row_power_kw[row.index()]
    }
}

/// Tuning parameters of the TAPAS placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapasPlacementConfig {
    /// Design conditions used for temperature estimation.
    pub design: DesignConditions,
    /// Fraction of the row power budget the validator allows predicted peaks to reach.
    pub power_safety_fraction: f64,
    /// Fraction of the aisle airflow provisioning the validator allows predicted peaks to
    /// reach.
    pub airflow_safety_fraction: f64,
    /// Weight of the thermal preference when scoring candidates.
    pub thermal_weight: f64,
    /// Weight of the IaaS/SaaS balance preference when scoring candidates.
    pub balance_weight: f64,
}

impl Default for TapasPlacementConfig {
    fn default() -> Self {
        Self {
            design: DesignConditions::default(),
            power_safety_fraction: 0.97,
            airflow_safety_fraction: 0.97,
            thermal_weight: 1.0,
            balance_weight: 0.5,
        }
    }
}

/// The TAPAS thermal- and power-aware placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct TapasPlacement {
    /// Tuning parameters.
    pub config: TapasPlacementConfig,
}


impl TapasPlacement {
    /// Current predicted peak power per row from already-placed VMs (idle power for empty
    /// servers).
    ///
    /// Reference implementation of the aggregate [`PlacementPlanner`] maintains
    /// incrementally; used by tests and audits.
    pub fn predicted_row_power(
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
    ) -> BTreeMap<dc_sim::ids::RowId, Kilowatts> {
        layout
            .rows()
            .iter()
            .map(|row| {
                let total: Kilowatts = row
                    .servers
                    .iter()
                    .map(|&s| match state.vm_on(s) {
                        Some(placed) => {
                            profiles.server(s).predicted_power(placed.predicted_peak_load)
                        }
                        None => profiles.server(s).spec.idle_power,
                    })
                    .sum();
                (row.id, total)
            })
            .collect()
    }

    /// Current predicted peak airflow per aisle from already-placed VMs.
    ///
    /// Reference implementation of the aggregate [`PlacementPlanner`] maintains
    /// incrementally; used by tests and audits.
    pub fn predicted_aisle_airflow(
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
    ) -> BTreeMap<dc_sim::ids::AisleId, CubicFeetPerMinute> {
        layout
            .aisles()
            .iter()
            .map(|aisle| {
                let total: CubicFeetPerMinute = aisle
                    .servers
                    .iter()
                    .map(|&s| match state.vm_on(s) {
                        Some(placed) => {
                            profiles.server(s).predicted_airflow(placed.predicted_peak_load)
                        }
                        None => profiles.server(s).spec.idle_airflow,
                    })
                    .sum();
                (aisle.id, total)
            })
            .collect()
    }

    /// Classifies every server's thermal tendency: the predicted worst-GPU temperature at the
    /// design conditions and the VM's predicted load. Returns the temperature per server.
    pub fn thermal_estimate(
        &self,
        profiles: &ProfileStore,
        server: ServerId,
        peak_load: f64,
    ) -> Celsius {
        let profile = profiles.server(server);
        let inlet = profile
            .predicted_inlet(self.config.design.design_outside_temp, self.config.design.design_dc_load);
        // Per-GPU power at the predicted load (static floor plus dynamic part), capped at the
        // GPU's TDP — the same shape the profiling observed.
        let gpu_max = profile.spec.gpu_max_power.to_watts().value();
        let gpu_share = (gpu_max * (0.15 + 0.85 * peak_load)).min(gpu_max);
        profile.predicted_worst_gpu_temp(inlet, simkit::units::Watts::new(gpu_share))
    }
}

impl TapasPlacement {
    /// Chooses a server using the planner's incrementally maintained aggregates and scratch
    /// buffers (the allocation-free hot path; [`VmPlacementPolicy::place`] wraps it with a
    /// transient planner).
    #[must_use]
    pub fn place_with(
        &self,
        request: &PlacementRequest,
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
        planner: &mut PlacementPlanner,
    ) -> Option<ServerId> {
        if state.free_count() == 0 {
            return None;
        }
        let peak_load = request.predicted_peak_load.clamp(0.0, 1.0);

        // Validator rule: filter servers whose row power or aisle airflow would exceed the
        // (safety-scaled) provisioning if the VM peaked there.
        let PlacementPlanner {
            row_power_kw,
            aisle_airflow_cfm,
            design_inlet_c,
            candidates,
            temps,
            ..
        } = planner;
        candidates.clear();
        for server_id in state.free_iter() {
            let profile = profiles.server(server_id);
            let row_budget = profiles.row_budget(profile.row).value()
                * self.config.power_safety_fraction;
            let aisle_budget = profiles.aisle_budget(profile.aisle).value()
                * self.config.airflow_safety_fraction;
            let new_row_power = row_power_kw[profile.row.index()]
                - profile.spec.idle_power.value()
                + profile.predicted_power(peak_load).value();
            let new_aisle_airflow = aisle_airflow_cfm[profile.aisle.index()]
                - profile.spec.idle_airflow.value()
                + profile.predicted_airflow(peak_load).value();
            if new_row_power <= row_budget && new_aisle_airflow <= aisle_budget {
                candidates.push(server_id);
            }
        }

        // Thermal terciles over the candidates (so the classification is stable): estimate
        // each candidate's peak temperature and rank. When the validator rejected everything,
        // fall back to every free server rather than rejecting outright.
        temps.clear();
        let estimate = |server: ServerId| -> f64 {
            let profile = profiles.server(server);
            let inlet = Celsius::new(design_inlet_c[server.index()]);
            let gpu_max = profile.spec.gpu_max_power.to_watts().value();
            let gpu_share = (gpu_max * (0.15 + 0.85 * peak_load)).min(gpu_max);
            profile
                .predicted_worst_gpu_temp(inlet, simkit::units::Watts::new(gpu_share))
                .value()
        };
        if candidates.is_empty() {
            temps.extend(state.free_iter().map(|s| (s, estimate(s))));
        } else {
            temps.extend(candidates.iter().map(|&s| (s, estimate(s))));
        }
        temps.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite temperatures"));
        let n = temps.len();
        let tercile_of = |rank: usize| -> usize {
            if n <= 1 {
                1
            } else if rank * 3 < n {
                0 // cold
            } else if rank * 3 < 2 * n {
                1 // medium
            } else {
                2 // warm
            }
        };
        let is_saas = matches!(request.vm.kind, VmKind::Saas { .. });
        let throttle_limit = profiles.thermal_headroom_target.value();

        let mut best: Option<(ServerId, f64)> = None;
        for (rank, &(server, temp)) in temps.iter().enumerate() {
            // SaaS VMs must never be placed somewhere that already predicts a violation.
            if is_saas && temp > throttle_limit {
                continue;
            }
            let tercile = tercile_of(rank);
            // Preference 1: IaaS prefers cold (tercile 0), SaaS prefers warm (tercile 2).
            let thermal_score = if is_saas {
                tercile as f64 / 2.0
            } else {
                1.0 - tercile as f64 / 2.0
            };
            // Preference 2: improve the IaaS/SaaS balance of the row.
            let row = profiles.server(server).row;
            let (iaas, saas) = state.row_mix(layout, row);
            let balance_score = {
                let (new_iaas, new_saas) =
                    if is_saas { (iaas, saas + 1) } else { (iaas + 1, saas) };
                let total = (new_iaas + new_saas) as f64;
                1.0 - ((new_iaas as f64 - new_saas as f64).abs() / total)
            };
            let score = self.config.thermal_weight * thermal_score
                + self.config.balance_weight * balance_score;
            match best {
                Some((_, best_score)) if best_score >= score => {}
                _ => best = Some((server, score)),
            }
        }
        best.map(|(s, _)| s).or_else(|| {
            // Every candidate predicted a thermal violation for a SaaS VM: pick the coolest.
            temps.first().map(|&(s, _)| s)
        })
    }
}

impl VmPlacementPolicy for TapasPlacement {
    fn place(
        &self,
        request: &PlacementRequest,
        state: &ClusterState,
        layout: &Layout,
        profiles: &ProfileStore,
    ) -> Option<ServerId> {
        let mut planner = PlacementPlanner::new(state, layout, profiles, self.config.design);
        self.place_with(request, state, layout, profiles, &mut planner)
    }

    fn name(&self) -> &'static str {
        "tapas-placement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;
    use simkit::time::{SimDuration, SimTime};
    use workload::endpoints::EndpointId;
    use workload::vm::{IaasCustomerId, VmId};

    fn setup() -> (Layout, ProfileStore) {
        let layout = LayoutConfig::real_cluster_two_rows().build();
        let dc = Datacenter::new(layout.clone(), 42);
        let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
        (layout, profiles)
    }

    fn vm(id: u64, saas: bool) -> Vm {
        Vm {
            id: VmId(id),
            kind: if saas {
                VmKind::Saas { endpoint: EndpointId(0) }
            } else {
                VmKind::Iaas { customer: IaasCustomerId(0) }
            },
            arrival: SimTime::ZERO,
            lifetime: SimDuration::from_days(14),
        }
    }

    fn request(id: u64, saas: bool, load: f64) -> PlacementRequest {
        PlacementRequest { vm: vm(id, saas), predicted_peak_load: load }
    }

    #[test]
    fn baseline_packs_lowest_free_server() {
        let (layout, profiles) = setup();
        let mut state = ClusterState::new(layout.server_count());
        let policy = BaselinePlacement;
        assert_eq!(policy.name(), "baseline-placement");
        let first = policy.place(&request(1, false, 1.0), &state, &layout, &profiles).unwrap();
        assert_eq!(first, ServerId::new(0));
        state.place(vm(1, false), first, 1.0, None).unwrap();
        let second = policy.place(&request(2, true, 1.0), &state, &layout, &profiles).unwrap();
        assert_eq!(second, ServerId::new(1));
    }

    #[test]
    fn tapas_places_iaas_cooler_than_saas() {
        let (layout, profiles) = setup();
        let state = ClusterState::new(layout.server_count());
        let policy = TapasPlacement::default();
        assert_eq!(policy.name(), "tapas-placement");
        let iaas_server = policy.place(&request(1, false, 0.9), &state, &layout, &profiles).unwrap();
        let saas_server = policy.place(&request(2, true, 0.9), &state, &layout, &profiles).unwrap();
        let temp_of = |s: ServerId| policy.thermal_estimate(&profiles, s, 0.9).value();
        assert!(
            temp_of(iaas_server) < temp_of(saas_server),
            "IaaS should land on a cooler server than SaaS ({} vs {})",
            temp_of(iaas_server),
            temp_of(saas_server)
        );
    }

    #[test]
    fn tapas_respects_row_power_validator() {
        let (layout, profiles) = setup();
        let mut state = ClusterState::new(layout.server_count());
        let policy = TapasPlacement::default();
        // Fill row 0 with peak-load VMs until its predicted power approaches the budget.
        let row0_servers = layout.rows()[0].servers.clone();
        for (i, &server) in row0_servers.iter().enumerate().take(30) {
            state.place(vm(100 + i as u64, false), server, 1.0, None).unwrap();
        }
        // The next peak-load VM must not land in row 0 (its predicted peak would exceed the
        // 85 %-provisioned budget), even though row 0 still has free servers.
        let chosen = policy.place(&request(1, false, 1.0), &state, &layout, &profiles).unwrap();
        let chosen_row = layout.server(chosen).row;
        assert_eq!(chosen_row.index(), 1, "validator should steer the VM to the other row");
    }

    #[test]
    fn tapas_balances_iaas_and_saas_across_rows() {
        let (layout, profiles) = setup();
        let mut state = ClusterState::new(layout.server_count());
        let policy = TapasPlacement::default();
        // Place an alternating stream and check that neither row ends up one-sided.
        for i in 0..40u64 {
            let saas = i % 2 == 0;
            let req = request(i, saas, 0.7);
            let server = policy.place(&req, &state, &layout, &profiles).unwrap();
            state.place(vm(i, saas), server, 0.7, None).unwrap();
        }
        for row in layout.rows() {
            let (iaas, saas) = state.row_mix(&layout, row.id);
            let total = iaas + saas;
            if total >= 8 {
                let imbalance = (iaas as f64 - saas as f64).abs() / total as f64;
                assert!(imbalance < 0.6, "row {} too one-sided: {iaas} IaaS vs {saas} SaaS", row.id);
            }
        }
    }

    #[test]
    fn full_cluster_returns_none_for_baseline_and_fallback_for_tapas() {
        let (layout, profiles) = setup();
        let mut state = ClusterState::new(layout.server_count());
        for i in 0..layout.server_count() {
            state
                .place(vm(i as u64, false), ServerId::new(i), 0.5, None)
                .unwrap();
        }
        assert!(BaselinePlacement
            .place(&request(999, false, 0.5), &state, &layout, &profiles)
            .is_none());
        assert!(TapasPlacement::default()
            .place(&request(999, false, 0.5), &state, &layout, &profiles)
            .is_none());
    }

    #[test]
    fn predicted_peaks_never_exceed_budget_under_tapas_when_feasible() {
        let (layout, profiles) = setup();
        let mut state = ClusterState::new(layout.server_count());
        let policy = TapasPlacement::default();
        // Place a realistic mixed stream at moderate predicted load and verify the invariant.
        for i in 0..60u64 {
            let saas = i % 2 == 0;
            let req = request(i, saas, 0.8);
            if let Some(server) = policy.place(&req, &state, &layout, &profiles) {
                state.place(vm(i, saas), server, 0.8, None).unwrap();
            }
        }
        let row_power = TapasPlacement::predicted_row_power(&state, &layout, &profiles);
        for row in layout.rows() {
            let budget = profiles.budgets.row_power[row.id];
            assert!(
                row_power[&row.id].value() <= budget.value() * 1.001,
                "row {} predicted peak {} exceeds budget {}",
                row.id,
                row_power[&row.id],
                budget
            );
        }
    }
}
