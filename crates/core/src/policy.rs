//! The policy matrix of the ablation study (§5.2, Fig. 20).
//!
//! The evaluation compares the thermal/power-oblivious Baseline against every combination of
//! TAPAS's three mechanisms — placement (Place), request routing (Route) and instance
//! configuration (Config) — and against full TAPAS (all three).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which TAPAS mechanisms are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Thermal- and power-oblivious placement and routing, no reconfiguration.
    Baseline,
    /// Only thermal/power-aware VM placement.
    Place,
    /// Only thermal/power-aware request routing.
    Route,
    /// Only instance reconfiguration.
    Config,
    /// Placement + routing.
    PlaceRoute,
    /// Placement + configuration.
    PlaceConfig,
    /// Routing + configuration.
    RouteConfig,
    /// Full TAPAS: placement + routing + configuration.
    Tapas,
}

impl Policy {
    /// All policies in the order Fig. 20 presents them.
    pub const ALL: [Policy; 8] = [
        Policy::Baseline,
        Policy::Place,
        Policy::Route,
        Policy::Config,
        Policy::PlaceRoute,
        Policy::PlaceConfig,
        Policy::RouteConfig,
        Policy::Tapas,
    ];

    /// Whether thermal/power-aware placement is enabled.
    #[must_use]
    pub fn placement_enabled(self) -> bool {
        matches!(
            self,
            Policy::Place | Policy::PlaceRoute | Policy::PlaceConfig | Policy::Tapas
        )
    }

    /// Whether thermal/power-aware routing is enabled.
    #[must_use]
    pub fn routing_enabled(self) -> bool {
        matches!(
            self,
            Policy::Route | Policy::PlaceRoute | Policy::RouteConfig | Policy::Tapas
        )
    }

    /// Whether instance reconfiguration is enabled.
    #[must_use]
    pub fn config_enabled(self) -> bool {
        matches!(
            self,
            Policy::Config | Policy::PlaceConfig | Policy::RouteConfig | Policy::Tapas
        )
    }

    /// Number of enabled mechanisms (0 for the Baseline, 3 for TAPAS).
    #[must_use]
    pub fn mechanism_count(self) -> usize {
        usize::from(self.placement_enabled())
            + usize::from(self.routing_enabled())
            + usize::from(self.config_enabled())
    }

    /// Short label used in figures and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Policy::Baseline => "Baseline",
            Policy::Place => "Place",
            Policy::Route => "Route",
            Policy::Config => "Config",
            Policy::PlaceRoute => "Place+Route",
            Policy::PlaceConfig => "Place+Config",
            Policy::RouteConfig => "Route+Config",
            Policy::Tapas => "TAPAS",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_policy_names() {
        assert!(!Policy::Baseline.placement_enabled());
        assert!(!Policy::Baseline.routing_enabled());
        assert!(!Policy::Baseline.config_enabled());
        assert!(Policy::Place.placement_enabled() && !Policy::Place.routing_enabled());
        assert!(Policy::Route.routing_enabled() && !Policy::Route.config_enabled());
        assert!(Policy::Config.config_enabled() && !Policy::Config.placement_enabled());
        assert!(Policy::PlaceRoute.placement_enabled() && Policy::PlaceRoute.routing_enabled());
        assert!(Policy::Tapas.placement_enabled());
        assert!(Policy::Tapas.routing_enabled());
        assert!(Policy::Tapas.config_enabled());
    }

    #[test]
    fn mechanism_counts() {
        assert_eq!(Policy::Baseline.mechanism_count(), 0);
        assert_eq!(Policy::Place.mechanism_count(), 1);
        assert_eq!(Policy::RouteConfig.mechanism_count(), 2);
        assert_eq!(Policy::Tapas.mechanism_count(), 3);
        assert_eq!(Policy::ALL.len(), 8);
        // All policies are distinct.
        let labels: std::collections::BTreeSet<&str> =
            Policy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn display_uses_figure_labels() {
        assert_eq!(Policy::Tapas.to_string(), "TAPAS");
        assert_eq!(Policy::PlaceConfig.to_string(), "Place+Config");
    }
}
