//! The TAPAS profile store (§4.5, "Profiles").
//!
//! During the initial deployment of a datacenter the operator runs benchmarks and validation
//! tests; TAPAS uses that window for *offline profiling*: it learns, per server, (1) the
//! inlet-temperature response to outside temperature and datacenter load, (2) the GPU
//! temperature response to inlet temperature and GPU power, (3) the fan airflow curve and
//! (4) the power-load curve. When a new LLM is onboarded it also profiles every instance
//! configuration (the sweep of `llm-sim::profile`). During regular operation the predictions
//! of row and VM power are refined weekly from observed telemetry using percentile templates.
//!
//! The store deliberately contains *fitted* models (via `simkit::regression`), not references
//! to the ground-truth simulator models: the controllers only ever see what real profiling
//! could have measured.

use dc_sim::engine::Datacenter;
use dc_sim::ids::{AisleId, GpuId, RowId, ServerId};
use dc_sim::index::OrdinalMap;
use dc_sim::topology::ServerSpec;
use llm_sim::hardware::GpuHardware;
use llm_sim::model::ModelSize;
use llm_sim::pareto::ParetoFrontier;
use llm_sim::profile::ConfigProfile;
use serde::{Deserialize, Serialize};
use simkit::regression::{LinearModel, PiecewisePolynomial, Polynomial};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};
use workload::prediction::PowerTemplate;

/// Per-server fitted thermal and power models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerProfile {
    /// The server this profile describes.
    pub server: ServerId,
    /// Its row (for power budgeting).
    pub row: RowId,
    /// Its aisle (for airflow budgeting).
    pub aisle: AisleId,
    /// Hardware specification (public knowledge from the SKU).
    pub spec: ServerSpec,
    /// Fitted inlet temperature vs outside temperature at a reference (50 %) datacenter load.
    pub inlet_vs_outside: PiecewisePolynomial,
    /// Additional inlet °C per unit of datacenter load (0→1).
    pub inlet_load_sensitivity_c: f64,
    /// Fitted worst-GPU temperature vs `[inlet °C, per-GPU power W]` (Eq. 2).
    pub worst_gpu_temp: LinearModel,
    /// Fitted server power (kW) vs mean GPU load.
    pub power_curve: Polynomial,
}

impl ServerProfile {
    /// Predicted inlet temperature at an outside temperature and datacenter load.
    #[must_use]
    pub fn predicted_inlet(&self, outside: Celsius, dc_load: f64) -> Celsius {
        let at_reference = self.inlet_vs_outside.evaluate(outside.value());
        let load_delta = (dc_load.clamp(0.0, 1.0) - 0.5) * self.inlet_load_sensitivity_c;
        Celsius::new(at_reference + load_delta)
    }

    /// Predicted temperature of the hottest GPU at a given inlet temperature and per-GPU
    /// power.
    #[must_use]
    pub fn predicted_worst_gpu_temp(&self, inlet: Celsius, gpu_power: Watts) -> Celsius {
        Celsius::new(self.worst_gpu_temp.predict(&[inlet.value(), gpu_power.value()]))
    }

    /// The per-GPU power budget that keeps the hottest GPU at or below `limit` for a given
    /// inlet temperature (the inverse of the fitted Eq. 2).
    #[must_use]
    pub fn gpu_power_budget(&self, inlet: Celsius, limit: Celsius) -> Watts {
        let coeffs = self.worst_gpu_temp.coefficients();
        let power_coeff = coeffs.get(1).copied().unwrap_or(0.1).max(1e-6);
        let base = self.worst_gpu_temp.intercept() + coeffs[0] * inlet.value();
        Watts::new(((limit.value() - base) / power_coeff).max(0.0))
    }

    /// Predicted server power at a mean GPU load in `[0, 1]`.
    #[must_use]
    pub fn predicted_power(&self, load: f64) -> Kilowatts {
        let load = load.clamp(0.0, 1.0);
        Kilowatts::new(
            self.power_curve
                .evaluate(load)
                .clamp(0.0, self.spec.max_power.value()),
        )
    }

    /// Predicted server airflow at a mean GPU load (linear between the SKU's idle and maximum
    /// airflow).
    #[must_use]
    pub fn predicted_airflow(&self, load: f64) -> CubicFeetPerMinute {
        let load = load.clamp(0.0, 1.0);
        self.spec.idle_airflow + (self.spec.max_airflow - self.spec.idle_airflow) * load
    }
}

/// LLM configuration profiles and the Pareto frontiers derived from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmProfiles {
    /// Every profiled configuration that fits the hardware.
    pub profiles: Vec<ConfigProfile>,
    /// The overall Pareto frontier.
    pub frontier: ParetoFrontier,
    /// Per-model-size frontiers (Fig. 16 keeps them separate because quality differs).
    pub frontier_by_model: BTreeMap<ModelSize, ParetoFrontier>,
}

impl LlmProfiles {
    /// Profiles every configuration on the given GPU generation.
    #[must_use]
    pub fn profile(gpu: &GpuHardware) -> Self {
        let profiles = ConfigProfile::sweep(gpu);
        let frontier = ParetoFrontier::compute(&profiles);
        let frontier_by_model = ModelSize::ALL
            .into_iter()
            .map(|size| (size, ParetoFrontier::for_model(&profiles, size)))
            .collect();
        Self { profiles, frontier, frontier_by_model }
    }

    /// Process-wide shared profile of a GPU generation.
    ///
    /// The sweep is a pure function of the hardware parameters, so repeated simulator
    /// constructions (parameter sweeps, benches) share one `Arc` instead of re-profiling
    /// the full configuration space every time.
    #[must_use]
    pub fn shared(gpu: &GpuHardware) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<HashMap<u64, Arc<LlmProfiles>>>> = OnceLock::new();
        let key = gpu_fingerprint(gpu);
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("llm profile cache").get(&key) {
            return Arc::clone(hit);
        }
        // Profile outside the lock: sweeps are independent and this keeps the critical
        // section tiny.
        let fresh = Arc::new(Self::profile(gpu));
        Arc::clone(
            cache
                .lock()
                .expect("llm profile cache")
                .entry(key)
                .or_insert(fresh),
        )
    }
}

/// FNV-1a digest of the hardware parameters that determine a profiling sweep.
fn gpu_fingerprint(gpu: &GpuHardware) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in gpu.name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(gpu.peak_fp16_tflops.to_bits());
    mix(gpu.memory_bandwidth_gbps.to_bits());
    mix(gpu.memory_capacity_gb.to_bits());
    mix(gpu.max_power_w.to_bits());
    mix(gpu.compute_efficiency.to_bits());
    mix(gpu.bandwidth_efficiency.to_bits());
    mix(gpu.gpus_per_server as u64);
    hash
}

/// A hashable identity of an [`llm_sim::config::InstanceConfig`], used to index the profile
/// sweep without scanning it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigKey {
    size: u8,
    quant: u8,
    parallelism: u8,
    batch: u16,
    frequency_bits: u64,
}

fn config_key(config: &llm_sim::config::InstanceConfig) -> ConfigKey {
    let size = ModelSize::ALL
        .iter()
        .position(|&s| s == config.variant.size)
        .unwrap_or(usize::MAX) as u8;
    let quant = llm_sim::model::Quantization::ALL
        .iter()
        .position(|&q| q == config.variant.quantization)
        .unwrap_or(usize::MAX) as u8;
    let parallelism = config.parallelism.gpus() as u8;
    ConfigKey {
        size,
        quant,
        parallelism,
        batch: config.max_batch_size as u16,
        frequency_bits: config.frequency.value().to_bits(),
    }
}

/// Budgets of the rows and aisles (public provisioning data), stored as dense
/// ordinal-indexed grids covering every row/aisle of the profiled layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfrastructureBudgets {
    /// Row power budgets, indexed by [`RowId`].
    pub row_power: OrdinalMap<RowId, Kilowatts>,
    /// Aisle airflow provisioning, indexed by [`AisleId`].
    pub aisle_airflow: OrdinalMap<AisleId, CubicFeetPerMinute>,
    /// Servers per row, indexed by [`RowId`].
    pub row_servers: OrdinalMap<RowId, Vec<ServerId>>,
    /// Servers per aisle, indexed by [`AisleId`].
    pub aisle_servers: OrdinalMap<AisleId, Vec<ServerId>>,
}

/// The complete profile store TAPAS consults at run time.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    /// Per-server fitted models, indexed by `ServerId::index`.
    pub servers: Vec<ServerProfile>,
    /// LLM configuration profiles and frontiers (shared across stores for one GPU model).
    pub llm: Arc<LlmProfiles>,
    /// Row/aisle budgets.
    pub budgets: InfrastructureBudgets,
    /// Weekly-refined row power templates, indexed by [`RowId`] (`None` until the first
    /// refinement of that row).
    pub row_templates: OrdinalMap<RowId, Option<PowerTemplate>>,
    /// GPU throttle limit minus a safety margin; the controllers aim to stay below this.
    pub thermal_headroom_target: Celsius,
    /// Position of each profiled configuration in `llm.profiles`.
    config_slots: Arc<HashMap<ConfigKey, u32>>,
}

impl ProfileStore {
    /// Runs offline profiling against a datacenter and a GPU generation.
    ///
    /// The profiling probes the datacenter's response at a grid of outside temperatures, loads
    /// and per-GPU powers — exactly what an operator does with benchmarks during initial
    /// deployment — and fits the regression models of Eq. (1)–(4) to the observations.
    #[must_use]
    pub fn offline_profiling(dc: &Datacenter, gpu: &GpuHardware) -> Self {
        let layout = dc.layout();
        let mut servers = Vec::with_capacity(layout.server_count());
        for server in layout.servers() {
            // Eq. 1: inlet vs outside at 50 % datacenter load.
            let inlet_samples: Vec<(f64, f64)> = (-10..=45)
                .map(|t| {
                    let outside = Celsius::new(f64::from(t));
                    (
                        f64::from(t),
                        dc.inlet_model().inlet_temp(server.id, outside, 0.5, 0.0).value(),
                    )
                })
                .collect();
            let inlet_vs_outside =
                PiecewisePolynomial::fit(&inlet_samples, &[-10.0, 15.0, 25.0, 45.0], 1)
                    .expect("inlet profiling fit");
            let low = dc
                .inlet_model()
                .inlet_temp(server.id, Celsius::new(22.0), 0.0, 0.0)
                .value();
            let high = dc
                .inlet_model()
                .inlet_temp(server.id, Celsius::new(22.0), 1.0, 0.0)
                .value();
            let inlet_load_sensitivity_c = high - low;

            // Eq. 2: worst-GPU temperature vs inlet and per-GPU power.
            let mut gpu_samples = Vec::new();
            for inlet in [16.0, 20.0, 24.0, 28.0, 32.0, 36.0] {
                for power in [60.0, 150.0, 250.0, 350.0, 450.0, 600.0] {
                    let worst = (0..server.spec.gpus_per_server)
                        .map(|slot| {
                            dc.gpu_model()
                                .temperatures(
                                    GpuId::new(server.id, slot),
                                    Celsius::new(inlet),
                                    Watts::new(power),
                                    0.5,
                                )
                                .gpu
                                .value()
                        })
                        .fold(f64::MIN, f64::max);
                    gpu_samples.push((vec![inlet, power], worst));
                }
            }
            let worst_gpu_temp = LinearModel::fit(&gpu_samples).expect("gpu profiling fit");

            // Eq. 4: server power vs load.
            let power_samples: Vec<(f64, f64)> = (0..=10)
                .map(|i| {
                    let load = f64::from(i) / 10.0;
                    (load, dc.power_model().server_power(&server.spec, load).value())
                })
                .collect();
            let power_curve = Polynomial::fit(&power_samples, 2).expect("power profiling fit");

            servers.push(ServerProfile {
                server: server.id,
                row: server.row,
                aisle: server.aisle,
                spec: server.spec,
                inlet_vs_outside,
                inlet_load_sensitivity_c,
                worst_gpu_temp,
                power_curve,
            });
        }

        // Budgets are dense grids in ordinal order (the layout builder emits rows and
        // aisles in id order).
        let budgets = InfrastructureBudgets {
            row_power: layout.rows().iter().map(|r| r.power_budget).collect(),
            aisle_airflow: layout
                .aisles()
                .iter()
                .map(|a| a.airflow_provisioned)
                .collect(),
            row_servers: layout.rows().iter().map(|r| r.servers.clone()).collect(),
            aisle_servers: layout
                .aisles()
                .iter()
                .map(|a| a.servers.clone())
                .collect(),
        };

        let llm = LlmProfiles::shared(gpu);
        let config_slots: Arc<HashMap<ConfigKey, u32>> = Arc::new(
            llm.profiles
                .iter()
                .enumerate()
                .map(|(i, p)| (config_key(&p.config), i as u32))
                .collect(),
        );
        Self {
            servers,
            llm,
            config_slots,
            row_templates: OrdinalMap::filled(layout.rows().len(), None),
            budgets,
            thermal_headroom_target: Celsius::new(
                layout.servers()[0].spec.gpu_throttle_temp_c - 3.0,
            ),
        }
    }

    /// Process-wide shared offline profiling.
    ///
    /// Profiling is a pure function of the datacenter's generative models (identified by
    /// [`Datacenter::fingerprint`]) and the GPU generation, mirroring how the real system
    /// profiles a datacenter once at deployment and reuses the store across controllers.
    /// Repeated simulator constructions over the same cluster share one `Arc`.
    #[must_use]
    pub fn offline_profiling_shared(dc: &Datacenter, gpu: &GpuHardware) -> Arc<Self> {
        type StoreCache = Mutex<HashMap<(u64, u64), Arc<ProfileStore>>>;
        static CACHE: OnceLock<StoreCache> = OnceLock::new();
        let key = (dc.fingerprint(), gpu_fingerprint(gpu));
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("profile store cache").get(&key) {
            return Arc::clone(hit);
        }
        let fresh = Arc::new(Self::offline_profiling(dc, gpu));
        Arc::clone(
            cache
                .lock()
                .expect("profile store cache")
                .entry(key)
                .or_insert(fresh),
        )
    }

    /// The profile of a server.
    ///
    /// # Panics
    /// Panics if the server id is out of range.
    #[must_use]
    pub fn server(&self, id: ServerId) -> &ServerProfile {
        &self.servers[id.index()]
    }

    /// The power budget of a row (dense O(1) lookup).
    ///
    /// # Panics
    /// Panics if the row id is out of range.
    #[must_use]
    pub fn row_budget(&self, row: RowId) -> Kilowatts {
        self.budgets.row_power[row]
    }

    /// The airflow provisioning of an aisle (dense O(1) lookup).
    ///
    /// # Panics
    /// Panics if the aisle id is out of range.
    #[must_use]
    pub fn aisle_budget(&self, aisle: AisleId) -> CubicFeetPerMinute {
        self.budgets.aisle_airflow[aisle]
    }

    /// Number of rows in the profiled layout.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.budgets.row_power.len()
    }

    /// Number of aisles in the profiled layout.
    #[must_use]
    pub fn aisle_count(&self) -> usize {
        self.budgets.aisle_airflow.len()
    }

    /// The profile of an instance configuration, if it was part of the sweep (O(1) instead of
    /// scanning the profile list).
    #[must_use]
    pub fn profile_for(
        &self,
        config: &llm_sim::config::InstanceConfig,
    ) -> Option<&ConfigProfile> {
        self.config_slots
            .get(&config_key(config))
            .map(|&slot| &self.llm.profiles[slot as usize])
    }


    /// Number of profiled servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The weekly refinement step (§4.5): fits a conservative P99 template per row from the
    /// previous week's observed row power. `history` is indexed by row ordinal (the shape
    /// the simulator accumulates); rows with no samples keep their previous template.
    pub fn refine_row_templates(&mut self, history: &[Vec<(simkit::time::SimTime, f64)>]) {
        for (ordinal, samples) in history.iter().enumerate() {
            if !samples.is_empty() {
                self.row_templates[RowId::new(ordinal)] =
                    Some(PowerTemplate::fit(workload::prediction::TemplateKind::P99, samples));
            }
        }
    }

    /// Predicted peak power of a row: the refined template's weekly peak when available,
    /// otherwise the provisioned budget (the conservative assumption of §4.1).
    #[must_use]
    pub fn predicted_row_peak(&self, row: RowId) -> Kilowatts {
        match self.row_templates.get(row).and_then(Option::as_ref) {
            Some(template) => Kilowatts::new(template.predicted_peak()),
            None => self.budgets.row_power.get(row).copied().unwrap_or(Kilowatts::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::topology::LayoutConfig;
    use simkit::time::SimTime;

    fn store() -> (Datacenter, ProfileStore) {
        let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 42);
        let store = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
        (dc, store)
    }

    #[test]
    fn profiling_covers_every_server() {
        let (dc, store) = store();
        assert_eq!(store.server_count(), dc.layout().server_count());
        assert_eq!(store.budgets.row_power.len(), dc.layout().rows().len());
        assert_eq!(store.budgets.aisle_airflow.len(), dc.layout().aisles().len());
        assert!(!store.llm.profiles.is_empty());
        assert!(!store.llm.frontier.is_empty());
        assert_eq!(store.llm.frontier_by_model.len(), 3);
        assert!((store.thermal_headroom_target.value() - 82.0).abs() < 1e-9);
    }

    #[test]
    fn fitted_inlet_model_tracks_ground_truth() {
        let (dc, store) = store();
        for server in dc.layout().servers() {
            let profile = store.server(server.id);
            for outside in [0.0, 10.0, 18.0, 22.0, 30.0, 40.0] {
                let truth = dc
                    .inlet_model()
                    .inlet_temp(server.id, Celsius::new(outside), 0.5, 0.0)
                    .value();
                let predicted = profile.predicted_inlet(Celsius::new(outside), 0.5).value();
                assert!(
                    (truth - predicted).abs() < 0.5,
                    "inlet prediction off by {} at {outside} °C",
                    (truth - predicted).abs()
                );
            }
        }
    }

    #[test]
    fn fitted_gpu_model_has_sub_degree_error() {
        // The paper reports < 1 °C MAE for the fitted Eq. (2); our fit against the generative
        // model should do at least as well on the worst GPU.
        let (dc, store) = store();
        let server = dc.layout().servers()[0].id;
        let profile = store.server(server);
        for inlet in [18.0, 25.0, 33.0] {
            for power in [100.0, 300.0, 500.0] {
                let truth = (0..8)
                    .map(|slot| {
                        dc.gpu_model()
                            .temperatures(
                                GpuId::new(server, slot),
                                Celsius::new(inlet),
                                Watts::new(power),
                                0.5,
                            )
                            .gpu
                            .value()
                    })
                    .fold(f64::MIN, f64::max);
                let predicted = profile
                    .predicted_worst_gpu_temp(Celsius::new(inlet), Watts::new(power))
                    .value();
                assert!((truth - predicted).abs() < 1.0, "error {}", (truth - predicted).abs());
            }
        }
    }

    #[test]
    fn gpu_power_budget_inverts_the_fit() {
        let (_, store) = store();
        let profile = &store.servers[0];
        let inlet = Celsius::new(26.0);
        let limit = Celsius::new(82.0);
        let budget = profile.gpu_power_budget(inlet, limit);
        assert!(budget.value() > 0.0);
        let temp_at_budget = profile.predicted_worst_gpu_temp(inlet, budget);
        assert!((temp_at_budget.value() - 82.0).abs() < 0.5);
        // An already-too-hot inlet yields a zero budget.
        let impossible = profile.gpu_power_budget(Celsius::new(95.0), Celsius::new(80.0));
        assert_eq!(impossible.value(), 0.0);
    }

    #[test]
    fn power_curve_matches_endpoints_and_is_monotone() {
        let (dc, store) = store();
        let spec = dc.layout().servers()[0].spec;
        let profile = &store.servers[0];
        assert!((profile.predicted_power(0.0).value() - spec.idle_power.value()).abs() < 0.1);
        assert!((profile.predicted_power(1.0).value() - spec.max_power.value()).abs() < 0.1);
        let mut last = 0.0;
        for i in 0..=10 {
            let p = profile.predicted_power(f64::from(i) / 10.0).value();
            assert!(p >= last - 1e-9);
            last = p;
        }
        assert_eq!(profile.predicted_airflow(0.0), spec.idle_airflow);
        assert_eq!(profile.predicted_airflow(1.0), spec.max_airflow);
    }

    #[test]
    fn row_peak_prediction_prefers_refined_templates() {
        let (_, mut store) = store();
        let row = RowId::new(0);
        let budget = store.budgets.row_power[row];
        assert_eq!(store.predicted_row_peak(row), budget);
        // Refine with a row-ordinal-indexed history peaking at half the budget for row 0.
        let history: Vec<(SimTime, f64)> = (0..7 * 24)
            .map(|h| (SimTime::from_hours(h), budget.value() * 0.5))
            .collect();
        store.refine_row_templates(&[history]);
        let refined = store.predicted_row_peak(row);
        assert!((refined.value() - budget.value() * 0.5).abs() < 1e-6);
        // Rows without history keep the conservative budget.
        assert_eq!(store.predicted_row_peak(RowId::new(1)), store.budgets.row_power[RowId::new(1)]);
    }
}
