//! # tapas — thermal- and power-aware scheduling for LLM inference clusters
//!
//! This crate is the reproduction of the paper's contribution: the TAPAS framework (§4).
//! TAPAS extends a conventional cloud LLM-inference cluster with three thermal- and
//! power-aware mechanisms, all driven by offline-profiled models and weekly-refined
//! predictions:
//!
//! 1. **Workload placement** ([`placement`]) — the per-cluster VM allocator filters out
//!    aisles/rows whose predicted peak airflow/power a new VM would violate, steers IaaS VMs
//!    to cooler servers and SaaS VMs to warmer servers, and balances the IaaS/SaaS mix per
//!    row.
//! 2. **Request routing** ([`routing`]) — the per-endpoint load balancer avoids instances
//!    whose server, row or aisle is at risk of a thermal, power or airflow violation, then
//!    applies KV-affinity / energy-concentration / load-spread ordering.
//! 3. **Instance configuration** ([`configurator`]) — the per-VM controller translates
//!    thermal and power headroom into per-instance budgets and walks the profiled Pareto
//!    frontier (GPU frequency, batch size, parallelism, quantization, model size) to maximize
//!    goodput within them, treating model-quality-affecting changes as the last resort.
//!
//! Supporting modules: [`profiles`] (the offline profiling store the three mechanisms
//! consult), [`state`] (cluster occupancy bookkeeping), [`emergency`] (cooling/power failure
//! response), [`geo`] (the fleet-level site selector that steers VM arrivals across
//! datacenters by power headroom and thermal slack), and [`policy`] (the Baseline / Place /
//! Route / Config ablation matrix of §5.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod configurator;
pub mod emergency;
pub mod geo;
pub mod placement;
pub mod policy;
pub mod profiles;
pub mod routing;
pub mod state;

pub use configurator::{ConfigDecision, InstanceConfigurator, InstanceLimits};
pub use emergency::{EmergencyPlan, EmergencyResponder};
pub use geo::{GeoConfig, GeoPlacement, SiteSignals};
pub use placement::{
    BaselinePlacement, PlacementPlanner, PlacementRequest, TapasPlacement, VmPlacementPolicy,
};
pub use policy::Policy;
pub use profiles::{ProfileStore, ServerProfile};
pub use routing::{
    BaselineRouter, CandidateSource, CandidateView, InstanceSnapshot, PreparedRoutingContext,
    RecentWindow, RequestRouterPolicy, RouterScratch, RoutingContext, TapasRouter,
};
pub use state::{ClusterState, PlacedVm, VmSlotMap};
