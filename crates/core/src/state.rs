//! Cluster occupancy bookkeeping.
//!
//! Every GPU VM in the studied fleet occupies a whole 8-GPU server, so the cluster state is a
//! partial assignment of VMs to servers plus, for SaaS VMs, their current instance
//! configuration. Both the allocator and the router read this state; the cluster simulator
//! mutates it as VMs arrive, retire and get reconfigured.

use dc_sim::ids::{AisleId, RowId, ServerId};
use dc_sim::topology::Layout;
use llm_sim::config::InstanceConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workload::vm::{Vm, VmId, VmKind};

/// A VM placed on a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedVm {
    /// The VM.
    pub vm: Vm,
    /// The server hosting it.
    pub server: ServerId,
    /// The allocator's prediction of this VM's peak mean-GPU load in `[0, 1]`.
    pub predicted_peak_load: f64,
    /// The current instance configuration (SaaS only).
    pub config: Option<InstanceConfig>,
}

/// Errors returned by cluster-state mutations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateError {
    /// The target server already hosts a VM.
    ServerOccupied(ServerId),
    /// The VM is already placed somewhere.
    AlreadyPlaced(VmId),
    /// The VM is not currently placed.
    NotPlaced(VmId),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::ServerOccupied(s) => write!(f, "server {s} is already occupied"),
            StateError::AlreadyPlaced(vm) => write!(f, "{vm} is already placed"),
            StateError::NotPlaced(vm) => write!(f, "{vm} is not placed"),
        }
    }
}

impl std::error::Error for StateError {}

/// The assignment of VMs to servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    occupancy: Vec<Option<PlacedVm>>,
    by_vm: BTreeMap<VmId, ServerId>,
}

impl ClusterState {
    /// Creates an empty state for a cluster of `server_count` servers.
    #[must_use]
    pub fn new(server_count: usize) -> Self {
        Self { occupancy: vec![None; server_count], by_vm: BTreeMap::new() }
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.occupancy.len()
    }

    /// Number of placed VMs.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.by_vm.len()
    }

    /// Returns `true` if the server hosts no VM.
    #[must_use]
    pub fn is_free(&self, server: ServerId) -> bool {
        self.occupancy[server.index()].is_none()
    }

    /// The VM on a server, if any.
    #[must_use]
    pub fn vm_on(&self, server: ServerId) -> Option<&PlacedVm> {
        self.occupancy[server.index()].as_ref()
    }

    /// The server hosting a VM, if it is placed.
    #[must_use]
    pub fn server_of(&self, vm: VmId) -> Option<ServerId> {
        self.by_vm.get(&vm).copied()
    }

    /// All free servers.
    #[must_use]
    pub fn free_servers(&self) -> Vec<ServerId> {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(i, _)| ServerId::new(i))
            .collect()
    }

    /// Iterates over all placed VMs.
    pub fn placed(&self) -> impl Iterator<Item = &PlacedVm> + '_ {
        self.occupancy.iter().filter_map(|slot| slot.as_ref())
    }

    /// Places a VM on a server.
    ///
    /// # Errors
    /// Returns an error if the server is occupied or the VM is already placed.
    pub fn place(
        &mut self,
        vm: Vm,
        server: ServerId,
        predicted_peak_load: f64,
        config: Option<InstanceConfig>,
    ) -> Result<(), StateError> {
        if self.by_vm.contains_key(&vm.id) {
            return Err(StateError::AlreadyPlaced(vm.id));
        }
        if self.occupancy[server.index()].is_some() {
            return Err(StateError::ServerOccupied(server));
        }
        self.occupancy[server.index()] =
            Some(PlacedVm { vm, server, predicted_peak_load, config });
        self.by_vm.insert(vm.id, server);
        Ok(())
    }

    /// Removes a VM, freeing its server.
    ///
    /// # Errors
    /// Returns an error if the VM is not placed.
    pub fn remove(&mut self, vm: VmId) -> Result<PlacedVm, StateError> {
        let server = self.by_vm.remove(&vm).ok_or(StateError::NotPlaced(vm))?;
        Ok(self.occupancy[server.index()].take().expect("occupancy consistent with index"))
    }

    /// Updates the configuration of a placed SaaS VM.
    ///
    /// # Errors
    /// Returns an error if the VM is not placed.
    pub fn set_config(&mut self, vm: VmId, config: InstanceConfig) -> Result<(), StateError> {
        let server = self.by_vm.get(&vm).copied().ok_or(StateError::NotPlaced(vm))?;
        let placed = self.occupancy[server.index()]
            .as_mut()
            .expect("occupancy consistent with index");
        placed.config = Some(config);
        Ok(())
    }

    /// Counts `(iaas, saas)` VMs in a row.
    #[must_use]
    pub fn row_mix(&self, layout: &Layout, row: RowId) -> (usize, usize) {
        let mut iaas = 0;
        let mut saas = 0;
        for &server in &layout.rows()[row.index()].servers {
            if let Some(placed) = self.vm_on(server) {
                match placed.vm.kind {
                    VmKind::Iaas { .. } => iaas += 1,
                    VmKind::Saas { .. } => saas += 1,
                }
            }
        }
        (iaas, saas)
    }

    /// VMs placed in an aisle.
    #[must_use]
    pub fn vms_in_aisle(&self, layout: &Layout, aisle: AisleId) -> Vec<&PlacedVm> {
        layout.aisles()[aisle.index()]
            .servers
            .iter()
            .filter_map(|&s| self.vm_on(s))
            .collect()
    }

    /// VMs placed in a row.
    #[must_use]
    pub fn vms_in_row(&self, layout: &Layout, row: RowId) -> Vec<&PlacedVm> {
        layout.rows()[row.index()]
            .servers
            .iter()
            .filter_map(|&s| self.vm_on(s))
            .collect()
    }

    /// Retires every VM whose lifetime has expired at `now`, returning the retired VMs.
    pub fn retire_expired(&mut self, now: simkit::time::SimTime) -> Vec<PlacedVm> {
        let expired: Vec<VmId> = self
            .placed()
            .filter(|p| !p.vm.is_alive_at(now) && p.vm.departure() <= now)
            .map(|p| p.vm.id)
            .collect();
        expired
            .into_iter()
            .map(|id| self.remove(id).expect("listed as placed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::topology::LayoutConfig;
    use simkit::time::{SimDuration, SimTime};
    use workload::endpoints::EndpointId;
    use workload::vm::IaasCustomerId;

    fn vm(id: u64, saas: bool) -> Vm {
        Vm {
            id: VmId(id),
            kind: if saas {
                VmKind::Saas { endpoint: EndpointId(0) }
            } else {
                VmKind::Iaas { customer: IaasCustomerId(0) }
            },
            arrival: SimTime::ZERO,
            lifetime: SimDuration::from_days(7),
        }
    }

    #[test]
    fn place_and_remove_round_trip() {
        let mut state = ClusterState::new(4);
        assert_eq!(state.server_count(), 4);
        assert_eq!(state.free_servers().len(), 4);
        state.place(vm(1, true), ServerId::new(2), 0.8, Some(InstanceConfig::default_70b())).unwrap();
        assert_eq!(state.placed_count(), 1);
        assert!(!state.is_free(ServerId::new(2)));
        assert_eq!(state.server_of(VmId(1)), Some(ServerId::new(2)));
        assert_eq!(state.vm_on(ServerId::new(2)).unwrap().vm.id, VmId(1));
        let removed = state.remove(VmId(1)).unwrap();
        assert_eq!(removed.server, ServerId::new(2));
        assert!(state.is_free(ServerId::new(2)));
        assert_eq!(state.placed_count(), 0);
    }

    #[test]
    fn double_placement_and_missing_removal_error() {
        let mut state = ClusterState::new(2);
        state.place(vm(1, false), ServerId::new(0), 1.0, None).unwrap();
        assert_eq!(
            state.place(vm(2, false), ServerId::new(0), 1.0, None),
            Err(StateError::ServerOccupied(ServerId::new(0)))
        );
        assert_eq!(
            state.place(vm(1, false), ServerId::new(1), 1.0, None),
            Err(StateError::AlreadyPlaced(VmId(1)))
        );
        assert_eq!(state.remove(VmId(9)), Err(StateError::NotPlaced(VmId(9))));
        assert!(StateError::NotPlaced(VmId(9)).to_string().contains("not placed"));
    }

    #[test]
    fn set_config_updates_placed_vm() {
        let mut state = ClusterState::new(2);
        state.place(vm(1, true), ServerId::new(0), 0.5, Some(InstanceConfig::default_70b())).unwrap();
        let new_config = InstanceConfig::small_fallback();
        state.set_config(VmId(1), new_config).unwrap();
        assert_eq!(state.vm_on(ServerId::new(0)).unwrap().config, Some(new_config));
        assert!(state.set_config(VmId(2), new_config).is_err());
    }

    #[test]
    fn row_mix_counts_kinds() {
        let layout = LayoutConfig::small_test_cluster().build();
        let mut state = ClusterState::new(layout.server_count());
        // Row 0 contains servers 0..4.
        state.place(vm(1, true), ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, false), ServerId::new(1), 0.5, None).unwrap();
        state.place(vm(3, false), ServerId::new(4), 0.5, None).unwrap();
        let (iaas, saas) = state.row_mix(&layout, RowId::new(0));
        assert_eq!((iaas, saas), (1, 1));
        let (iaas1, saas1) = state.row_mix(&layout, RowId::new(1));
        assert_eq!((iaas1, saas1), (1, 0));
        assert_eq!(state.vms_in_row(&layout, RowId::new(0)).len(), 2);
        assert_eq!(state.vms_in_aisle(&layout, AisleId::new(0)).len(), 3);
    }

    #[test]
    fn retire_expired_removes_only_dead_vms() {
        let mut state = ClusterState::new(3);
        let mut short = vm(1, false);
        short.lifetime = SimDuration::from_hours(1);
        state.place(short, ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, true), ServerId::new(1), 0.5, None).unwrap();
        let retired = state.retire_expired(SimTime::from_hours(2));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].vm.id, VmId(1));
        assert_eq!(state.placed_count(), 1);
        assert!(state.is_free(ServerId::new(0)));
    }
}
