//! Cluster occupancy bookkeeping.
//!
//! Every GPU VM in the studied fleet occupies a whole 8-GPU server, so the cluster state is a
//! partial assignment of VMs to servers plus, for SaaS VMs, their current instance
//! configuration. Both the allocator and the router read this state; the cluster simulator
//! mutates it as VMs arrive, retire and get reconfigured.
//!
//! # Data layout
//!
//! The state is index-based rather than map-based so the scheduling hot path never walks a
//! tree: a dense server arena (`Vec<Option<PlacedVm>>` indexed by [`ServerId::index`]), a
//! dense `VmId → server` slot index ([`VmSlotMap`]), a free-server bitmap for O(words)
//! first-fit queries, and — when built [`ClusterState::with_layout`] — cached per-row
//! IaaS/SaaS counts and per-endpoint instance lists maintained incrementally on every
//! place/remove.

use dc_sim::ids::{AisleId, RowId, ServerId};
use dc_sim::topology::Layout;
use llm_sim::config::InstanceConfig;
use serde::{Deserialize, Serialize};
use workload::endpoints::EndpointId;
use workload::vm::{Vm, VmId, VmKind};

/// A VM placed on a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedVm {
    /// The VM.
    pub vm: Vm,
    /// The server hosting it.
    pub server: ServerId,
    /// The allocator's prediction of this VM's peak mean-GPU load in `[0, 1]`.
    pub predicted_peak_load: f64,
    /// The current instance configuration (SaaS only).
    pub config: Option<InstanceConfig>,
}

/// Errors returned by cluster-state mutations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateError {
    /// The target server already hosts a VM.
    ServerOccupied(ServerId),
    /// The VM is already placed somewhere.
    AlreadyPlaced(VmId),
    /// The VM is not currently placed.
    NotPlaced(VmId),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::ServerOccupied(s) => write!(f, "server {s} is already occupied"),
            StateError::AlreadyPlaced(vm) => write!(f, "{vm} is already placed"),
            StateError::NotPlaced(vm) => write!(f, "{vm} is not placed"),
        }
    }
}

impl std::error::Error for StateError {}

const NO_SLOT: u32 = u32::MAX;

/// A dense map from [`VmId`] to a `u32` slot, grown on demand.
///
/// VM ids are assigned sequentially by the arrival generators, so a flat vector indexed by
/// the id is both smaller and much faster than a `BTreeMap` on the placement/routing hot
/// path. Absent entries hold a sentinel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VmSlotMap {
    slots: Vec<u32>,
    len: usize,
}

impl VmSlotMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped VMs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no VM is mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot of a VM, if mapped.
    #[must_use]
    pub fn get(&self, vm: VmId) -> Option<u32> {
        match self.slots.get(vm.0 as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot),
            _ => None,
        }
    }

    /// Returns `true` if the VM is mapped.
    #[must_use]
    pub fn contains(&self, vm: VmId) -> bool {
        self.get(vm).is_some()
    }

    /// Maps a VM to a slot, replacing any previous mapping.
    pub fn insert(&mut self, vm: VmId, slot: u32) {
        let index = vm.0 as usize;
        if index >= self.slots.len() {
            self.slots.resize(index + 1, NO_SLOT);
        }
        if self.slots[index] == NO_SLOT {
            self.len += 1;
        }
        self.slots[index] = slot;
    }

    /// Removes a VM's mapping, returning its former slot.
    pub fn remove(&mut self, vm: VmId) -> Option<u32> {
        let entry = self.slots.get_mut(vm.0 as usize)?;
        if *entry == NO_SLOT {
            return None;
        }
        let slot = *entry;
        *entry = NO_SLOT;
        self.len -= 1;
        Some(slot)
    }
}

/// A fixed-capacity bitmap over server indices with fast first-set and ordered iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FreeSet {
    words: Vec<u64>,
    capacity: usize,
    count: usize,
}

impl FreeSet {
    fn all_free(capacity: usize) -> Self {
        let word_count = capacity.div_ceil(64);
        let mut words = vec![u64::MAX; word_count];
        if !capacity.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (capacity % 64)) - 1;
            }
        }
        Self { words, capacity, count: capacity }
    }

    fn set(&mut self, index: usize) {
        let mask = 1u64 << (index % 64);
        let word = &mut self.words[index / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
        }
    }

    fn clear(&mut self, index: usize) {
        let mask = 1u64 << (index % 64);
        let word = &mut self.words[index / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.count -= 1;
        }
    }

    fn first(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + bit)
            })
        })
    }
}

/// Cached topology indices enabling O(1) row-mix and per-endpoint queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TopologyCache {
    /// Row index per server.
    row_of: Vec<u32>,
    /// Aisle index per server.
    aisle_of: Vec<u32>,
    /// `(iaas, saas)` VM counts per row, maintained incrementally.
    row_mix: Vec<(u32, u32)>,
}

/// The assignment of VMs to servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    occupancy: Vec<Option<PlacedVm>>,
    by_vm: VmSlotMap,
    free: FreeSet,
    topology: Option<TopologyCache>,
    /// VM ids per endpoint (SaaS only), maintained incrementally; indexed by endpoint id.
    endpoint_vms: Vec<Vec<VmId>>,
}

impl ClusterState {
    /// Creates an empty state for a cluster of `server_count` servers.
    #[must_use]
    pub fn new(server_count: usize) -> Self {
        Self {
            occupancy: vec![None; server_count],
            by_vm: VmSlotMap::new(),
            free: FreeSet::all_free(server_count),
            topology: None,
            endpoint_vms: Vec::new(),
        }
    }

    /// Creates an empty state with cached topology indices, enabling O(1) [`Self::row_mix`]
    /// queries on the placement hot path.
    #[must_use]
    pub fn with_layout(layout: &Layout) -> Self {
        let mut state = Self::new(layout.server_count());
        state.topology = Some(TopologyCache {
            row_of: layout.servers().iter().map(|s| s.row.index() as u32).collect(),
            aisle_of: layout.servers().iter().map(|s| s.aisle.index() as u32).collect(),
            row_mix: vec![(0, 0); layout.rows().len()],
        });
        state
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.occupancy.len()
    }

    /// Number of placed VMs.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.by_vm.len()
    }

    /// Returns `true` if the server hosts no VM.
    #[must_use]
    pub fn is_free(&self, server: ServerId) -> bool {
        self.occupancy[server.index()].is_none()
    }

    /// The VM on a server, if any.
    #[must_use]
    pub fn vm_on(&self, server: ServerId) -> Option<&PlacedVm> {
        self.occupancy[server.index()].as_ref()
    }

    /// The server hosting a VM, if it is placed.
    #[must_use]
    pub fn server_of(&self, vm: VmId) -> Option<ServerId> {
        self.by_vm.get(vm).map(|slot| ServerId::new(slot as usize))
    }

    /// The lowest-numbered free server, if any.
    #[must_use]
    pub fn first_free(&self) -> Option<ServerId> {
        self.free.first().map(ServerId::new)
    }

    /// Number of free servers.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.count
    }

    /// Iterates over free servers in id order without allocating.
    pub fn free_iter(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.free.iter().map(ServerId::new)
    }

    /// All free servers.
    #[must_use]
    pub fn free_servers(&self) -> Vec<ServerId> {
        self.free_iter().collect()
    }

    /// Iterates over all placed VMs.
    pub fn placed(&self) -> impl Iterator<Item = &PlacedVm> + '_ {
        self.occupancy.iter().filter_map(|slot| slot.as_ref())
    }

    /// SaaS VM ids of an endpoint, in placement order (empty for unknown endpoints).
    #[must_use]
    pub fn endpoint_instances(&self, endpoint: EndpointId) -> &[VmId] {
        self.endpoint_vms
            .get(endpoint.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    fn track_place(&mut self, vm: &Vm, server: ServerId) {
        if let Some(topology) = &mut self.topology {
            let row = topology.row_of[server.index()] as usize;
            match vm.kind {
                VmKind::Iaas { .. } => topology.row_mix[row].0 += 1,
                VmKind::Saas { .. } => topology.row_mix[row].1 += 1,
            }
        }
        if let VmKind::Saas { endpoint } = vm.kind {
            let index = endpoint.0 as usize;
            if index >= self.endpoint_vms.len() {
                self.endpoint_vms.resize_with(index + 1, Vec::new);
            }
            self.endpoint_vms[index].push(vm.id);
        }
    }

    fn track_remove(&mut self, vm: &Vm, server: ServerId) {
        if let Some(topology) = &mut self.topology {
            let row = topology.row_of[server.index()] as usize;
            match vm.kind {
                VmKind::Iaas { .. } => topology.row_mix[row].0 -= 1,
                VmKind::Saas { .. } => topology.row_mix[row].1 -= 1,
            }
        }
        if let VmKind::Saas { endpoint } = vm.kind {
            if let Some(members) = self.endpoint_vms.get_mut(endpoint.0 as usize) {
                if let Some(position) = members.iter().position(|&id| id == vm.id) {
                    members.remove(position);
                }
            }
        }
    }

    /// Places a VM on a server.
    ///
    /// # Errors
    /// Returns an error if the server is occupied or the VM is already placed.
    pub fn place(
        &mut self,
        vm: Vm,
        server: ServerId,
        predicted_peak_load: f64,
        config: Option<InstanceConfig>,
    ) -> Result<(), StateError> {
        if self.by_vm.contains(vm.id) {
            return Err(StateError::AlreadyPlaced(vm.id));
        }
        if self.occupancy[server.index()].is_some() {
            return Err(StateError::ServerOccupied(server));
        }
        self.occupancy[server.index()] =
            Some(PlacedVm { vm, server, predicted_peak_load, config });
        self.by_vm.insert(vm.id, server.index() as u32);
        self.free.clear(server.index());
        self.track_place(&vm, server);
        Ok(())
    }

    /// Removes a VM, freeing its server.
    ///
    /// # Errors
    /// Returns an error if the VM is not placed.
    pub fn remove(&mut self, vm: VmId) -> Result<PlacedVm, StateError> {
        let slot = self.by_vm.remove(vm).ok_or(StateError::NotPlaced(vm))?;
        let placed = self.occupancy[slot as usize]
            .take()
            .expect("occupancy consistent with index");
        self.free.set(slot as usize);
        self.track_remove(&placed.vm, placed.server);
        Ok(placed)
    }

    /// Updates the configuration of a placed SaaS VM.
    ///
    /// # Errors
    /// Returns an error if the VM is not placed.
    pub fn set_config(&mut self, vm: VmId, config: InstanceConfig) -> Result<(), StateError> {
        let slot = self.by_vm.get(vm).ok_or(StateError::NotPlaced(vm))?;
        let placed = self.occupancy[slot as usize]
            .as_mut()
            .expect("occupancy consistent with index");
        placed.config = Some(config);
        Ok(())
    }

    /// Counts `(iaas, saas)` VMs in a row.
    ///
    /// O(1) when the state was built [`Self::with_layout`]; otherwise scans the row.
    #[must_use]
    pub fn row_mix(&self, layout: &Layout, row: RowId) -> (usize, usize) {
        if let Some(topology) = &self.topology {
            let (iaas, saas) = topology.row_mix[row.index()];
            return (iaas as usize, saas as usize);
        }
        let mut iaas = 0;
        let mut saas = 0;
        for &server in &layout.rows()[row.index()].servers {
            if let Some(placed) = self.vm_on(server) {
                match placed.vm.kind {
                    VmKind::Iaas { .. } => iaas += 1,
                    VmKind::Saas { .. } => saas += 1,
                }
            }
        }
        (iaas, saas)
    }

    /// VMs placed in an aisle.
    #[must_use]
    pub fn vms_in_aisle(&self, layout: &Layout, aisle: AisleId) -> Vec<&PlacedVm> {
        layout.aisles()[aisle.index()]
            .servers
            .iter()
            .filter_map(|&s| self.vm_on(s))
            .collect()
    }

    /// VMs placed in a row.
    #[must_use]
    pub fn vms_in_row(&self, layout: &Layout, row: RowId) -> Vec<&PlacedVm> {
        layout.rows()[row.index()]
            .servers
            .iter()
            .filter_map(|&s| self.vm_on(s))
            .collect()
    }

    /// Retires every VM whose lifetime has expired at `now`, returning the retired VMs.
    pub fn retire_expired(&mut self, now: simkit::time::SimTime) -> Vec<PlacedVm> {
        let mut retired = Vec::new();
        for slot in 0..self.occupancy.len() {
            let expired = match &self.occupancy[slot] {
                Some(p) => !p.vm.is_alive_at(now) && p.vm.departure() <= now,
                None => false,
            };
            if expired {
                let placed = self.occupancy[slot].take().expect("checked above");
                self.by_vm.remove(placed.vm.id);
                self.free.set(slot);
                self.track_remove(&placed.vm, placed.server);
                retired.push(placed);
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::topology::LayoutConfig;
    use simkit::time::{SimDuration, SimTime};
    use workload::endpoints::EndpointId;
    use workload::vm::IaasCustomerId;

    fn vm(id: u64, saas: bool) -> Vm {
        Vm {
            id: VmId(id),
            kind: if saas {
                VmKind::Saas { endpoint: EndpointId(0) }
            } else {
                VmKind::Iaas { customer: IaasCustomerId(0) }
            },
            arrival: SimTime::ZERO,
            lifetime: SimDuration::from_days(7),
        }
    }

    #[test]
    fn place_and_remove_round_trip() {
        let mut state = ClusterState::new(4);
        assert_eq!(state.server_count(), 4);
        assert_eq!(state.free_servers().len(), 4);
        state.place(vm(1, true), ServerId::new(2), 0.8, Some(InstanceConfig::default_70b())).unwrap();
        assert_eq!(state.placed_count(), 1);
        assert!(!state.is_free(ServerId::new(2)));
        assert_eq!(state.server_of(VmId(1)), Some(ServerId::new(2)));
        assert_eq!(state.vm_on(ServerId::new(2)).unwrap().vm.id, VmId(1));
        let removed = state.remove(VmId(1)).unwrap();
        assert_eq!(removed.server, ServerId::new(2));
        assert!(state.is_free(ServerId::new(2)));
        assert_eq!(state.placed_count(), 0);
    }

    #[test]
    fn double_placement_and_missing_removal_error() {
        let mut state = ClusterState::new(2);
        state.place(vm(1, false), ServerId::new(0), 1.0, None).unwrap();
        assert_eq!(
            state.place(vm(2, false), ServerId::new(0), 1.0, None),
            Err(StateError::ServerOccupied(ServerId::new(0)))
        );
        assert_eq!(
            state.place(vm(1, false), ServerId::new(1), 1.0, None),
            Err(StateError::AlreadyPlaced(VmId(1)))
        );
        assert_eq!(state.remove(VmId(9)), Err(StateError::NotPlaced(VmId(9))));
        assert!(StateError::NotPlaced(VmId(9)).to_string().contains("not placed"));
    }

    #[test]
    fn set_config_updates_placed_vm() {
        let mut state = ClusterState::new(2);
        state.place(vm(1, true), ServerId::new(0), 0.5, Some(InstanceConfig::default_70b())).unwrap();
        let new_config = InstanceConfig::small_fallback();
        state.set_config(VmId(1), new_config).unwrap();
        assert_eq!(state.vm_on(ServerId::new(0)).unwrap().config, Some(new_config));
        assert!(state.set_config(VmId(2), new_config).is_err());
    }

    #[test]
    fn row_mix_counts_kinds() {
        let layout = LayoutConfig::small_test_cluster().build();
        let mut state = ClusterState::new(layout.server_count());
        // Row 0 contains servers 0..4.
        state.place(vm(1, true), ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, false), ServerId::new(1), 0.5, None).unwrap();
        state.place(vm(3, false), ServerId::new(4), 0.5, None).unwrap();
        let (iaas, saas) = state.row_mix(&layout, RowId::new(0));
        assert_eq!((iaas, saas), (1, 1));
        let (iaas1, saas1) = state.row_mix(&layout, RowId::new(1));
        assert_eq!((iaas1, saas1), (1, 0));
        assert_eq!(state.vms_in_row(&layout, RowId::new(0)).len(), 2);
        assert_eq!(state.vms_in_aisle(&layout, AisleId::new(0)).len(), 3);
    }

    #[test]
    fn cached_row_mix_matches_scan() {
        let layout = LayoutConfig::small_test_cluster().build();
        let mut cached = ClusterState::with_layout(&layout);
        let mut scanned = ClusterState::new(layout.server_count());
        for (i, server) in [0usize, 1, 4, 6].into_iter().enumerate() {
            let v = vm(i as u64, i % 2 == 0);
            cached.place(v, ServerId::new(server), 0.5, None).unwrap();
            scanned.place(v, ServerId::new(server), 0.5, None).unwrap();
        }
        cached.remove(VmId(1)).unwrap();
        scanned.remove(VmId(1)).unwrap();
        for row in layout.rows() {
            assert_eq!(cached.row_mix(&layout, row.id), scanned.row_mix(&layout, row.id));
        }
    }

    #[test]
    fn endpoint_instances_track_saas_membership() {
        let layout = LayoutConfig::small_test_cluster().build();
        let mut state = ClusterState::with_layout(&layout);
        state.place(vm(1, true), ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, true), ServerId::new(1), 0.5, None).unwrap();
        state.place(vm(3, false), ServerId::new(2), 0.5, None).unwrap();
        assert_eq!(state.endpoint_instances(EndpointId(0)), &[VmId(1), VmId(2)]);
        assert!(state.endpoint_instances(EndpointId(9)).is_empty());
        state.remove(VmId(1)).unwrap();
        assert_eq!(state.endpoint_instances(EndpointId(0)), &[VmId(2)]);
    }

    #[test]
    fn free_set_iterates_in_id_order() {
        let mut state = ClusterState::new(130);
        state.place(vm(1, false), ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, false), ServerId::new(64), 0.5, None).unwrap();
        state.place(vm(3, false), ServerId::new(129), 0.5, None).unwrap();
        assert_eq!(state.first_free(), Some(ServerId::new(1)));
        assert_eq!(state.free_count(), 127);
        let free = state.free_servers();
        assert_eq!(free.len(), 127);
        assert!(free.windows(2).all(|w| w[0] < w[1]), "free list must be ordered");
        assert!(!free.contains(&ServerId::new(64)));
        state.remove(VmId(1)).unwrap();
        assert_eq!(state.first_free(), Some(ServerId::new(0)));
    }

    #[test]
    fn retire_expired_removes_only_dead_vms() {
        let mut state = ClusterState::new(3);
        let mut short = vm(1, false);
        short.lifetime = SimDuration::from_hours(1);
        state.place(short, ServerId::new(0), 0.5, None).unwrap();
        state.place(vm(2, true), ServerId::new(1), 0.5, None).unwrap();
        let retired = state.retire_expired(SimTime::from_hours(2));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].vm.id, VmId(1));
        assert_eq!(state.placed_count(), 1);
        assert!(state.is_free(ServerId::new(0)));
    }
}
