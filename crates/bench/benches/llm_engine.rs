//! Criterion micro-benchmarks for the LLM substrate: analytic latency queries and the
//! continuous-batching engine serving a small burst.

use criterion::{criterion_group, criterion_main, Criterion};
use llm_sim::config::InstanceConfig;
use llm_sim::engine::InstanceEngine;
use llm_sim::hardware::GpuHardware;
use llm_sim::perf::PerfModel;
use llm_sim::request::{RequestGenerator, RequestShape};
use simkit::time::SimTime;
use std::hint::black_box;

fn bench_llm_engine(c: &mut Criterion) {
    let gpu = GpuHardware::a100();
    let config = InstanceConfig::default_70b();
    let perf = PerfModel::new(gpu);

    c.bench_function("perf_goodput_eval", |b| {
        b.iter(|| perf.goodput_tokens_per_s(black_box(&config)))
    });
    c.bench_function("perf_decode_step_eval", |b| {
        b.iter(|| perf.decode_step_time_s(black_box(&config), 32, 900))
    });

    c.bench_function("engine_serve_64_requests", |b| {
        b.iter(|| {
            let mut engine = InstanceEngine::new(config, &gpu);
            let mut generator = RequestGenerator::new(RequestShape::default(), 20, 7);
            for _ in 0..64 {
                engine.submit(generator.generate(SimTime::ZERO));
            }
            black_box(engine.run_for(30.0))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_llm_engine
}
criterion_main!(benches);
