//! Criterion micro-benchmarks for the request router: one routing decision across a
//! 100-instance endpoint, Baseline vs TAPAS.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use llm_sim::request::{CustomerId, InferenceRequest, RequestId};
use simkit::time::SimTime;
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts};
use std::hint::black_box;
use tapas::profiles::ProfileStore;
use tapas::routing::{
    BaselineRouter, InstanceSnapshot, RequestRouterPolicy, RoutingContext, TapasRouter,
};
use workload::vm::VmId;

fn bench_router(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::production_datacenter().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let instances: Vec<InstanceSnapshot> = (0..100)
        .map(|i| InstanceSnapshot {
            vm: VmId(i),
            server: ServerId::new((i * 7) as usize % dc.layout().server_count()),
            outstanding_requests: (i % 9) as usize,
            utilization: (i % 10) as f64 / 10.0,
            recent_customers: vec![CustomerId(i % 13)],
            config: InstanceConfig::default_70b(),
            in_transition: false,
        })
        .collect();
    let context = RoutingContext {
        outside_temp: Celsius::new(30.0),
        dc_load: 0.7,
        row_power: profiles
            .budgets
            .row_power
            .iter()
            .map(|(&r, &b)| (r, b * 0.8))
            .collect(),
        aisle_airflow: profiles
            .budgets
            .aisle_airflow
            .iter()
            .map(|(&a, &b)| (a, CubicFeetPerMinute::new(b.value() * 0.8)))
            .collect(),
    };
    let _ = Kilowatts::ZERO;
    let request = InferenceRequest {
        id: RequestId(1),
        customer: CustomerId(5),
        arrival: SimTime::ZERO,
        prompt_tokens: 512,
        output_tokens: 200,
    };

    c.bench_function("routing_baseline_100_instances", |b| {
        b.iter(|| BaselineRouter.route(black_box(&request), &instances, &profiles, &context))
    });
    c.bench_function("routing_tapas_100_instances", |b| {
        b.iter(|| {
            TapasRouter::default().route(black_box(&request), &instances, &profiles, &context)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_router
}
criterion_main!(benches);
