//! Criterion micro-benchmarks for the request router: one routing decision across a
//! 100-instance endpoint, Baseline vs TAPAS, measured on the simulator's hot path — the
//! struct-of-arrays candidate view with a per-step prepared context and scratch, exactly as
//! `ClusterSimulator::route_requests` drives it.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use llm_sim::request::{CustomerId, InferenceRequest, RequestId};
use simkit::time::SimTime;
use simkit::units::Celsius;
use std::hint::black_box;
use tapas::profiles::ProfileStore;
use tapas::routing::{
    BaselineRouter, CandidateView, PreparedRoutingContext, RecentWindow, RouterScratch,
    RoutingContext, TapasRouter,
};
use workload::vm::VmId;

fn bench_router(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::production_datacenter().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());

    // One endpoint with 100 instances, as struct-of-arrays registry columns.
    let count = 100u64;
    let vm: Vec<VmId> = (0..count).map(VmId).collect();
    let server: Vec<ServerId> = (0..count)
        .map(|i| ServerId::new((i * 7) as usize % dc.layout().server_count()))
        .collect();
    let outstanding: Vec<u32> = (0..count).map(|i| (i % 9) as u32).collect();
    let utilization: Vec<f64> = (0..count).map(|i| (i % 10) as f64 / 10.0).collect();
    let in_transition: Vec<bool> = vec![false; count as usize];
    let recent: Vec<RecentWindow> = (0..count)
        .map(|i| {
            let mut window = RecentWindow::new();
            window.push(CustomerId(i % 13));
            window
        })
        .collect();
    let view = CandidateView {
        vm: &vm,
        server: &server,
        outstanding: &outstanding,
        utilization: &utilization,
        in_transition: &in_transition,
        recent: &recent,
    };
    let _ = InstanceConfig::default_70b();

    let context = RoutingContext::uniform(&profiles, Celsius::new(30.0), 0.7, 0.8, 0.8);
    let request = InferenceRequest {
        id: RequestId(1),
        customer: CustomerId(5),
        arrival: SimTime::ZERO,
        prompt_tokens: 512,
        output_tokens: 200,
    };

    let baseline = BaselineRouter;
    c.bench_function("routing_baseline_100_instances", |b| {
        b.iter(|| baseline.route_view(black_box(&view)))
    });

    // The TAPAS per-decision hot path as the simulator drives it: risk flags are computed
    // once per endpoint per step, each decision is one prescored pass, and the routed
    // candidate's flag is refreshed afterwards.
    let tapas = TapasRouter::default();
    let prepared = PreparedRoutingContext::new(&context, &tapas.config, &profiles);
    let mut scratch = RouterScratch::default();
    scratch.begin_step(profiles.server_count());
    let mut flags = Vec::new();
    tapas.fill_risk_flags(&view, &profiles, &prepared, &mut scratch, &mut flags);
    c.bench_function("routing_tapas_100_instances", |b| {
        b.iter(|| {
            let choice = tapas.route_prescored(black_box(&request), black_box(&view), &flags);
            if let Some(index) = choice {
                flags[index] = tapas.candidate_risk(
                    server[index],
                    utilization[index],
                    &profiles,
                    &prepared,
                    &mut scratch,
                );
            }
            choice
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_router
}
criterion_main!(benches);
