//! Criterion benchmarks for the end-to-end simulator: one full smoke-test run and one
//! physics step on the 80-server cluster (the inner loop of every evaluation figure).

use criterion::{criterion_group, criterion_main, Criterion};
use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use dc_sim::engine::{Datacenter, StepInput, StepWorkspace};
use dc_sim::topology::LayoutConfig;
use simkit::units::Celsius;
use std::hint::black_box;
use tapas::policy::Policy;

fn bench_end_to_end(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let input = StepInput::uniform_load(dc.layout(), Celsius::new(28.0), 0.8);
    // The simulator's hot path: a persistent workspace reused across steps.
    let mut workspace = StepWorkspace::new(dc.layout());
    c.bench_function("physics_step_80_servers", |b| {
        b.iter(|| dc.evaluate_into(black_box(&input), &mut workspace))
    });

    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("smoke_run_baseline", |b| {
        b.iter(|| ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run())
    });
    group.bench_function("smoke_run_tapas", |b| {
        b.iter(|| {
            let mut config = ExperimentConfig::small_smoke_test();
            config.policy = Policy::Tapas;
            ClusterSimulator::new(config).run()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
