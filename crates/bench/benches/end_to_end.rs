//! Criterion benchmarks for the end-to-end simulator: one full smoke-test run and one
//! physics step at four scales — the 80-server real cluster (the inner loop of every
//! evaluation figure), the 1040-server production datacenter, a 10240-server site
//! (128 aisles), and a 102400-server hyperscale site (1280 aisles) proving the SoA
//! activity-plane kernels hold their ns/server price at DRAM-streaming scale.

use criterion::{criterion_group, criterion_main, Criterion};
use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use dc_sim::engine::{Datacenter, StepInput, StepWorkspace};
use dc_sim::topology::LayoutConfig;
use simkit::units::Celsius;
use std::hint::black_box;
use tapas::policy::Policy;

fn physics_step_bench(c: &mut Criterion, name: &str, config: &LayoutConfig) {
    let dc = Datacenter::new(config.build(), 42);
    let input = StepInput::uniform_load(dc.layout(), Celsius::new(28.0), 0.8);
    // The simulator's hot path: a persistent workspace reused across steps.
    let mut workspace = StepWorkspace::new(dc.layout());
    c.bench_function(name, |b| {
        b.iter(|| dc.evaluate_into(black_box(&input), &mut workspace))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // Scale series: the same steady-state step at 80 servers (the paper's real-cluster
    // experiment), 1040 servers (the Fig. 19 datacenter) and 10240 servers (128 aisles),
    // for the ns/server trajectory.
    physics_step_bench(c, "physics_step_80_servers", &LayoutConfig::real_cluster_two_rows());
    physics_step_bench(c, "physics_step_1040_servers", &LayoutConfig::production_datacenter());
    let mut huge = LayoutConfig::production_datacenter();
    huge.aisles = 128; // 128 aisles x 2 rows x 10 racks x 4 servers = 10240 servers
    physics_step_bench(c, "physics_step_10240_servers", &huge);
    let mut hyper = LayoutConfig::production_datacenter();
    hyper.aisles = 1280; // 102400 servers, ~820k GPUs — one hyperscale site.
    physics_step_bench(c, "physics_step_102400_servers", &hyper);

    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("smoke_run_baseline", |b| {
        b.iter(|| ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run())
    });
    group.bench_function("smoke_run_tapas", |b| {
        b.iter(|| {
            let mut config = ExperimentConfig::small_smoke_test();
            config.policy = Policy::Tapas;
            ClusterSimulator::new(config).run()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
