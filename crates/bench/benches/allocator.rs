//! Criterion micro-benchmarks for the VM allocator: one placement decision on a partially
//! occupied 80-server cluster, Baseline vs TAPAS.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use llm_sim::hardware::GpuHardware;
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use tapas::placement::{BaselinePlacement, PlacementRequest, TapasPlacement, VmPlacementPolicy};
use tapas::profiles::ProfileStore;
use tapas::state::ClusterState;
use workload::endpoints::EndpointId;
use workload::vm::{IaasCustomerId, Vm, VmId, VmKind};

fn vm(id: u64, saas: bool) -> Vm {
    Vm {
        id: VmId(id),
        kind: if saas {
            VmKind::Saas { endpoint: EndpointId(0) }
        } else {
            VmKind::Iaas { customer: IaasCustomerId(0) }
        },
        arrival: SimTime::ZERO,
        lifetime: SimDuration::from_days(14),
    }
}

fn bench_allocator(c: &mut Criterion) {
    let layout = LayoutConfig::real_cluster_two_rows().build();
    let dc = Datacenter::new(layout.clone(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let mut state = ClusterState::new(layout.server_count());
    for i in 0..50u64 {
        state.place(vm(i, i % 2 == 0), ServerId::new(i as usize), 0.8, None).unwrap();
    }
    let request = PlacementRequest { vm: vm(999, true), predicted_peak_load: 0.85 };

    c.bench_function("placement_baseline", |b| {
        b.iter(|| BaselinePlacement.place(black_box(&request), &state, &layout, &profiles))
    });
    c.bench_function("placement_tapas_80_servers", |b| {
        b.iter(|| {
            TapasPlacement::default().place(black_box(&request), &state, &layout, &profiles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_allocator
}
criterion_main!(benches);
