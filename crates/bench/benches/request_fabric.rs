//! Criterion benchmarks for the request fabric: steady-state fabric-enabled fleet steps
//! at one and sixteen sites (generation + per-request geo routing + KV-bounded batch
//! serving riding on the full simulation step), and the continuous-batching scheduler in
//! isolation (offer + drain of a fixed request batch — the per-request hot path).

use cluster_sim::experiment::{ExperimentConfig, FleetConfig, RequestFabricConfig};
use cluster_sim::fleet::FleetSimulator;
use criterion::{criterion_group, criterion_main, Criterion};
use llm_sim::batch::BatchScheduler;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use simkit::time::SimTime;
use std::hint::black_box;
use tapas::policy::Policy;

fn fabric_base(rate_scale: f64) -> ExperimentConfig {
    let mut base = ExperimentConfig::real_cluster_hour(Policy::Tapas);
    base.duration = SimTime::from_hours(12);
    base.with_request_fabric(RequestFabricConfig {
        rate_scale,
        slo_multiplier: 5.0,
        ..RequestFabricConfig::default()
    })
}

fn bench_request_fabric(c: &mut Criterion) {
    // One 80-server site with the fabric on, primed past the placement wave: the
    // measured step covers stream generation, admission into the per-endpoint batch
    // schedulers and the serving iterations, on top of the legacy step.
    let mut single = FleetSimulator::new(FleetConfig::single_site(fabric_base(0.05)));
    single.step(SimTime::ZERO);
    single.step(SimTime::from_minutes(1));
    let now = SimTime::from_minutes(2);
    c.bench_function("fabric_step_1_site", |b| {
        b.iter(|| single.step(black_box(now)))
    });

    // Sixteen sites: adds fleet-wide generation and per-request geo routing across the
    // signal set, with each site serving its routed share.
    let mut fleet = FleetSimulator::new(FleetConfig::evaluation(fabric_base(0.05), 16));
    fleet.step(SimTime::ZERO);
    fleet.step(SimTime::from_minutes(1));
    c.bench_function("fabric_step_16_sites", |b| {
        b.iter(|| fleet.step(black_box(now)))
    });

    // The scheduler alone: offer 512 requests and drain them to completion — the
    // KV-admission and batching hot path with no simulation step around it.
    let gpu = GpuHardware::a100();
    let config = InstanceConfig::default_70b();
    let mut completions = Vec::new();
    c.bench_function("batch_scheduler_512_requests", |b| {
        b.iter(|| {
            let mut scheduler = BatchScheduler::new(config, &gpu, 4);
            for i in 0..512u64 {
                scheduler.offer(i, 512, 128, i * 40);
            }
            completions.clear();
            scheduler.advance_to(u64::MAX / 2, &mut completions);
            black_box(completions.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_request_fabric
}
criterion_main!(benches);
