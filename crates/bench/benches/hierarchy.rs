//! Criterion benchmarks for the dense telemetry core: power-hierarchy assessment and the
//! big-cluster metrics/carry-over recording walk, both on the ~1000-server production
//! layout (the per-step cost that dominates large-scale simulations like Fig. 19).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::{Datacenter, StepInput, StepWorkspace};
use dc_sim::power::hierarchy::{CapacityState, HierarchyScratch, PowerAssessment, PowerHierarchy};
use dc_sim::topology::LayoutConfig;
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let layout = LayoutConfig::production_datacenter().build();
    let hierarchy = PowerHierarchy::from_layout(&layout);
    // A mildly uneven load pattern so some rows sit near budget (realistic branch mix).
    let server_power: Vec<Kilowatts> = (0..layout.server_count())
        .map(|i| Kilowatts::new(4.5 + 1.5 * ((i % 7) as f64 / 6.0)))
        .collect();
    let capacity = CapacityState::healthy();
    let mut assessment = PowerAssessment::empty();
    let mut scratch = HierarchyScratch::default();
    c.bench_function("hierarchy_assess_1040_servers", |b| {
        b.iter(|| {
            hierarchy.assess_into(
                black_box(&server_power),
                black_box(&capacity),
                &mut assessment,
                &mut scratch,
            );
        })
    });

    // The simulator's per-step telemetry consumption on a big cluster: aggregate metrics,
    // violation scans and the dense carry-over copies into the routing context.
    let dc = Datacenter::new(layout, 42);
    let input = StepInput::uniform_load(dc.layout(), Celsius::new(30.0), 0.9);
    let mut workspace = StepWorkspace::for_topology(std::sync::Arc::clone(dc.topology()));
    dc.evaluate_into(&input, &mut workspace);
    let outcome = &workspace.outcome;
    let mut row_power_carry = vec![Kilowatts::ZERO; dc.layout().rows().len()];
    let mut aisle_airflow_carry = vec![CubicFeetPerMinute::ZERO; dc.layout().aisles().len()];
    c.bench_function("telemetry_record_1040_servers", |b| {
        b.iter(|| {
            let max_temp = outcome.max_gpu_temp().value();
            let peak_row = outcome.peak_row_power().value();
            let dc_draw = outcome.power.datacenter.draw.value();
            let mut over_budget = 0usize;
            for (_, utilization) in outcome.power.rows.iter() {
                if utilization.is_over_budget() {
                    over_budget += 1;
                }
            }
            let mut violated = 0usize;
            for (_, assessment) in outcome.aisle_airflow.iter() {
                if assessment.is_violated() {
                    violated += 1;
                }
            }
            for (carry, utilization) in
                row_power_carry.iter_mut().zip(outcome.power.rows.values())
            {
                *carry = utilization.draw;
            }
            for (carry, assessment) in
                aisle_airflow_carry.iter_mut().zip(outcome.aisle_airflow.values())
            {
                *carry = assessment.demand;
            }
            black_box((max_temp, peak_row, dc_draw, over_budget, violated));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hierarchy
}
criterion_main!(benches);
