//! Criterion micro-benchmarks for the thermal models: these are the functions the TAPAS
//! router and configurator evaluate on every decision, so they must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::ids::{GpuId, ServerId};
use dc_sim::topology::LayoutConfig;
use simkit::units::{Celsius, Watts};
use std::hint::black_box;

fn bench_thermal_model(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let server = ServerId::new(17);
    let gpu = GpuId::new(server, 3);

    c.bench_function("inlet_temperature_eval", |b| {
        b.iter(|| {
            dc.inlet_model().inlet_temp(
                black_box(server),
                black_box(Celsius::new(27.0)),
                black_box(0.7),
                0.0,
            )
        })
    });

    c.bench_function("gpu_temperature_eval", |b| {
        b.iter(|| {
            dc.gpu_model().temperatures(
                black_box(gpu),
                black_box(Celsius::new(24.0)),
                black_box(Watts::new(350.0)),
                0.6,
            )
        })
    });

    c.bench_function("gpu_power_budget_inverse", |b| {
        b.iter(|| {
            dc.gpu_model().power_for_temp_limit(
                black_box(server),
                black_box(Celsius::new(26.0)),
                black_box(Celsius::new(82.0)),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_thermal_model
}
criterion_main!(benches);
