//! Criterion micro-benchmarks for the power models and the hierarchy assessment.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::power::hierarchy::CapacityState;
use dc_sim::topology::{LayoutConfig, ServerSpec};
use simkit::units::Kilowatts;
use std::hint::black_box;

fn bench_power_model(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let spec = ServerSpec::dgx_a100();

    c.bench_function("server_power_eval", |b| {
        b.iter(|| dc.power_model().server_power(black_box(&spec), black_box(0.73)))
    });

    let server_power = vec![Kilowatts::new(5.1); dc.layout().server_count()];
    let capacity = CapacityState::healthy();
    c.bench_function("hierarchy_assess_80_servers", |b| {
        b.iter(|| dc.hierarchy().assess(black_box(&server_power), black_box(&capacity)))
    });

    let big = Datacenter::new(LayoutConfig::production_datacenter().build(), 42);
    let big_power = vec![Kilowatts::new(5.1); big.layout().server_count()];
    c.bench_function("hierarchy_assess_1040_servers", |b| {
        b.iter(|| big.hierarchy().assess(black_box(&big_power), black_box(&capacity)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_power_model
}
criterion_main!(benches);
