//! Criterion micro-benchmarks for the instance configurator (runs for every LLM iteration in
//! the paper's implementation, so it must be lightweight) and for the offline profiling
//! sweep it consumes.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::engine::Datacenter;
use dc_sim::topology::LayoutConfig;
use llm_sim::config::InstanceConfig;
use llm_sim::hardware::GpuHardware;
use llm_sim::profile::ConfigProfile;
use simkit::units::{Kilowatts, Watts};
use std::hint::black_box;
use tapas::configurator::{InstanceConfigurator, InstanceLimits};
use tapas::profiles::ProfileStore;

fn bench_configurator(c: &mut Criterion) {
    let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let configurator = InstanceConfigurator::new(0.9);
    let current = InstanceConfig::default_70b();
    let limits = InstanceLimits {
        max_gpu_power: Watts::new(250.0),
        max_server_power: Kilowatts::new(4.0),
        demand_tokens_per_s: 800.0,
    };

    c.bench_function("configurator_select", |b| {
        b.iter(|| configurator.select(black_box(&current), black_box(&limits), &profiles))
    });

    c.bench_function("profile_single_config", |b| {
        b.iter(|| ConfigProfile::build(black_box(&current), &GpuHardware::a100()))
    });

    c.bench_function("profile_full_sweep", |b| {
        b.iter(|| ConfigProfile::sweep(black_box(&GpuHardware::a100())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_configurator
}
criterion_main!(benches);
