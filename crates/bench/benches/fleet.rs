//! Criterion benchmarks for the fleet layer: one steady-state fleet step across four
//! datacenters (the inner loop of every geo-scheduling experiment), the same step across
//! a 16-datacenter fleet (the scale point for the SoA physics kernels), and one full
//! 3-site fleet smoke run.

use cluster_sim::experiment::{ExperimentConfig, FleetConfig};
use cluster_sim::fleet::FleetSimulator;
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::time::SimTime;
use std::hint::black_box;
use tapas::policy::Policy;

fn bench_fleet(c: &mut Criterion) {
    // Four 80-server datacenters under cycling climates, primed past the initial
    // placement wave so the measured step is the steady-state loop (route arrivals, step
    // every cell, refresh signals) with no warm-up allocations left.
    let mut base = ExperimentConfig::real_cluster_hour(Policy::Tapas);
    base.duration = SimTime::from_hours(12);
    let mut sim = FleetSimulator::new(FleetConfig::evaluation(base, 4));
    sim.step(SimTime::ZERO);
    sim.step(SimTime::from_minutes(1));
    let now = SimTime::from_minutes(2);
    c.bench_function("fleet_step_4_datacenters", |b| {
        b.iter(|| sim.step(black_box(now)))
    });

    // The same steady-state step across sixteen 80-server datacenters: the fleet-scale
    // point of the physics scale series (geo split + 16 cell steps + signal refresh).
    let mut base16 = ExperimentConfig::real_cluster_hour(Policy::Tapas);
    base16.duration = SimTime::from_hours(12);
    let mut sim16 = FleetSimulator::new(FleetConfig::evaluation(base16, 16));
    sim16.step(SimTime::ZERO);
    sim16.step(SimTime::from_minutes(1));
    c.bench_function("fleet_step_16_datacenters", |b| {
        b.iter(|| sim16.step(black_box(now)))
    });

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("fleet_smoke_run_3_sites", |b| {
        b.iter(|| {
            let mut base = ExperimentConfig::small_smoke_test();
            base.policy = Policy::Tapas;
            FleetSimulator::new(FleetConfig::evaluation(base, 3)).run()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
