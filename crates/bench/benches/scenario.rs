//! Criterion benchmarks for the scenario layer: dense resolution of a fully loaded
//! week-long scenario (every event kind, several site targets) into the per-step
//! timeline one fleet cell runs on, and the per-step queries the cell hot path adds.

use cluster_sim::scenario::Scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use dc_sim::failures::FailureSchedule;
use simkit::time::{SimDuration, SimTime};
use std::hint::black_box;
use workload::endpoints::EndpointId;

/// A week of events across a 3-site fleet: two weather episodes, a diurnal-ish price
/// shape (cheap nights, one spike), two failures and demand shaping.
fn week_scenario() -> Scenario {
    let mut builder = Scenario::builder()
        .base_grid_price(45.0)
        .heatwave(2..4, 9.0)
        .weather(0, SimTime::from_days(5), SimTime::from_days(6), 6.0)
        .grid_price_spike(1, SimTime::from_days(2), SimTime::from_days(3), 280.0)
        .fail_ups(2, SimTime::from_hours(50), SimTime::from_hours(53), 0.75)
        .fail_ahus(0, 1, 1, SimTime::from_hours(60), SimTime::from_hours(62))
        .surge(SimTime::from_days(4), SimTime::from_days(5), 1.8)
        .endpoint_ramp(EndpointId(3), SimTime::from_days(5), SimTime::from_days(6), 2.5);
    // Cheap overnight windows, one per day.
    for day in 0..7u64 {
        builder = builder.grid_price(
            cluster_sim::scenario::SiteSelector::All,
            SimTime::from_hours(day * 24),
            SimTime::from_hours(day * 24 + 6),
            22.0,
        );
    }
    builder.build().expect("valid bench scenario")
}

fn bench_scenario(c: &mut Criterion) {
    let scenario = week_scenario();
    let duration = SimTime::from_days(7);
    let step = SimDuration::from_minutes(5);
    let failures = FailureSchedule::none();

    // One site's full dense resolution: 2017 steps × (temp, price, demand) plus the
    // merged failure schedule — what every fleet cell pays once at build time.
    c.bench_function("scenario_resolve_week_5min", |b| {
        b.iter(|| {
            black_box(scenario.resolve(
                black_box(0),
                duration,
                step,
                10,
                &failures,
            ))
        })
    });

    // Steady-state per-step queries (the hot-path side of the contract: index math only).
    let timeline = scenario.resolve(0, duration, step, 10, &failures);
    c.bench_function("scenario_timeline_queries_per_step", |b| {
        let now = SimTime::from_hours(51);
        b.iter(|| {
            let t = black_box(now);
            black_box(
                timeline.temp_offset_at(t)
                    + timeline.grid_price_at(t)
                    + timeline.demand_scale_at(t, EndpointId(3)),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scenario
}
criterion_main!(benches);
