//! Fig. 2 / Fig. 3 — server inlet temperature follows the outside temperature, with
//! per-server offsets and the three-regime relationship (floor below ≈15 °C, linear to
//! ≈25 °C, compressed slope above).

use dc_sim::engine::Datacenter;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use dc_sim::weather::{Climate, WeatherModel};
use serde::Serialize;
use simkit::time::SimTime;
use tapas_bench::{header, print_series, write_json};

#[derive(Serialize)]
struct Fig0203Output {
    /// (outside °C, inlet °C) regression points for three sample servers.
    regression: Vec<(String, Vec<(f64, f64)>)>,
    /// One month of (day, outside °C, inlet °C of server 2) samples.
    timeline: Vec<(f64, f64, f64)>,
}

fn main() {
    header("Figures 2–3: inlet temperature vs outside temperature for sample servers");
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let servers = [ServerId::new(2), ServerId::new(25), ServerId::new(78)];

    // Fig. 3: the inlet/outside regression for each sample server.
    let mut regression = Vec::new();
    for (i, &server) in servers.iter().enumerate() {
        let points: Vec<(f64, f64)> = (-5..=40)
            .step_by(5)
            .map(|t| {
                let outside = simkit::units::Celsius::new(f64::from(t));
                (f64::from(t), dc.inlet_model().inlet_temp(server, outside, 0.5, 0.0).value())
            })
            .collect();
        print_series(&format!("server {} inlet vs outside", i + 1), &points);
        regression.push((format!("server-{}", i + 1), points));
    }

    // Fig. 2: a month-long timeline for one server in a temperate summer.
    let mut weather = WeatherModel::new(Climate::temperate(), 42);
    let timeline: Vec<(f64, f64, f64)> = (0..(30 * 24))
        .map(|h| {
            let t = SimTime::from_hours(h);
            let outside = weather.outside_temp(t);
            let inlet = dc.inlet_model().inlet_temp(servers[0], outside, 0.5, 0.0);
            (t.as_days(), outside.value(), inlet.value())
        })
        .collect();
    println!("\nday, outside °C, inlet °C (first week shown)");
    for (d, o, i) in timeline.iter().take(7 * 24).step_by(12) {
        println!("{d:5.2}, {o:6.1}, {i:6.1}");
    }
    println!("\npaper: inlet follows outside; floor ≈18 °C below 15 °C outside; servers differ by a ~2 °C offset.");

    write_json("fig02_03_inlet_vs_outside", &Fig0203Output { regression, timeline });
}
