//! Robustness sweep: generated adversarial scenarios × policies × worlds.
//!
//! Where the figure harnesses replay the paper's hand-written scenarios, this harness
//! asks the opposite question: how do the policies hold up under scenarios *nobody*
//! hand-tuned? It generates seeded scenarios per intensity tier
//! ([`cluster_sim::scenario::generator`]), runs every policy through each one — Baseline
//! and TAPAS on a single datacenter, round-robin and headroom geo routing on a
//! three-site fleet — and prints a deterministic comparison table of robustness metrics:
//! thermal-throttle events, power-capped site-minutes, the worst single step's SLO
//! violations, recovery time after the last emergency window, and energy cost.
//!
//! Every run is wrapped in `catch_unwind`, so a panicking configuration shows up as a
//! `PANIC` row instead of killing the sweep — the harness doubles as a chaos monkey.
//!
//! Flags: `--smoke` (CI-sized: 2 seeds, adversarial tier only, tiny cluster),
//! `--full` (8 seeds, 1-day horizon); the default is 3 seeds × 3 tiers at 12 hours.

use cluster_sim::experiment::{
    ExperimentConfig, FleetConfig, GeoPolicy, RequestFabricConfig,
};
use cluster_sim::fleet::FleetSimulator;
use cluster_sim::scenario::generator::{generate, GeneratorConfig, IntensityTier};
use cluster_sim::scenario::{energy_cost_usd, fleet_energy_cost_usd, Scenario};
use cluster_sim::simulator::ClusterSimulator;
use serde::Serialize;
use simkit::events::EventKind;
use simkit::time::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tapas::policy::Policy;
use tapas_bench::{full_scale_requested, header, write_json};

/// Number of fleet sites the fleet-world scenarios target.
const FLEET_SITES: usize = 3;

/// One (tier, seed, world, policy) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
struct SweepRecord {
    tier: &'static str,
    seed: u64,
    world: &'static str,
    policy: String,
    panicked: bool,
    throttle_events: usize,
    cap_events: usize,
    capped_minutes: f64,
    worst_step_slo: usize,
    recovery_minutes: u64,
    slo_attainment: f64,
    energy_cost_usd: f64,
    requests_served: u64,
    /// Request-fabric lifecycle columns (all zero for the non-fabric worlds): fraction
    /// of arrived requests shed at their deadline, decode preemptions, prefill tokens
    /// whose work was evicted and redone, and per-request SLO attainment at the paper's
    /// 5x multiplier.
    shed_rate: f64,
    preemptions: u64,
    wasted_prefill_tokens: u64,
    slo_5x_attainment: f64,
}

impl SweepRecord {
    fn panic_row(
        tier: &'static str,
        seed: u64,
        world: &'static str,
        policy: String,
    ) -> Self {
        Self {
            tier,
            seed,
            world,
            policy,
            panicked: true,
            throttle_events: 0,
            cap_events: 0,
            capped_minutes: 0.0,
            worst_step_slo: 0,
            recovery_minutes: 0,
            slo_attainment: 0.0,
            energy_cost_usd: 0.0,
            requests_served: 0,
            shed_rate: 0.0,
            preemptions: 0,
            wasted_prefill_tokens: 0,
            slo_5x_attainment: 0.0,
        }
    }

    fn line(&self) -> String {
        if self.panicked {
            return format!(
                "  seed {:>3}  {:<12} {:>30}",
                self.seed, self.policy, "*** PANIC ***"
            );
        }
        if self.world == "fabric" {
            return format!(
                "  seed {:>3}  {:<12} shed={:>6.3} preempt={:>5} wasted_prefill={:>9} slo5x={:>6.3} served={:>8}",
                self.seed,
                self.policy,
                self.shed_rate,
                self.preemptions,
                self.wasted_prefill_tokens,
                self.slo_5x_attainment,
                self.requests_served,
            );
        }
        format!(
            "  seed {:>3}  {:<12} throttle={:>5} caps={:>5} capped_min={:>7.0} worst_slo={:>4} recovery={:>4}m slo={:>6.3} energy=${:>8.0}",
            self.seed,
            self.policy,
            self.throttle_events,
            self.cap_events,
            self.capped_minutes,
            self.worst_step_slo,
            self.recovery_minutes,
            self.slo_attainment,
            self.energy_cost_usd,
        )
    }
}

/// Minutes a report kept logging stress events past the scenario's last emergency window.
fn recovery_minutes(last_stress_minute: Option<u64>, scenario: &Scenario) -> u64 {
    match (last_stress_minute, scenario.last_emergency_end()) {
        (Some(stress), Some(end)) => stress.saturating_sub(end.as_minutes()),
        _ => 0,
    }
}

/// Runs one single-datacenter policy through a generated scenario, panic-safe.
fn run_single(
    tier: &'static str,
    seed: u64,
    base: &ExperimentConfig,
    policy: Policy,
    scenario: &Scenario,
) -> SweepRecord {
    let config = base.clone().with_policy(policy).with_scenario(scenario.clone());
    let timeline = config.resolved_timeline();
    let outcome = catch_unwind(AssertUnwindSafe(|| ClusterSimulator::new(config).run()));
    let Ok(report) = outcome else {
        return SweepRecord::panic_row(tier, seed, "single", policy.label().to_string());
    };
    SweepRecord {
        tier,
        seed,
        world: "single",
        policy: policy.label().to_string(),
        panicked: false,
        throttle_events: report.events.count(EventKind::ThermalThrottle),
        cap_events: report.events.count(EventKind::PowerCap),
        capped_minutes: report.power_capped_time_fraction()
            * report.horizon.as_minutes() as f64,
        worst_step_slo: report.worst_step_slo_violations(),
        recovery_minutes: recovery_minutes(report.last_stress_event_minute(), scenario),
        slo_attainment: report.slo_attainment(),
        energy_cost_usd: energy_cost_usd(&report, &timeline),
        requests_served: report.requests_served,
        shed_rate: 0.0,
        preemptions: 0,
        wasted_prefill_tokens: 0,
        slo_5x_attainment: 0.0,
    }
}

/// Runs one geo policy of a three-site fleet through a generated scenario, panic-safe.
fn run_fleet(
    tier: &'static str,
    seed: u64,
    base: &ExperimentConfig,
    geo: GeoPolicy,
    scenario: &Scenario,
) -> SweepRecord {
    let label = match geo {
        GeoPolicy::Pinned(site) => format!("pinned-{site}"),
        GeoPolicy::RoundRobin => "round-robin".to_string(),
        GeoPolicy::Headroom => "headroom".to_string(),
    };
    let config = FleetConfig::evaluation(
        base.clone().with_scenario(scenario.clone()),
        FLEET_SITES,
    )
    .with_geo(geo);
    let cost_config = config.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| FleetSimulator::new(config).run()));
    let Ok(report) = outcome else {
        return SweepRecord::panic_row(tier, seed, "fleet", label);
    };
    SweepRecord {
        tier,
        seed,
        world: "fleet",
        policy: label,
        panicked: false,
        throttle_events: report.thermal_throttle_events(),
        cap_events: report.power_cap_events(),
        capped_minutes: report.power_capped_minutes(),
        worst_step_slo: report.worst_step_slo_violations(),
        recovery_minutes: recovery_minutes(report.last_stress_event_minute(), scenario),
        slo_attainment: report.slo_attainment(),
        energy_cost_usd: fleet_energy_cost_usd(&report, &cost_config),
        requests_served: report.total_requests_served(),
        shed_rate: 0.0,
        preemptions: 0,
        wasted_prefill_tokens: 0,
        slo_5x_attainment: 0.0,
    }
}

/// Demand multiplier for the fabric world. Full calibrated demand (`1.0`) keeps the
/// fleet near — not past — aggregate capacity, so shedding is *failure-driven*: it
/// happens where replica-kill windows and placement skew pinch serving capacity, which
/// is exactly what capacity-aware routing can mitigate and round-robin cannot. A
/// globally overloaded fleet (say `2.0`) sheds the same overflow under any routing and
/// washes the comparison out.
const FABRIC_RATE_SCALE: f64 = 1.0;

/// Runs one end-to-end stack — scheduling policy plus geo routing — of a three-site
/// fleet with the request fabric (deadline shedding on) through a generated scenario,
/// panic-safe. This is the request-lifecycle robustness view: the same adversarial
/// scenario, scored by what happens to individual requests (shedding, preemption,
/// wasted prefill work, per-request SLO attainment) instead of site thermals.
fn run_fabric(
    tier: &'static str,
    seed: u64,
    base: &ExperimentConfig,
    label: &'static str,
    policy: Policy,
    geo: GeoPolicy,
    scenario: &Scenario,
) -> SweepRecord {
    let config = FleetConfig::evaluation(
        base.clone()
            .with_policy(policy)
            .with_scenario(scenario.clone())
            .with_request_fabric(RequestFabricConfig {
                rate_scale: FABRIC_RATE_SCALE,
                deadline_shedding: true,
                ..RequestFabricConfig::default()
            }),
        FLEET_SITES,
    )
    .with_geo(geo);
    let outcome = catch_unwind(AssertUnwindSafe(|| FleetSimulator::new(config).run()));
    let Ok(report) = outcome else {
        return SweepRecord::panic_row(tier, seed, "fabric", label.to_string());
    };
    let metrics = report.request_fabric().expect("fabric world always runs the fabric");
    let lifecycle = metrics.lifecycle;
    SweepRecord {
        tier,
        seed,
        world: "fabric",
        policy: label.to_string(),
        panicked: false,
        throttle_events: report.thermal_throttle_events(),
        cap_events: report.power_cap_events(),
        capped_minutes: report.power_capped_minutes(),
        worst_step_slo: report.worst_step_slo_violations(),
        recovery_minutes: recovery_minutes(report.last_stress_event_minute(), scenario),
        slo_attainment: report.slo_attainment(),
        energy_cost_usd: fleet_energy_cost_usd(
            &report,
            &FleetConfig::evaluation(base.clone().with_scenario(scenario.clone()), FLEET_SITES),
        ),
        requests_served: report.total_requests_served(),
        shed_rate: if lifecycle.arrived == 0 {
            0.0
        } else {
            lifecycle.shed as f64 / lifecycle.arrived as f64
        },
        preemptions: lifecycle.preemptions,
        wasted_prefill_tokens: lifecycle.wasted_prefill_tokens,
        slo_5x_attainment: metrics.attainment_at(5.0),
    }
}

/// Mean of a per-record metric over the non-panicked records of one (world, policy).
fn mean_of(
    records: &[SweepRecord],
    world: &str,
    policy: &str,
    metric: impl Fn(&SweepRecord) -> f64,
) -> f64 {
    let values: Vec<f64> = records
        .iter()
        .filter(|r| !r.panicked && r.world == world && r.policy == policy)
        .map(metric)
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = full_scale_requested();

    let (seeds, tiers, base): (Vec<u64>, &[IntensityTier], ExperimentConfig) = if smoke {
        (
            vec![1, 2],
            &[IntensityTier::Adversarial],
            ExperimentConfig::small_smoke_test(),
        )
    } else {
        let horizon = if full { SimTime::from_days(1) } else { SimTime::from_hours(12) };
        (
            if full { (1..=8).collect() } else { vec![1, 2, 3] },
            &IntensityTier::ALL,
            ExperimentConfig::medium(Policy::Baseline).with_duration(horizon),
        )
    };

    header(&format!(
        "Scenario sweep: {} seeds x {} tiers, single-DC (Baseline vs TAPAS) + {FLEET_SITES}-site fleet (round-robin vs headroom)",
        seeds.len(),
        tiers.len(),
    ));

    let mut records: Vec<SweepRecord> = Vec::new();
    for &tier in tiers {
        println!("\n--- tier: {} ---", tier.label());
        for &seed in &seeds {
            let single_scenario = generate(
                seed,
                &GeneratorConfig {
                    tier,
                    sites: 1,
                    duration: base.duration,
                    endpoints: base.endpoint_count,
                },
            );
            for policy in [Policy::Baseline, Policy::Tapas] {
                let record =
                    run_single(tier.label(), seed, &base, policy, &single_scenario);
                println!("{}", record.line());
                records.push(record);
            }
            let fleet_scenario = generate(
                seed,
                &GeneratorConfig {
                    tier,
                    sites: FLEET_SITES,
                    duration: base.duration,
                    endpoints: base.endpoint_count,
                },
            );
            for geo in [GeoPolicy::RoundRobin, GeoPolicy::Headroom] {
                let record = run_fleet(tier.label(), seed, &base, geo, &fleet_scenario);
                println!("{}", record.line());
                records.push(record);
            }
            // The request-lifecycle view of the same fleet scenario: the full Baseline
            // stack (baseline thermals + round-robin routing) against the full TAPAS
            // stack (thermal-aware policy + headroom routing with saturation diversion).
            for (label, policy, geo) in [
                ("Baseline", Policy::Baseline, GeoPolicy::RoundRobin),
                ("TAPAS", Policy::Tapas, GeoPolicy::Headroom),
            ] {
                let record = run_fabric(
                    tier.label(),
                    seed,
                    &base,
                    label,
                    policy,
                    geo,
                    &fleet_scenario,
                );
                println!("{}", record.line());
                records.push(record);
            }
        }
    }

    let panics = records.iter().filter(|r| r.panicked).count();
    println!("\nRuns: {} total, {panics} panicked.", records.len());

    // Per-tier robustness comparison: TAPAS vs Baseline single-DC, headroom vs
    // round-robin fleet-wide, averaged over seeds.
    println!("\nPer-tier means (over seeds):");
    println!(
        "  {:<13} {:<8} {:<12} {:>10} {:>10} {:>11} {:>10} {:>11}",
        "tier", "world", "policy", "throttle", "worst_slo", "capped_min", "recovery", "energy_usd"
    );
    for &tier in tiers {
        let tier_records: Vec<SweepRecord> = records
            .iter()
            .filter(|r| r.tier == tier.label())
            .cloned()
            .collect();
        for (world, policy) in [
            ("single", "Baseline"),
            ("single", "TAPAS"),
            ("fleet", "round-robin"),
            ("fleet", "headroom"),
        ] {
            println!(
                "  {:<13} {:<8} {:<12} {:>10.1} {:>10.1} {:>11.0} {:>10.1} {:>11.0}",
                tier.label(),
                world,
                policy,
                mean_of(&tier_records, world, policy, |r| r.throttle_events as f64),
                mean_of(&tier_records, world, policy, |r| r.worst_step_slo as f64),
                mean_of(&tier_records, world, policy, |r| r.capped_minutes),
                mean_of(&tier_records, world, policy, |r| r.recovery_minutes as f64),
                mean_of(&tier_records, world, policy, |r| r.energy_cost_usd),
            );
        }
    }

    // Request-lifecycle robustness: how many requests each stack sacrificed (shed or
    // preempted) and what per-request SLO attainment survived, averaged over seeds.
    println!("\nRequest-fabric per-tier means (over seeds):");
    println!(
        "  {:<13} {:<12} {:>9} {:>10} {:>15} {:>8}",
        "tier", "policy", "shed_rate", "preempt", "wasted_prefill", "slo_5x"
    );
    for &tier in tiers {
        let tier_records: Vec<SweepRecord> = records
            .iter()
            .filter(|r| r.tier == tier.label())
            .cloned()
            .collect();
        for policy in ["Baseline", "TAPAS"] {
            println!(
                "  {:<13} {:<12} {:>9.4} {:>10.1} {:>15.0} {:>8.3}",
                tier.label(),
                policy,
                mean_of(&tier_records, "fabric", policy, |r| r.shed_rate),
                mean_of(&tier_records, "fabric", policy, |r| r.preemptions as f64),
                mean_of(&tier_records, "fabric", policy, |r| {
                    r.wasted_prefill_tokens as f64
                }),
                mean_of(&tier_records, "fabric", policy, |r| r.slo_5x_attainment),
            );
        }
    }

    let worst_tier = tiers.last().expect("at least one tier").label();
    let worst: Vec<SweepRecord> =
        records.iter().filter(|r| r.tier == worst_tier).cloned().collect();
    let baseline_throttle = mean_of(&worst, "single", "Baseline", |r| r.throttle_events as f64);
    let tapas_throttle = mean_of(&worst, "single", "TAPAS", |r| r.throttle_events as f64);
    let baseline_slo = mean_of(&worst, "single", "Baseline", |r| r.worst_step_slo as f64);
    let tapas_slo = mean_of(&worst, "single", "TAPAS", |r| r.worst_step_slo as f64);
    println!(
        "\n{worst_tier} tier, single-DC: throttle events {baseline_throttle:.1} -> {tapas_throttle:.1}, worst-step SLO {baseline_slo:.1} -> {tapas_slo:.1} (Baseline -> TAPAS)"
    );
    let baseline_shed = mean_of(&worst, "fabric", "Baseline", |r| r.shed_rate);
    let tapas_shed = mean_of(&worst, "fabric", "TAPAS", |r| r.shed_rate);
    println!(
        "{worst_tier} tier, fabric fleet: shed rate {baseline_shed:.4} -> {tapas_shed:.4} (Baseline -> TAPAS)"
    );

    write_json("scenario_sweep", &records);

    if panics > 0 {
        std::process::exit(1);
    }
}
