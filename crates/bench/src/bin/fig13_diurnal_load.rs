//! Fig. 13 — normalized load over four weeks for an example VM and the corresponding row
//! power, both showing a clear diurnal pattern.

use serde::Serialize;
use simkit::time::SimTime;
use tapas_bench::{header, write_json};
use workload::diurnal::DiurnalPattern;
use workload::iaas::IaasLoadModel;
use workload::vm::{IaasCustomerId, Vm, VmId, VmKind};

#[derive(Serialize)]
struct Fig13Output {
    /// (day, normalized load) for one example VM over four weeks.
    vm_load: Vec<(f64, f64)>,
    /// (day, normalized power) for a synthetic row aggregating 40 VMs.
    row_power: Vec<(f64, f64)>,
    peak_to_trough_ratio: f64,
}

fn main() {
    header("Figure 13: diurnal VM load and row power over four weeks");
    let model = IaasLoadModel::new(40, 42);
    let vm = Vm {
        id: VmId(0),
        kind: VmKind::Iaas { customer: IaasCustomerId(3) },
        arrival: SimTime::ZERO,
        lifetime: simkit::time::SimDuration::from_days(60),
    };
    let vm_load: Vec<(f64, f64)> = (0..28 * 24)
        .map(|h| {
            let t = SimTime::from_hours(h);
            (t.as_days(), model.load_at(&vm, t))
        })
        .collect();

    // A row aggregates many VMs from a handful of customers: its power inherits the diurnal
    // pattern but smoother.
    let patterns: Vec<DiurnalPattern> = (0..40)
        .map(|i| DiurnalPattern::interactive(42 + i).with_peak_hour(13.0 + (i % 5) as f64))
        .collect();
    let row_raw: Vec<f64> = (0..28 * 24)
        .map(|h| {
            let t = SimTime::from_hours(h);
            patterns.iter().map(|p| 1.6 + 4.9 * p.load_at(t)).sum::<f64>()
        })
        .collect();
    let row_max = simkit::stats::max(&row_raw).unwrap();
    let row_min = simkit::stats::min(&row_raw).unwrap();
    let row_power: Vec<(f64, f64)> = row_raw
        .iter()
        .enumerate()
        .map(|(h, p)| (h as f64 / 24.0, p / row_max))
        .collect();

    println!("day, vm load, row power (first three days shown)");
    for ((d, load), (_, power)) in vm_load.iter().zip(row_power.iter()).take(72).step_by(3) {
        println!("{d:5.2}, {load:5.2}, {power:5.2}");
    }
    println!("\npaper: both the VM load and the row power show a distinctly periodic diurnal pattern.");

    write_json(
        "fig13_diurnal_load",
        &Fig13Output { vm_load, row_power, peak_to_trough_ratio: row_max / row_min },
    );
}
