//! Fig. 11 — 100 000 random VM placements across two rows: distribution of aisle peak GPU
//! temperature and row peak power, and the (lack of) correlation between them.
//!
//! Quick mode evaluates 2 000 placements; pass `--full` for the paper's 100 000.

use cluster_sim::placement_study::{PlacementSample, PlacementStudy};
use serde::Serialize;
use simkit::stats;
use tapas_bench::{full_scale_requested, header, print_table, write_json};

#[derive(Serialize)]
struct Fig11Output {
    samples_evaluated: usize,
    temp_p50_c: f64,
    temp_p99_c: f64,
    temp_p100_c: f64,
    power_p50_kw: f64,
    power_p99_kw: f64,
    power_p100_kw: f64,
    worst_over_best_power: f64,
    temperature_power_correlation: f64,
    samples: Vec<PlacementSample>,
}

fn main() {
    let full = full_scale_requested();
    header("Figure 11: random VM placements — peak temperature / row power distribution");
    let study = PlacementStudy {
        vm_count: 60,
        samples: if full { 100_000 } else { 2_000 },
        outside_temp_c: 32.0,
        seed: 42,
    };
    let samples = study.run();
    let temps: Vec<f64> = samples.iter().map(|s| s.max_temp_c).collect();
    let powers: Vec<f64> = samples.iter().map(|s| s.peak_row_power_kw).collect();
    let corr = PlacementStudy::temperature_power_correlation(&samples);

    let output = Fig11Output {
        samples_evaluated: samples.len(),
        temp_p50_c: stats::percentile(&temps, 50.0).unwrap(),
        temp_p99_c: stats::percentile(&temps, 99.0).unwrap(),
        temp_p100_c: stats::max(&temps).unwrap(),
        power_p50_kw: stats::percentile(&powers, 50.0).unwrap(),
        power_p99_kw: stats::percentile(&powers, 99.0).unwrap(),
        power_p100_kw: stats::max(&powers).unwrap(),
        worst_over_best_power: stats::max(&powers).unwrap() / stats::min(&powers).unwrap(),
        temperature_power_correlation: corr,
        samples: if full { Vec::new() } else { samples.clone() },
    };

    print_table(
        "Placement distribution",
        &[
            ("placements evaluated".to_string(), format!("{}", output.samples_evaluated)),
            ("peak GPU temperature P50".to_string(), format!("{:.1} °C", output.temp_p50_c)),
            ("peak GPU temperature P99".to_string(), format!("{:.1} °C", output.temp_p99_c)),
            ("peak GPU temperature worst".to_string(), format!("{:.1} °C (paper: worst > 85 °C, typical ≈ 72 °C)", output.temp_p100_c)),
            ("peak row power P50".to_string(), format!("{:.1} kW", output.power_p50_kw)),
            ("peak row power worst/best".to_string(), format!("{:.2}× (paper: worst ≈ +27 % over best)", output.worst_over_best_power)),
            ("temp/power correlation".to_string(), format!("{:.3} (paper: no correlation)", output.temperature_power_correlation)),
        ],
    );

    write_json("fig11_random_placements", &output);
}
