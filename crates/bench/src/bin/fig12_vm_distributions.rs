//! Fig. 12 — VM lifetime CDF (most GPU VMs live for weeks) and the number of VMs per SaaS
//! endpoint (heavy-tailed; half of all VMs belong to endpoints with >100 VMs).

use serde::Serialize;
use simkit::stats::Ecdf;
use tapas_bench::{header, print_table, write_json};
use workload::arrivals::{ArrivalConfig, VmArrivalGenerator};
use workload::endpoints::EndpointCatalog;

#[derive(Serialize)]
struct Fig12Output {
    lifetime_cdf_days: Vec<(f64, f64)>,
    fraction_over_two_weeks: f64,
    endpoint_size_cdf: Vec<(f64, f64)>,
    vm_share_in_large_endpoints: f64,
}

fn main() {
    header("Figure 12: VM lifetimes and VMs per SaaS endpoint");
    let mut generator = VmArrivalGenerator::new(ArrivalConfig::evaluation_week(1000), 42);
    let lifetimes: Vec<f64> = (0..20_000).map(|_| generator.draw_lifetime().as_days()).collect();
    let over_two_weeks =
        lifetimes.iter().filter(|&&d| d >= 14.0).count() as f64 / lifetimes.len() as f64;

    let catalog = EndpointCatalog::production_shaped(400, 10.0, 42);
    let sizes: Vec<f64> = catalog.endpoints().iter().map(|e| e.vm_count as f64).collect();
    let total_vms: f64 = sizes.iter().sum();
    let in_large: f64 = sizes.iter().filter(|&&s| s >= 100.0).sum();

    let output = Fig12Output {
        lifetime_cdf_days: Ecdf::new(&lifetimes).curve(30),
        fraction_over_two_weeks: over_two_weeks,
        endpoint_size_cdf: Ecdf::new(&sizes).curve(30),
        vm_share_in_large_endpoints: in_large / total_vms,
    };

    print_table(
        "Distributions",
        &[
            (
                "VMs living longer than two weeks".to_string(),
                format!("{:.1} % (paper: > 60 %)", output.fraction_over_two_weeks * 100.0),
            ),
            (
                "share of SaaS VMs in endpoints with ≥100 VMs".to_string(),
                format!("{:.1} % (paper: ≈50 %)", output.vm_share_in_large_endpoints * 100.0),
            ),
        ],
    );

    write_json("fig12_vm_distributions", &output);
}
