//! Fig. 19 — large-scale week-long simulation: maximum temperature and peak row power,
//! Baseline vs TAPAS.
//!
//! The paper simulates ≈1000 servers for one week at 5-minute resolution and reports that
//! TAPAS reduces the maximum temperature by ≈15 % and the peak row power by ≈24 % without
//! hurting result quality. The quick mode uses the two-row cluster for two days; pass
//! `--full` for the paper-scale run.

use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use serde::Serialize;
use tapas::policy::Policy;
use tapas_bench::{full_scale_requested, header, percent_change, print_table, write_json};

#[derive(Serialize)]
struct Fig19Output {
    full_scale: bool,
    baseline_peak_temp_c: f64,
    tapas_peak_temp_c: f64,
    temp_reduction_pct: f64,
    baseline_peak_power_kw: f64,
    tapas_peak_power_kw: f64,
    power_reduction_pct: f64,
    baseline_quality: f64,
    tapas_quality: f64,
    baseline_temp_series: Vec<(u64, f64)>,
    tapas_temp_series: Vec<(u64, f64)>,
    baseline_power_series: Vec<(u64, f64)>,
    tapas_power_series: Vec<(u64, f64)>,
}

fn config(policy: Policy, full: bool) -> ExperimentConfig {
    if full {
        ExperimentConfig::production_week(policy)
    } else {
        ExperimentConfig::medium(policy)
    }
}

fn main() {
    let full = full_scale_requested();
    header(&format!(
        "Figure 19: max temperature and peak row power over {} (Baseline vs TAPAS)",
        if full { "1 week, ~1000 servers" } else { "2 days, 80 servers (quick mode)" }
    ));
    let baseline = ClusterSimulator::new(config(Policy::Baseline, full)).run();
    let tapas = ClusterSimulator::new(config(Policy::Tapas, full)).run();

    let temp_reduction =
        percent_change(baseline.peak_temperature_c(), tapas.peak_temperature_c());
    let power_reduction =
        percent_change(baseline.peak_row_power_kw(), tapas.peak_row_power_kw());

    print_table(
        "Week-long simulation",
        &[
            (
                "Baseline max temperature".to_string(),
                format!("{:.1} °C", baseline.peak_temperature_c()),
            ),
            ("TAPAS max temperature".to_string(), format!("{:.1} °C", tapas.peak_temperature_c())),
            (
                "Max temperature reduction".to_string(),
                format!("{temp_reduction:.1} % (paper: ≈ −15 %)"),
            ),
            (
                "Baseline peak row power".to_string(),
                format!("{:.1} kW", baseline.peak_row_power_kw()),
            ),
            ("TAPAS peak row power".to_string(), format!("{:.1} kW", tapas.peak_row_power_kw())),
            (
                "Peak power reduction".to_string(),
                format!("{power_reduction:.1} % (paper: ≈ −24 %)"),
            ),
            ("Baseline mean quality".to_string(), format!("{:.3}", baseline.mean_quality())),
            ("TAPAS mean quality".to_string(), format!("{:.3}", tapas.mean_quality())),
        ],
    );

    let series = |s: &simkit::series::TimeSeries| -> Vec<(u64, f64)> {
        s.iter().map(|(t, v)| (t.as_minutes(), v)).collect()
    };
    write_json(
        "fig19_week_sim",
        &Fig19Output {
            full_scale: full,
            baseline_peak_temp_c: baseline.peak_temperature_c(),
            tapas_peak_temp_c: tapas.peak_temperature_c(),
            temp_reduction_pct: temp_reduction,
            baseline_peak_power_kw: baseline.peak_row_power_kw(),
            tapas_peak_power_kw: tapas.peak_row_power_kw(),
            power_reduction_pct: power_reduction,
            baseline_quality: baseline.mean_quality(),
            tapas_quality: tapas.mean_quality(),
            baseline_temp_series: series(&baseline.max_gpu_temp),
            tapas_temp_series: series(&tapas.max_gpu_temp),
            baseline_power_series: series(&baseline.peak_row_power),
            tapas_power_series: series(&tapas.peak_row_power),
        },
    );
}
