//! Fig. 8 / Fig. 9 — per-GPU temperature heterogeneity: up to ≈10 °C within one server under
//! identical load, a >20 °C range across a datacenter, and cooler even-numbered slots.

use dc_sim::engine::Datacenter;
use dc_sim::ids::GpuId;
use dc_sim::topology::LayoutConfig;
use serde::Serialize;
use simkit::stats::{Ecdf, Summary};
use simkit::units::{Celsius, Watts};
use tapas_bench::{header, print_table, write_json};

#[derive(Serialize)]
struct Fig0809Output {
    per_slot_median_c: Vec<f64>,
    within_server_spread_p99_c: f64,
    datacenter_range_c: f64,
    gpu_temp_cdf: Vec<(f64, f64)>,
}

fn main() {
    header("Figures 8–9: per-GPU temperature heterogeneity at high load");
    let dc = Datacenter::new(LayoutConfig::production_datacenter().build(), 42);
    let inlet = Celsius::new(24.0);
    let power = Watts::new(380.0);

    let mut all_temps = Vec::new();
    let mut per_slot: Vec<Vec<f64>> = vec![Vec::new(); 8];
    let mut spreads = Vec::new();
    for server in dc.layout().servers() {
        let temps: Vec<f64> = (0..8)
            .map(|slot| {
                dc.gpu_model()
                    .temperatures(GpuId::new(server.id, slot), inlet, power, 0.6)
                    .gpu
                    .value()
            })
            .collect();
        for (slot, &t) in temps.iter().enumerate() {
            per_slot[slot].push(t);
            all_temps.push(t);
        }
        spreads.push(
            simkit::stats::max(&temps).unwrap() - simkit::stats::min(&temps).unwrap(),
        );
    }

    let per_slot_median: Vec<f64> = per_slot.iter().map(|v| Summary::from_values(v).p50).collect();
    let output = Fig0809Output {
        per_slot_median_c: per_slot_median.clone(),
        within_server_spread_p99_c: simkit::stats::percentile(&spreads, 99.0).unwrap(),
        datacenter_range_c: simkit::stats::max(&all_temps).unwrap()
            - simkit::stats::min(&all_temps).unwrap(),
        gpu_temp_cdf: Ecdf::new(&all_temps).curve(40),
    };

    let mut rows: Vec<(String, String)> = per_slot_median
        .iter()
        .enumerate()
        .map(|(slot, median)| (format!("GPU{} median", slot + 1), format!("{median:.1} °C")))
        .collect();
    rows.push((
        "P99 within-server spread".to_string(),
        format!("{:.1} °C (paper: up to ≈10 °C)", output.within_server_spread_p99_c),
    ));
    rows.push((
        "datacenter-wide range".to_string(),
        format!("{:.1} °C (paper: > 20 °C)", output.datacenter_range_c),
    ));
    print_table("Per-slot GPU temperature at identical load", &rows);
    println!("\npaper: even-numbered GPUs (closer to the inlet) run cooler than odd-numbered ones.");

    write_json("fig08_09_gpu_heterogeneity", &output);
}
