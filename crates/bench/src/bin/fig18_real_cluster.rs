//! Fig. 18 — real-cluster experiment: peak row power over one hour, Baseline vs TAPAS.
//!
//! The paper emulates two rows of 80 A100 servers for one hour at 1-minute resolution with a
//! 50/50 IaaS/SaaS mix and reports that TAPAS reduces the peak row power utilization by ≈20 %
//! while maintaining latency SLOs and result quality.

use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use serde::Serialize;
use tapas::policy::Policy;
use tapas_bench::{header, percent_change, print_table, write_json};

#[derive(Serialize)]
struct Fig18Output {
    baseline_series_kw: Vec<(u64, f64)>,
    tapas_series_kw: Vec<(u64, f64)>,
    baseline_peak_kw: f64,
    tapas_peak_kw: f64,
    peak_reduction_pct: f64,
    baseline_slo_attainment: f64,
    tapas_slo_attainment: f64,
    tapas_mean_quality: f64,
}

fn main() {
    header("Figure 18: peak row power over 1 hour, Baseline vs TAPAS (real-cluster replay)");
    let baseline = ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Baseline)).run();
    let tapas = ClusterSimulator::new(ExperimentConfig::real_cluster_hour(Policy::Tapas)).run();

    let series = |report: &cluster_sim::metrics::RunReport| -> Vec<(u64, f64)> {
        report
            .peak_row_power
            .iter()
            .map(|(t, v)| (t.as_minutes(), v))
            .collect()
    };
    let reduction = percent_change(baseline.peak_row_power_kw(), tapas.peak_row_power_kw());

    print_table(
        "Peak row power (kW)",
        &[
            ("Baseline peak".to_string(), format!("{:.1}", baseline.peak_row_power_kw())),
            ("TAPAS peak".to_string(), format!("{:.1}", tapas.peak_row_power_kw())),
            ("Peak reduction".to_string(), format!("{reduction:.1} % (paper: ≈ −20 %)")),
            (
                "Baseline SLO attainment".to_string(),
                format!("{:.3}", baseline.slo_attainment()),
            ),
            ("TAPAS SLO attainment".to_string(), format!("{:.3}", tapas.slo_attainment())),
            ("TAPAS mean quality".to_string(), format!("{:.3}", tapas.mean_quality())),
        ],
    );
    println!("\nminute, baseline_kw, tapas_kw");
    for ((m, b), (_, t)) in series(&baseline).iter().zip(series(&tapas).iter()) {
        println!("{m:>4}, {b:8.1}, {t:8.1}");
    }

    write_json(
        "fig18_real_cluster",
        &Fig18Output {
            baseline_series_kw: series(&baseline),
            tapas_series_kw: series(&tapas),
            baseline_peak_kw: baseline.peak_row_power_kw(),
            tapas_peak_kw: tapas.peak_row_power_kw(),
            peak_reduction_pct: reduction,
            baseline_slo_attainment: baseline.slo_attainment(),
            tapas_slo_attainment: tapas.slo_attainment(),
            tapas_mean_quality: tapas.mean_quality(),
        },
    );
}
