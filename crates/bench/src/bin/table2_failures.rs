//! Table 2 — failure management: performance and quality impact of power (75 % capacity) and
//! thermal (90 % capacity) emergencies under the Baseline and TAPAS.

use cluster_sim::emergency::run_table2;
use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::scenario::Scenario;
use cluster_sim::simulator::ClusterSimulator;
use dc_sim::engine::Datacenter;
use dc_sim::topology::LayoutConfig;
use llm_sim::hardware::GpuHardware;
use simkit::time::SimTime;
use tapas::policy::Policy;
use tapas::profiles::ProfileStore;
use tapas_bench::{header, write_json};

fn main() {
    header("Table 2: Baseline vs TAPAS in power and thermal emergencies");
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let table = run_table2(&profiles, 0.5);

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "", "IaaS perf", "SaaS perf", "IaaS qual", "SaaS qual"
    );
    let row = |label: &str, i: &cluster_sim::emergency::EmergencyImpact| {
        println!(
            "{:<22} {:>11.0}% {:>11.0}% {:>11.0}% {:>11.0}%",
            label, i.iaas_perf_pct, i.saas_perf_pct, i.iaas_quality_pct, i.saas_quality_pct
        );
    };
    row("Power/Baseline", &table.power_baseline);
    row("Power/TAPAS", &table.power_tapas);
    row("Thermal/Baseline", &table.thermal_baseline);
    row("Thermal/TAPAS", &table.thermal_tapas);
    println!(
        "\npaper: Baseline caps up to 35 % uniformly; TAPAS keeps IaaS at 0 % and trades ≤12 % (power) / ≤6 % (thermal) SaaS quality."
    );

    // End-to-end drills composed through the scenario presets: each emergency window is
    // injected into a 12-hour run and the capped-time fractions compared per policy.
    let start = SimTime::from_hours(6);
    let end = SimTime::from_hours(9);
    let drills = [
        ("power emergency (hours 6-9)", Scenario::power_emergency(start, end)),
        ("thermal emergency (hours 6-9)", Scenario::thermal_emergency(start, end)),
    ];
    println!("\nEnd-to-end scenario drills (12 h, two rows of 80 servers):");
    for (label, scenario) in drills {
        for policy in [Policy::Baseline, Policy::Tapas] {
            let config = ExperimentConfig::medium(policy)
                .with_duration(SimTime::from_hours(12))
                .with_scenario(scenario.clone());
            let report = ClusterSimulator::new(config).run();
            println!(
                "  {label:<28} {:<10} power-capped {:6.2} %, thermal-capped {:6.2} %, quality {:.3}",
                policy.label(),
                report.power_capped_time_fraction() * 100.0,
                report.thermal_capped_time_fraction() * 100.0,
                report.mean_quality()
            );
        }
    }

    write_json("table2_failures", &table);
}
