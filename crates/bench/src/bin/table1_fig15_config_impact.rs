//! Table 1 / Fig. 15 — impact of each configuration parameter on performance, temperature,
//! power and quality, separately for the prefill and decode phases.
//!
//! The harness profiles the relevant configuration pairs and prints, for each knob, the
//! direction and rough magnitude of the change — the qualitative content of Table 1 and the
//! per-phase bars of Fig. 15.

use llm_sim::config::{FrequencyScale, InstanceConfig, TensorParallelism};
use llm_sim::hardware::GpuHardware;
use llm_sim::model::{ModelSize, ModelVariant, Quantization};
use llm_sim::profile::ConfigProfile;
use serde::Serialize;
use tapas_bench::{header, write_json};

#[derive(Serialize)]
struct KnobImpact {
    knob: String,
    change: String,
    goodput_change_pct: f64,
    prefill_gpu_power_change_pct: f64,
    decode_gpu_power_change_pct: f64,
    prefill_server_power_change_pct: f64,
    decode_server_power_change_pct: f64,
    quality_change_pct: f64,
}

fn pct(old: f64, new: f64) -> f64 {
    (new - old) / old * 100.0
}

fn impact(knob: &str, change: &str, from: &InstanceConfig, to: &InstanceConfig) -> KnobImpact {
    let gpu = GpuHardware::a100();
    let a = ConfigProfile::build(from, &gpu);
    let b = ConfigProfile::build(to, &gpu);
    KnobImpact {
        knob: knob.to_string(),
        change: change.to_string(),
        goodput_change_pct: pct(a.goodput_tokens_per_s, b.goodput_tokens_per_s),
        prefill_gpu_power_change_pct: pct(a.prefill.gpu_power.value(), b.prefill.gpu_power.value()),
        decode_gpu_power_change_pct: pct(a.decode.gpu_power.value(), b.decode.gpu_power.value()),
        prefill_server_power_change_pct: pct(
            a.prefill.server_power.value(),
            b.prefill.server_power.value(),
        ),
        decode_server_power_change_pct: pct(
            a.decode.server_power.value(),
            b.decode.server_power.value(),
        ),
        quality_change_pct: pct(a.quality, b.quality),
    }
}

fn main() {
    header("Table 1 / Figure 15: impact of each configuration parameter (per phase)");
    let base = InstanceConfig::default_70b();

    let mut smaller_model = base;
    smaller_model.variant = ModelVariant::new(ModelSize::Llama2_7B, Quantization::Fp16);
    let mut quantized = base;
    quantized.variant = ModelVariant::new(ModelSize::Llama2_70B, Quantization::Fp8);
    let mut tp2 = base;
    tp2.variant = ModelVariant::new(ModelSize::Llama2_13B, Quantization::Fp16);
    let mut tp2_base = tp2;
    tp2_base.parallelism = TensorParallelism::Tp8;
    tp2.parallelism = TensorParallelism::Tp2;
    let mut low_freq = base;
    low_freq.frequency = FrequencyScale::new(0.55);
    let mut small_batch = base;
    small_batch.max_batch_size = 16;

    let rows = vec![
        impact("Model size", "70B -> 7B", &base, &smaller_model),
        impact("Quantization", "FP16 -> FP8", &base, &quantized),
        impact("Parallelism", "TP8 -> TP2 (13B)", &tp2_base, &tp2),
        impact("Frequency", "100% -> 55%", &base, &low_freq),
        impact("Batch size", "64 -> 16", &base, &small_batch),
    ];

    println!(
        "{:<14} {:<18} {:>9} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "knob", "change", "goodput%", "prefill GPU%", "decode GPU%", "prefill srv%", "decode srv%", "quality%"
    );
    for r in &rows {
        println!(
            "{:<14} {:<18} {:>9.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.1}",
            r.knob,
            r.change,
            r.goodput_change_pct,
            r.prefill_gpu_power_change_pct,
            r.decode_gpu_power_change_pct,
            r.prefill_server_power_change_pct,
            r.decode_server_power_change_pct,
            r.quality_change_pct
        );
    }
    println!("\npaper (Table 1): smaller model ↑perf ↓temp ↓power ↓↓quality; FP8 ↑perf ↓temp ↓power ↓quality;");
    println!("TP2 ↓perf ↑hottest-GPU-temp ↓server-power; lower frequency ↓perf ↓temp ↓power; smaller batch ↓perf ↓temp ↓power.");

    write_json("table1_fig15_config_impact", &rows);
}
