//! Fig. 14 — CDF of the row- and customer-based power prediction error with P50/P90/P99
//! templates; row prediction is within 10 % for most row-hours and the conservative P99
//! template rarely under-predicts.

use serde::Serialize;
use simkit::rng::SimRng;
use simkit::stats::Ecdf;
use simkit::time::SimTime;
use tapas_bench::{header, print_table, write_json};
use workload::diurnal::DiurnalPattern;
use workload::prediction::{PowerTemplate, TemplateKind};

#[derive(Serialize)]
struct Fig14Output {
    row_error_cdf: Vec<(f64, f64)>,
    row_within_10pct: f64,
    p99_underprediction_fraction: f64,
    customer_error_cdf_p50: Vec<(f64, f64)>,
    customer_underprediction_p90: f64,
    customer_underprediction_p99: f64,
}

/// One week of `(time, value)` samples.
type WeekSeries = Vec<(SimTime, f64)>;

/// Synthesizes a two-week signal: an aggregate "row" (many VMs, low relative noise) or a
/// single "customer" (one VM, higher relative noise).
fn two_weeks(vms: usize, seed: u64) -> (WeekSeries, WeekSeries) {
    let patterns: Vec<DiurnalPattern> = (0..vms)
        .map(|i| DiurnalPattern::interactive(seed + i as u64).with_peak_hour(12.0 + (i % 6) as f64))
        .collect();
    let mut rng = SimRng::seed_from(seed).derive("fig14");
    let sample = |minute: u64, rng: &mut SimRng| {
        let t = SimTime::from_minutes(minute);
        let base: f64 = patterns.iter().map(|p| 1.6 + 4.9 * p.load_at(t)).sum();
        (t, base + rng.normal(0.0, 0.05 * base))
    };
    let week1 = (0..7 * 1440).step_by(10).map(|m| sample(m, &mut rng)).collect();
    let week2 = (7 * 1440..14 * 1440).step_by(10).map(|m| sample(m, &mut rng)).collect();
    (week1, week2)
}

fn main() {
    header("Figure 14: power prediction error CDFs (row- and customer-based templates)");

    // Row-based: aggregate of 40 VMs, P50 template (Fig. 14a).
    let (row_history, row_future) = two_weeks(40, 1);
    let row_template = PowerTemplate::fit(TemplateKind::P50, &row_history);
    let row_errors = row_template.percentage_errors(&row_future);
    let row_within_10 =
        row_errors.iter().filter(|e| e.abs() <= 10.0).count() as f64 / row_errors.len() as f64;
    let p99_template = PowerTemplate::fit(TemplateKind::P99, &row_history);
    let p99_under = p99_template.underprediction_fraction(&row_future);

    // Customer-based: a single VM, templates P50/P90/P99 (Fig. 14b).
    let (customer_history, customer_future) = two_weeks(1, 2);
    let c_p50 = PowerTemplate::fit(TemplateKind::P50, &customer_history);
    let c_p90 = PowerTemplate::fit(TemplateKind::P90, &customer_history);
    let c_p99 = PowerTemplate::fit(TemplateKind::P99, &customer_history);

    let output = Fig14Output {
        row_error_cdf: Ecdf::new(&row_errors).curve(30),
        row_within_10pct: row_within_10,
        p99_underprediction_fraction: p99_under,
        customer_error_cdf_p50: Ecdf::new(&c_p50.percentage_errors(&customer_future)).curve(30),
        customer_underprediction_p90: c_p90.underprediction_fraction(&customer_future),
        customer_underprediction_p99: c_p99.underprediction_fraction(&customer_future),
    };

    print_table(
        "Prediction quality",
        &[
            (
                "row-hours within ±10 % (P50 template)".to_string(),
                format!("{:.1} % (paper: most row-hours)", output.row_within_10pct * 100.0),
            ),
            (
                "row-hours under-predicted by the P99 template".to_string(),
                format!("{:.1} % (paper: < 4 %)", output.p99_underprediction_fraction * 100.0),
            ),
            (
                "customer-hours under-predicted (P90 / P99)".to_string(),
                format!(
                    "{:.1} % / {:.1} % (paper: 2–7 %)",
                    output.customer_underprediction_p90 * 100.0,
                    output.customer_underprediction_p99 * 100.0
                ),
            ),
        ],
    );

    write_json("fig14_prediction_error", &output);
}
