//! Automated bench snapshot capture for `BENCH_router.json`.
//!
//! Runs the criterion benches N times (best-of-N: the reference container shares one
//! vCPU, so any single run can be inflated by a noisy neighbour), merges the per-bench
//! best mins/medians, and either records them as a named section of `BENCH_router.json`
//! or soft-checks them against a recorded section (print warnings, always exit 0 — the
//! CI perf-regression check must not turn container noise into red builds).
//!
//! ```text
//! # record a section (the PR-capture workflow, previously hand-rolled):
//! cargo run --release -p tapas-bench --bin bench_snapshot -- \
//!     --section post_soa_physics --runs 3 --note "measured after the SoA kernels"
//!
//! # CI soft check against the recorded section (warn-only):
//! cargo run --release -p tapas-bench --bin bench_snapshot -- \
//!     --check --against post_soa_physics --runs 1 --benches end_to_end,hierarchy \
//!     --tolerance 3.0
//! ```

use serde::Value;
use std::path::PathBuf;
use std::process::Command;
use tapas_bench::snapshot::{
    compare_against, merge_best, parse_criterion_out, section_value, upsert_section,
    BenchResult,
};

const DEFAULT_BENCHES: &str = "router,end_to_end,hierarchy,fleet,scenario,request_fabric";

struct Args {
    section: String,
    runs: usize,
    benches: Vec<String>,
    out: PathBuf,
    check: bool,
    against: Option<String>,
    tolerance: f64,
    note: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        section: String::from("snapshot"),
        runs: 3,
        benches: DEFAULT_BENCHES.split(',').map(str::to_string).collect(),
        out: tapas_bench::workspace_root().join("BENCH_router.json"),
        check: false,
        against: None,
        tolerance: 3.0,
        note: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--section" => args.section = value("--section")?,
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--benches" => {
                args.benches = value("--benches")?
                    .split(',')
                    .filter(|b| !b.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = true,
            "--against" => args.against = Some(value("--against")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--note" => args.note = Some(value("--note")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.runs == 0 {
        return Err(String::from("--runs must be at least 1"));
    }
    Ok(args)
}

/// Runs one bench target with `CRITERION_OUT` pointed at `out_file`.
fn run_bench(bench: &str, out_file: &PathBuf) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| String::from("cargo"));
    let status = Command::new(cargo)
        .args(["bench", "-p", "tapas-bench", "--bench", bench])
        .env("CRITERION_OUT", out_file)
        .status()
        .map_err(|e| format!("failed to spawn cargo bench --bench {bench}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("cargo bench --bench {bench} failed with {status}"))
    }
}

fn measure(args: &Args) -> Result<Vec<BenchResult>, String> {
    let mut runs = Vec::with_capacity(args.runs);
    for run in 0..args.runs {
        let out_file = std::env::temp_dir()
            .join(format!("criterion-out-{}-{run}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&out_file);
        for bench in &args.benches {
            run_bench(bench, &out_file)?;
        }
        let contents = std::fs::read_to_string(&out_file)
            .map_err(|e| format!("no criterion output at {}: {e}", out_file.display()))?;
        let results = parse_criterion_out(&contents);
        if results.is_empty() {
            return Err(format!("run {run} produced no parseable results"));
        }
        println!("[bench_snapshot] run {}/{}: {} results", run + 1, args.runs, results.len());
        runs.push(results);
        let _ = std::fs::remove_file(&out_file);
    }
    Ok(merge_best(&runs))
}

fn report(merged: &[BenchResult]) {
    for result in merged {
        println!(
            "[bench_snapshot] {:<44} min {:>12.1} ns   median {:>12.1} ns",
            result.name, result.min_ns, result.median_ns
        );
    }
}

fn load_document(path: &PathBuf) -> Result<Value, String> {
    let contents = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&contents).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_snapshot: {message}");
            std::process::exit(2);
        }
    };
    // Resolve the baseline document (and, in check mode, the recorded section) *before*
    // spending minutes on the timed bench runs, so a misspelled section or a missing
    // baseline file fails in milliseconds instead of after the full suite.
    if args.check {
        // Soft perf-regression check: compare best-of-N mins against the recorded mins
        // with a generous tolerance. Warn-only — exit 0 regardless — because the shared
        // reference box is too noisy for a hard gate; the output is for humans reading
        // the CI log.
        let section_name = args.against.as_deref().unwrap_or(&args.section);
        let recorded = match load_document(&args.out)
            .and_then(|doc| doc.get(section_name).cloned().map_err(|e| e.to_string()))
        {
            Ok(recorded) => recorded,
            Err(message) => {
                println!("::warning::bench_snapshot check skipped: {message}");
                return;
            }
        };
        let merged = match measure(&args) {
            Ok(merged) => merged,
            Err(message) => {
                // Warn-only all the way down: a transient bench failure on the shared
                // box must not turn the soft check into a red build.
                println!("::warning::bench_snapshot check skipped: {message}");
                return;
            }
        };
        report(&merged);
        let regressions = compare_against(&recorded, &merged, args.tolerance);
        if regressions.is_empty() {
            println!(
                "[bench_snapshot] no regressions beyond {:.1}x vs `{section_name}`",
                args.tolerance
            );
        } else {
            for r in &regressions {
                println!(
                    "::warning::bench `{}` is {:.2}x the recorded min \
                     ({:.1} ns vs {:.1} ns in `{section_name}`)",
                    r.name, r.ratio, r.current_min_ns, r.recorded_min_ns
                );
            }
        }
        return;
    }

    // A missing baseline file bootstraps from an empty document (the tool maintains the
    // file, so it must be able to create it); an unparseable one is still a hard error —
    // silently clobbering a corrupted baseline would destroy the recorded history.
    let mut document = if args.out.exists() {
        match load_document(&args.out) {
            Ok(document) => document,
            Err(message) => {
                eprintln!("bench_snapshot: {message}");
                std::process::exit(1);
            }
        }
    } else {
        Value::Map(Vec::new())
    };
    let merged = match measure(&args) {
        Ok(merged) => merged,
        Err(message) => {
            eprintln!("bench_snapshot: {message}");
            std::process::exit(1);
        }
    };
    report(&merged);
    let section = section_value(&merged, args.note.as_deref());
    if let Err(message) = upsert_section(&mut document, &args.section, section) {
        eprintln!("bench_snapshot: {message}");
        std::process::exit(1);
    }
    let json = match serde_json::to_string_pretty(&document) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("bench_snapshot: cannot serialize document: {err}");
            std::process::exit(1);
        }
    };
    if let Err(err) = std::fs::write(&args.out, json + "\n") {
        eprintln!("bench_snapshot: cannot write {}: {err}", args.out.display());
        std::process::exit(1);
    }
    println!(
        "[bench_snapshot] recorded section `{}` ({} benches, best of {} runs) in {}",
        args.section,
        merged.len(),
        args.runs,
        args.out.display()
    );
}
