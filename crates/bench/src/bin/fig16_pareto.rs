//! Fig. 16 — normalized temperature and power (lower is better) versus goodput (higher is
//! better) for every profiled configuration, highlighting the per-model Pareto frontiers.

use llm_sim::hardware::GpuHardware;
use llm_sim::model::ModelSize;
use llm_sim::pareto::ParetoFrontier;
use llm_sim::profile::ConfigProfile;
use serde::Serialize;
use tapas_bench::{header, write_json};

#[derive(Serialize)]
struct ParetoRow {
    model: String,
    config: String,
    norm_goodput: f64,
    norm_temp_proxy: f64,
    norm_power: f64,
    quality: f64,
    on_frontier: bool,
}

fn main() {
    header("Figure 16: normalized temperature/power vs goodput with per-model Pareto frontiers");
    let gpu = GpuHardware::a100();
    let profiles = ConfigProfile::sweep(&gpu);
    let max_goodput = profiles
        .iter()
        .map(|p| p.goodput_tokens_per_s)
        .fold(0.0, f64::max);
    let max_gpu_power = profiles
        .iter()
        .map(|p| p.prefill.gpu_power.value().max(p.decode.gpu_power.value()))
        .fold(0.0, f64::max);
    let max_server_power = profiles
        .iter()
        .map(|p| p.blended_server_power(0.7).value())
        .fold(0.0, f64::max);

    let mut rows = Vec::new();
    for size in ModelSize::ALL {
        let frontier = ParetoFrontier::for_model(&profiles, size);
        for p in profiles.iter().filter(|p| p.config.variant.size == size) {
            let on_frontier = frontier
                .points()
                .iter()
                .any(|f| f.profile.config == p.config);
            rows.push(ParetoRow {
                model: size.to_string(),
                config: p.config.to_string(),
                norm_goodput: p.goodput_tokens_per_s / max_goodput,
                norm_temp_proxy: p.prefill.gpu_power.value().max(p.decode.gpu_power.value())
                    / max_gpu_power,
                norm_power: p.blended_server_power(0.7).value() / max_server_power,
                quality: p.quality,
                on_frontier,
            });
        }
        let frontier_points = rows.iter().filter(|r| r.model == size.to_string() && r.on_frontier).count();
        println!(
            "{size}: {} configurations profiled, {frontier_points} on the Pareto frontier",
            rows.iter().filter(|r| r.model == size.to_string()).count()
        );
    }

    println!("\n{:<12} {:>12} {:>12} {:>12} {:>9}  frontier", "model", "norm.goodput", "norm.temp", "norm.power", "quality");
    for r in rows.iter().filter(|r| r.on_frontier) {
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>9.3}  {}",
            r.model, r.norm_goodput, r.norm_temp_proxy, r.norm_power, r.quality, r.config
        );
    }
    println!("\npaper: each model size has its own frontier; smaller models extend to higher goodput at lower temperature/power but lower quality.");

    write_json("fig16_pareto", &rows);
}
