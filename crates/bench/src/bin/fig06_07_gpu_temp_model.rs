//! Fig. 6 / Fig. 7 — GPU and GPU-memory temperature alongside inlet temperature and GPU
//! power, and the linear regression of GPU temperature on inlet temperature and power
//! (mean absolute error below 1 °C).

use dc_sim::engine::Datacenter;
use dc_sim::ids::{GpuId, ServerId};
use dc_sim::topology::LayoutConfig;
use llm_sim::hardware::GpuHardware;
use serde::Serialize;
use simkit::units::{Celsius, Watts};
use tapas::profiles::ProfileStore;
use tapas_bench::{header, print_table, write_json};

#[derive(Serialize)]
struct Fig0607Output {
    /// (gpu power W, inlet °C, gpu °C, mem °C) samples.
    samples: Vec<(f64, f64, f64, f64)>,
    regression_mae_c: f64,
}

fn main() {
    header("Figures 6–7: GPU/memory temperature vs inlet temperature and GPU power");
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let profiles = ProfileStore::offline_profiling(&dc, &GpuHardware::a100());
    let server = ServerId::new(5);
    let gpu = GpuId::new(server, 1);

    let mut samples = Vec::new();
    let mut errors = Vec::new();
    for inlet in [18.0, 22.0, 26.0, 30.0] {
        for power in [60.0, 200.0, 300.0, 400.0, 500.0, 600.0] {
            let temps = dc.gpu_model().temperatures(
                gpu,
                Celsius::new(inlet),
                Watts::new(power),
                0.6,
            );
            samples.push((power, inlet, temps.gpu.value(), temps.memory.value()));
            // Fitted model error against the worst GPU of the server (the paper's regression
            // achieves < 1 °C MAE).
            let worst = (0..8)
                .map(|slot| {
                    dc.gpu_model()
                        .temperatures(GpuId::new(server, slot), Celsius::new(inlet), Watts::new(power), 0.6)
                        .gpu
                        .value()
                })
                .fold(f64::MIN, f64::max);
            let predicted = profiles
                .server(server)
                .predicted_worst_gpu_temp(Celsius::new(inlet), Watts::new(power))
                .value();
            errors.push((worst - predicted).abs());
        }
    }
    let mae = simkit::stats::mean(&errors).unwrap();

    println!("power W, inlet °C, GPU °C, mem °C");
    for (p, i, g, m) in &samples {
        println!("{p:7.0}, {i:7.1}, {g:6.1}, {m:6.1}");
    }
    print_table(
        "Regression quality",
        &[(
            "fitted Eq. 2 mean absolute error".to_string(),
            format!("{mae:.2} °C (paper: < 1 °C)"),
        )],
    );

    write_json("fig06_07_gpu_temp_model", &Fig0607Output { samples, regression_mae_c: mae });
}
