//! Fig. 21 — oversubscription sweep: fraction of time under thermal/power capping as racks
//! are added without adding cooling or power capacity.
//!
//! The paper finds the Baseline starts capping heavily beyond ≈20 % oversubscription while
//! TAPAS keeps capping below 0.7 % of the time up to ≈40 %, enabling ≈40 % more capacity on
//! the same infrastructure.

use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::oversubscription::{sweep, OversubscriptionPoint};
use serde::Serialize;
use tapas::policy::Policy;
use tapas_bench::{full_scale_requested, header, write_json};

#[derive(Serialize)]
struct Fig21Output {
    baseline: Vec<OversubscriptionPoint>,
    tapas: Vec<OversubscriptionPoint>,
}

fn main() {
    let full = full_scale_requested();
    header("Figure 21: time under thermal/power capping vs oversubscription level");
    let base = if full {
        ExperimentConfig::production_week(Policy::Baseline)
    } else {
        ExperimentConfig::medium(Policy::Baseline)
    };
    let levels = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let baseline = sweep(&base, Policy::Baseline, &levels);
    let tapas = sweep(&base, Policy::Tapas, &levels);

    println!(
        "{:>8} {:>18} {:>18} {:>18} {:>18}",
        "extra%", "base thermal%", "base power%", "tapas thermal%", "tapas power%"
    );
    for (b, t) in baseline.iter().zip(tapas.iter()) {
        println!(
            "{:>8.0} {:>18.3} {:>18.3} {:>18.3} {:>18.3}",
            b.oversubscription * 100.0,
            b.thermal_capped_fraction * 100.0,
            b.power_capped_fraction * 100.0,
            t.thermal_capped_fraction * 100.0,
            t.power_capped_fraction * 100.0
        );
    }
    println!("\npaper: Baseline capping grows quickly beyond 20 %; TAPAS stays below 0.7 % up to 40 %.");

    write_json("fig21_oversubscription", &Fig21Output { baseline, tapas });
}
