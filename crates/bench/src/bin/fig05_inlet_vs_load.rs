//! Fig. 5 — inlet temperature as a function of datacenter load and outside temperature.

use dc_sim::engine::Datacenter;
use dc_sim::ids::ServerId;
use dc_sim::topology::LayoutConfig;
use serde::Serialize;
use simkit::units::Celsius;
use tapas_bench::{header, print_series, write_json};

#[derive(Serialize)]
struct Fig05Output {
    /// (outside °C, inlet °C) series per datacenter load level.
    by_load: Vec<(f64, Vec<(f64, f64)>)>,
    /// Inlet increase (°C) from idle to full load at 35 °C outside.
    load_delta_at_35c: f64,
}

fn main() {
    header("Figure 5: inlet temperature vs datacenter load and outside temperature");
    let dc = Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42);
    let server = ServerId::new(10);

    let mut by_load = Vec::new();
    for load in [0.0, 0.5, 1.0] {
        let series: Vec<(f64, f64)> = (10..=40)
            .step_by(5)
            .map(|t| {
                let outside = Celsius::new(f64::from(t));
                (f64::from(t), dc.inlet_model().inlet_temp(server, outside, load, 0.0).value())
            })
            .collect();
        print_series(&format!("load {:.0} %", load * 100.0), &series);
        by_load.push((load, series));
    }
    let idle = dc.inlet_model().inlet_temp(server, Celsius::new(35.0), 0.0, 0.0).value();
    let busy = dc.inlet_model().inlet_temp(server, Celsius::new(35.0), 1.0, 0.0).value();
    println!(
        "\nAt 35 °C outside the inlet rises {:.1} °C from idle to full load (paper: ≈2 °C).",
        busy - idle
    );

    write_json("fig05_inlet_vs_load", &Fig05Output { by_load, load_delta_at_35c: busy - idle });
}
