//! Fig. 4 — inlet temperature distribution across physical entities: rows, racks within a
//! row, and height within a rack.

use dc_sim::engine::Datacenter;
use dc_sim::topology::LayoutConfig;
use serde::Serialize;
use simkit::stats::Summary;
use simkit::units::Celsius;
use std::collections::BTreeMap;
use tapas_bench::{header, print_table, write_json};

#[derive(Serialize)]
struct GroupStat {
    group: String,
    median_inlet_c: f64,
    spread_c: f64,
}

fn main() {
    header("Figure 4: inlet temperature by row, rack position within row, and height in rack");
    let dc = Datacenter::new(LayoutConfig::production_datacenter().build(), 42);
    let outside = Celsius::new(28.0);

    let inlet = |server: dc_sim::ids::ServerId| {
        dc.inlet_model().inlet_temp(server, outside, 0.6, 0.0).value()
    };

    let mut by_row: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut by_rack_pos: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut by_height: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for server in dc.layout().servers() {
        by_row.entry(server.row.index()).or_default().push(inlet(server.id));
        by_rack_pos
            .entry(server.rack_position_in_row)
            .or_default()
            .push(inlet(server.id));
        by_height.entry(server.height_in_rack).or_default().push(inlet(server.id));
    }

    let mut stats = Vec::new();
    let mut table = Vec::new();
    let mut summarize = |label: &str, groups: &BTreeMap<usize, Vec<f64>>| {
        let medians: Vec<f64> = groups
            .values()
            .map(|v| Summary::from_values(v).p50)
            .collect();
        let spread = simkit::stats::max(&medians).unwrap() - simkit::stats::min(&medians).unwrap();
        table.push((format!("{label} median spread"), format!("{spread:.2} °C")));
        for (k, v) in groups {
            stats.push(GroupStat {
                group: format!("{label}-{k}"),
                median_inlet_c: Summary::from_values(v).p50,
                spread_c: spread,
            });
        }
    };
    summarize("row", &by_row);
    summarize("rack-position", &by_rack_pos);
    summarize("height", &by_height);

    print_table("Median inlet spread per grouping", &table);
    println!("\npaper: rows differ by up to ≈1 °C, racks within a row by up to ≈2 °C, height has a minor impact.");

    write_json("fig04_spatial_heterogeneity", &stats);
}
