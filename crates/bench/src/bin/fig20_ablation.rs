//! Fig. 20 — ablation: normalized maximum temperature and peak power for every policy
//! (Baseline, Place, Route, Config, pairwise combinations, TAPAS) across IaaS/SaaS mixes.
//!
//! The paper reports that at the 50/50 mix each individual mechanism cuts temperature and
//! power by up to ≈12 %, pairwise combinations do better, and full TAPAS achieves the largest
//! reductions (≈17 % temperature, ≈23 % power); with an all-SaaS mix the reductions grow to
//! ≈23 % / ≈28 %, while an all-IaaS mix limits TAPAS to its placement mechanism.

use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use serde::Serialize;
use tapas::policy::Policy;
use tapas_bench::{full_scale_requested, header, write_json};

#[derive(Serialize)]
struct AblationCell {
    policy: String,
    saas_fraction: f64,
    normalized_max_temp: f64,
    normalized_peak_power: f64,
    mean_quality: f64,
    slo_attainment: f64,
}

fn main() {
    let full = full_scale_requested();
    header("Figure 20: policy ablation across SaaS/IaaS mixes (normalized to provisioning)");
    let mixes = [1.0, 0.75, 0.5, 0.25, 0.0];
    let mut cells = Vec::new();

    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>9} {:>9}",
        "policy", "saas%", "norm.temp", "norm.power", "quality", "slo"
    );
    for &mix in &mixes {
        for policy in Policy::ALL {
            let base = if full {
                ExperimentConfig::production_week(policy)
            } else {
                ExperimentConfig::medium(policy)
            };
            let report = ClusterSimulator::new(base.with_saas_fraction(mix)).run();
            let cell = AblationCell {
                policy: policy.label().to_string(),
                saas_fraction: mix,
                normalized_max_temp: report.normalized_peak_temperature(),
                normalized_peak_power: report.normalized_peak_power(),
                mean_quality: report.mean_quality(),
                slo_attainment: report.slo_attainment(),
            };
            println!(
                "{:<14} {:>6.0} {:>12.3} {:>12.3} {:>9.3} {:>9.3}",
                cell.policy,
                mix * 100.0,
                cell.normalized_max_temp,
                cell.normalized_peak_power,
                cell.mean_quality,
                cell.slo_attainment
            );
            cells.push(cell);
        }
        println!();
    }

    // Headline comparison at the 50/50 mix.
    let at = |policy: &str, mix: f64| {
        cells
            .iter()
            .find(|c| c.policy == policy && (c.saas_fraction - mix).abs() < 1e-9)
            .expect("cell present")
    };
    let baseline = at("Baseline", 0.5);
    let tapas = at("TAPAS", 0.5);
    println!(
        "50/50 mix: TAPAS vs Baseline — temperature {:.1} % (paper ≈ −17 %), power {:.1} % (paper ≈ −23 %)",
        (tapas.normalized_max_temp / baseline.normalized_max_temp - 1.0) * 100.0,
        (tapas.normalized_peak_power / baseline.normalized_peak_power - 1.0) * 100.0
    );

    write_json("fig20_ablation", &cells);
}
