//! Fig. 10 — row power utilization over a week for sample rows, and the heavy-tailed P50/P99
//! distribution of row power across the datacenter.

use cluster_sim::experiment::ExperimentConfig;
use cluster_sim::simulator::ClusterSimulator;
use dc_sim::engine::{Datacenter, StepInput};
use dc_sim::topology::LayoutConfig;
use dc_sim::weather::{Climate, WeatherModel};
use serde::Serialize;
use simkit::time::SimTime;
use simkit::units::Celsius;
use tapas::policy::Policy;
use tapas_bench::{full_scale_requested, header, print_table, write_json};
use workload::arrivals::{ArrivalConfig, VmArrivalGenerator};
use workload::endpoints::EndpointCatalog;
use workload::iaas::IaasLoadModel;

#[derive(Serialize)]
struct Fig10Output {
    /// Per-row P99 power utilization (fraction of the hottest row's P99).
    row_p99_normalized: Vec<f64>,
    /// How much less P99 power the median row draws than the most power-hungry row.
    p50_row_vs_max_pct: f64,
    /// Sample timeline (hour, utilization) for the hottest row.
    hottest_row_timeline: Vec<(f64, f64)>,
}

fn main() {
    header("Figure 10: row power utilization timeline and cross-row distribution");
    // Build an IaaS-only population placed obliviously (the characterization predates TAPAS),
    // then replay two days of diurnal load and record per-row power.
    let layout = LayoutConfig::production_datacenter().build();
    let dc = Datacenter::new(layout, 42);
    let catalog = EndpointCatalog::evaluation(4, 10.0, 42);
    let mut arrivals = ArrivalConfig::evaluation_week(dc.layout().server_count());
    arrivals.saas_fraction = 0.0;
    arrivals.initial_population = dc.layout().server_count() * 9 / 10;
    let mut generator = VmArrivalGenerator::new(arrivals, 42);
    let population = generator.initial_population(&catalog);
    let iaas = IaasLoadModel::new(40, 42);
    let mut weather = WeatherModel::new(Climate::hot(), 42);

    let hours = if full_scale_requested() { 7 * 24 } else { 48 };
    let mut per_row_power: Vec<Vec<f64>> = vec![Vec::new(); dc.layout().rows().len()];
    for h in 0..hours {
        let now = SimTime::from_hours(h);
        let outside = weather.outside_temp(now);
        let mut input = StepInput::idle(dc.layout(), Celsius::new(outside.value()));
        for (i, vm) in population.iter().enumerate() {
            if i >= dc.layout().server_count() {
                break;
            }
            let load = iaas.load_at(vm, now);
            input.activity.set_uniform(i, load);
        }
        let outcome = dc.evaluate(&input);
        for (row, power) in outcome.row_power() {
            per_row_power[row.index()].push(power.value());
        }
    }

    let p99s: Vec<f64> = per_row_power
        .iter()
        .map(|v| simkit::stats::percentile(v, 99.0).unwrap_or(0.0))
        .collect();
    let max_p99 = simkit::stats::max(&p99s).unwrap();
    let p50_of_p99 = simkit::stats::percentile(&p99s, 50.0).unwrap();
    let hottest_row = p99s
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();

    let output = Fig10Output {
        row_p99_normalized: p99s.iter().map(|p| p / max_p99).collect(),
        p50_row_vs_max_pct: (1.0 - p50_of_p99 / max_p99) * 100.0,
        hottest_row_timeline: per_row_power[hottest_row]
            .iter()
            .enumerate()
            .map(|(h, p)| (h as f64, p / max_p99))
            .collect(),
    };

    print_table(
        "Cross-row P99 power",
        &[
            ("rows measured".to_string(), format!("{}", p99s.len())),
            (
                "median row draws less P99 power than the hottest row by".to_string(),
                format!("{:.1} % (paper: ≈28 % for 50 % of rows)", output.p50_row_vs_max_pct),
            ),
        ],
    );

    // A placed-workload comparison also exists through the full simulator; run a short one to
    // show the same periodicity under a 50/50 mix.
    let report = ClusterSimulator::new(ExperimentConfig::small_smoke_test()).run();
    let _ = Policy::Baseline;
    println!(
        "smoke-test cluster peak row power for reference: {:.1} kW",
        report.peak_row_power_kw()
    );

    write_json("fig10_row_power", &output);
}
