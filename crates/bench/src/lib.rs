//! # tapas-bench — harnesses that regenerate the paper's tables and figures
//!
//! Every table and figure of the TAPAS evaluation (and the characterization figures its
//! insights are built on) has a binary in `src/bin/` that regenerates the corresponding data
//! series and prints it in a readable tabular form, plus machine-readable JSON under
//! `results/` (created next to the workspace root when writable).
//!
//! Binaries accept an optional `--full` flag: by default they run a *quick* configuration
//! (smaller cluster / shorter horizon) sized so the whole suite completes in minutes on a
//! laptop; `--full` switches to the paper-scale configuration (≈1000 servers, one week).
//!
//! The Criterion benches in `benches/` measure the controller overheads (allocator, router,
//! configurator, thermal/power model evaluation) rather than end-to-end experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod snapshot;

use serde::Serialize;
use std::path::PathBuf;

/// Returns `true` when the binary was invoked with `--full` (paper-scale run).
#[must_use]
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Prints a section header so the console output of a harness reads like the paper's figure.
pub fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Prints one labelled row of `(x, y)` pairs as a compact series.
pub fn print_series(label: &str, points: &[(f64, f64)]) {
    print!("{label:<28}");
    for (x, y) in points {
        print!(" ({x:.1}, {y:.3})");
    }
    println!();
}

/// Prints a two-column table.
pub fn print_table(title: &str, rows: &[(String, String)]) {
    println!("\n{title}");
    for (k, v) in rows {
        println!("  {k:<44} {v}");
    }
}

/// The workspace root (the nearest ancestor whose `Cargo.toml` declares `[workspace]`).
/// Falls back to the current directory if none is found.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = dir.clone();
    for _ in 0..5 {
        let manifest = probe.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return probe;
            }
        }
        if !probe.pop() {
            break;
        }
    }
    dir
}

/// Where JSON results are written (`<workspace>/results/`). Falls back to the current
/// directory if the workspace root cannot be located.
#[must_use]
pub fn results_dir() -> PathBuf {
    workspace_root().join("results")
}

/// Serializes `value` to `results/<name>.json`. Failures are reported but not fatal, so the
/// harnesses still work on read-only checkouts.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("note: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("note: could not write {}: {err}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(err) => eprintln!("note: could not serialize {name}: {err}"),
    }
}

/// Relative change `(new − old) / old`, in percent.
#[must_use]
pub fn percent_change(old: f64, new: f64) -> f64 {
    if old.abs() < f64::EPSILON {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_change_basics() {
        assert!((percent_change(100.0, 80.0) + 20.0).abs() < 1e-12);
        assert!((percent_change(50.0, 75.0) - 50.0).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 10.0), 0.0);
    }

    #[test]
    fn results_dir_ends_with_results() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn printing_helpers_do_not_panic() {
        header("test");
        print_series("series", &[(1.0, 2.0), (3.0, 4.0)]);
        print_table("table", &[("k".to_string(), "v".to_string())]);
    }
}
