//! Bench snapshot tooling: parse `CRITERION_OUT` result lines, merge best-of-N runs, and
//! maintain the `BENCH_router.json` baseline document.
//!
//! The vendored criterion harness appends one JSON line per benchmark to the file named
//! by the `CRITERION_OUT` environment variable. The `bench_snapshot` binary drives the
//! benches N times, merges each benchmark's best (smallest) min/median across runs —
//! best-of-N is the right estimator on the shared 1-vCPU reference box, where any single
//! run can be inflated by a noisy neighbour — and records the result as a named section
//! of `BENCH_router.json`, or compares it against a recorded section (the CI soft
//! perf-regression check: warn, don't fail).

use serde::Value;

/// One benchmark's measurement (per-iteration nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name as criterion reports it (group benches are `group/name`).
    pub name: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
}

/// Parses the JSON lines a `CRITERION_OUT` run appended. Unparseable lines are skipped
/// (the file only ever receives criterion's own output, but a crashed run can truncate).
#[must_use]
pub fn parse_criterion_out(contents: &str) -> Vec<BenchResult> {
    contents
        .lines()
        .filter_map(|line| {
            let value: Value = serde_json::from_str(line.trim()).ok()?;
            Some(BenchResult {
                name: String::from_value(value.get("name").ok()?).ok()?,
                min_ns: f64::from_value(value.get("min_ns").ok()?).ok()?,
                median_ns: f64::from_value(value.get("median_ns").ok()?).ok()?,
            })
        })
        .collect()
}

/// Merges several runs' results into one best-of-N list: per benchmark name (first-seen
/// order), the smallest `min_ns` and the smallest `median_ns` across runs.
#[must_use]
pub fn merge_best(runs: &[Vec<BenchResult>]) -> Vec<BenchResult> {
    let mut merged: Vec<BenchResult> = Vec::new();
    for result in runs.iter().flatten() {
        match merged.iter_mut().find(|m| m.name == result.name) {
            Some(best) => {
                best.min_ns = best.min_ns.min(result.min_ns);
                best.median_ns = best.median_ns.min(result.median_ns);
            }
            None => merged.push(result.clone()),
        }
    }
    merged
}

/// Renders merged results as a `BENCH_router.json` section value: an ordered map of
/// benchmark name → `{min_ns, median_ns}`, optionally preceded by a `note`.
#[must_use]
pub fn section_value(results: &[BenchResult], note: Option<&str>) -> Value {
    let mut entries: Vec<(String, Value)> = Vec::new();
    if let Some(note) = note {
        entries.push((String::from("note"), Value::Str(note.to_string())));
    }
    for result in results {
        entries.push((
            result.name.clone(),
            Value::Map(vec![
                (String::from("min_ns"), Value::F64(round1(result.min_ns))),
                (String::from("median_ns"), Value::F64(round1(result.median_ns))),
            ]),
        ));
    }
    Value::Map(entries)
}

fn round1(value: f64) -> f64 {
    (value * 10.0).round() / 10.0
}

/// Inserts or replaces a named section in the baseline document, preserving the order of
/// existing keys (a replaced section stays where it was; a new one is appended).
///
/// # Errors
/// Returns an error if the document is not a JSON map.
pub fn upsert_section(document: &mut Value, section: &str, value: Value) -> Result<(), String> {
    let Value::Map(entries) = document else {
        return Err(format!("baseline document must be a JSON map, got {}", document.kind()));
    };
    match entries.iter_mut().find(|(key, _)| key == section) {
        Some((_, existing)) => *existing = value,
        None => entries.push((section.to_string(), value)),
    }
    Ok(())
}

/// One soft-check finding: a benchmark whose current best min exceeds the recorded min
/// by more than the tolerance factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Recorded baseline min (ns).
    pub recorded_min_ns: f64,
    /// Current best min (ns).
    pub current_min_ns: f64,
    /// `current / recorded`.
    pub ratio: f64,
}

/// Compares current results against a recorded section with a generous tolerance factor
/// (noise on the shared reference box dwarfs real small regressions; this check exists
/// to catch order-of-magnitude mistakes, not percent drift). Benchmarks missing from the
/// recorded section are ignored.
#[must_use]
pub fn compare_against(
    recorded_section: &Value,
    current: &[BenchResult],
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for result in current {
        let Ok(entry) = recorded_section.get(&result.name) else {
            continue;
        };
        let Ok(recorded) = entry.get("min_ns").and_then(f64::from_value) else {
            continue;
        };
        if recorded > 0.0 && result.min_ns > recorded * tolerance {
            regressions.push(Regression {
                name: result.name.clone(),
                recorded_min_ns: recorded,
                current_min_ns: result.min_ns,
                ratio: result.min_ns / recorded,
            });
        }
    }
    regressions
}

use serde::Deserialize as _;

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, min: f64, median: f64) -> BenchResult {
        BenchResult { name: name.to_string(), min_ns: min, median_ns: median }
    }

    #[test]
    fn parses_criterion_out_lines() {
        let contents = "\
{\"name\":\"physics_step_80_servers\",\"min_ns\":1400.0,\"median_ns\":1450.2,\"max_ns\":1700.0}
not json
{\"name\":\"fleet_step_16_datacenters\",\"min_ns\":500000.0,\"median_ns\":512345.5,\"max_ns\":600000.0}
";
        let results = parse_criterion_out(contents);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "physics_step_80_servers");
        assert_eq!(results[0].median_ns, 1450.2);
        assert_eq!(results[1].min_ns, 500000.0);
    }

    #[test]
    fn merge_takes_best_of_each_metric_per_name() {
        let runs = vec![
            vec![result("a", 100.0, 120.0), result("b", 10.0, 11.0)],
            vec![result("a", 90.0, 130.0)],
            vec![result("b", 12.0, 10.5)],
        ];
        let merged = merge_best(&runs);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], result("a", 90.0, 120.0));
        assert_eq!(merged[1], result("b", 10.0, 10.5));
    }

    #[test]
    fn section_round_trips_through_json() {
        let section = section_value(&[result("a", 90.05, 120.0)], Some("note text"));
        let json = serde_json::to_string(&section).unwrap();
        assert!(json.contains("\"note\":\"note text\""));
        assert!(json.contains("\"min_ns\":90.1"), "rounded to one decimal: {json}");
    }

    #[test]
    fn upsert_replaces_in_place_and_appends_new() {
        let mut doc: Value = serde_json::from_str(
            "{\"description\":\"d\",\"old\":{\"a\":{\"min_ns\":1.0}},\"tail\":1}",
        )
        .unwrap();
        upsert_section(&mut doc, "old", section_value(&[result("a", 2.0, 3.0)], None))
            .unwrap();
        upsert_section(&mut doc, "fresh", section_value(&[result("b", 4.0, 5.0)], None))
            .unwrap();
        let Value::Map(entries) = &doc else { panic!("map") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["description", "old", "tail", "fresh"]);
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"old\":{\"a\":{\"min_ns\":2"));
        assert!(upsert_section(&mut Value::Bool(true), "x", Value::Null).is_err());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let recorded = section_value(
            &[result("fast", 100.0, 110.0), result("slow", 100.0, 110.0)],
            Some("baseline"),
        );
        let current = vec![
            result("fast", 140.0, 150.0),  // 1.4x: within a 1.5x tolerance
            result("slow", 260.0, 280.0),  // 2.6x: flagged
            result("unknown", 999.0, 999.0), // not recorded: ignored
        ];
        let regressions = compare_against(&recorded, &current, 1.5);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "slow");
        assert!((regressions[0].ratio - 2.6).abs() < 1e-9);
    }
}
