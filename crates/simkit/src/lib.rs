//! # simkit — simulation substrate for the TAPAS reproduction
//!
//! This crate provides the low-level building blocks shared by every other crate in the
//! workspace:
//!
//! * [`units`] — strongly-typed physical quantities (temperature, power, airflow, …) so that
//!   a row power budget can never be accidentally compared against a GPU temperature.
//! * [`time`] — a discrete simulation clock with minute resolution, matching the paper's
//!   telemetry granularity (10-minute sensor averages, 5-minute routing recalculation,
//!   1-minute real-cluster measurements).
//! * [`series`] — time series containers and resampling helpers.
//! * [`stats`] — summary statistics (mean, percentiles, CDFs) used throughout the
//!   characterization and evaluation figures.
//! * [`regression`] — linear, polynomial and piecewise-polynomial least-squares fitting.
//!   The paper fits Eq. (1)–(4) with piecewise polynomial regression (§5.1), reporting a
//!   mean absolute error below 1 °C.
//! * [`rng`] — deterministic, seedable random streams plus the handful of distributions the
//!   trace generators need (normal, log-normal, exponential, Pareto-like heavy tails).
//! * [`events`] — a structured event log used by the cluster simulator to record thermal
//!   and power capping events, with interned entity labels for hot recording paths.
//! * [`queue`] — a deterministic binary-heap [`queue::EventQueue`] over integer
//!   timestamps with FIFO tie-breaking, the ordering substrate for event-timestamped
//!   streams such as the request fabric.
//!
//! # Example
//!
//! ```
//! use simkit::units::{Celsius, Watts};
//! use simkit::regression::LinearModel;
//!
//! // Fit a toy GPU-temperature model T_gpu = a*T_inlet + b*P_gpu + c (Eq. 2 of the paper).
//! let samples = vec![
//!     (vec![20.0, 300.0], 48.0),
//!     (vec![22.0, 400.0], 55.0),
//!     (vec![25.0, 500.0], 63.0),
//!     (vec![28.0, 250.0], 52.0),
//!     (vec![18.0, 600.0], 60.0),
//! ];
//! let model = LinearModel::fit(&samples).expect("well-conditioned fit");
//! let predicted = model.predict(&[21.0, 350.0]);
//! assert!(predicted > 40.0 && predicted < 70.0);
//! let _t = Celsius::new(predicted);
//! let _p = Watts::new(350.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod events;
pub mod queue;
pub mod regression;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use events::{EntityLabel, Event, EventKind, EventLog, LabelInterner};
pub use queue::EventQueue;
pub use regression::{LinearModel, PiecewisePolynomial, Polynomial};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::Summary;
pub use time::{SimClock, SimDuration, SimTime};
pub use units::{Celsius, CubicFeetPerMinute, Kilowatts, Megawatts, Watts};
