//! Least-squares regression models.
//!
//! The paper models the thermal and power behaviour of the datacenter with regressions fit to
//! three months of production telemetry (§2, Eq. 1–4), and its simulator uses piecewise
//! polynomial regression because it achieved a mean absolute error below 1 °C while
//! generalizing to unseen conditions better than random forests (§5.1). This module provides:
//!
//! * [`LinearModel`] — multivariate ordinary least squares with an intercept.
//! * [`Polynomial`] — univariate polynomial least squares of configurable degree.
//! * [`PiecewisePolynomial`] — univariate polynomials fit on contiguous segments of the input
//!   range, evaluated with clamping outside the fitted range (mirroring the paper's remark
//!   that the model must not extrapolate wildly for unseen temperatures).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a regression cannot be fit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// Fewer samples than unknown coefficients.
    TooFewSamples {
        /// Samples provided.
        provided: usize,
        /// Minimum required.
        required: usize,
    },
    /// The normal-equation system is singular (e.g. duplicated or constant features).
    Singular,
    /// Samples had inconsistent feature dimensions.
    DimensionMismatch {
        /// Dimension of the first sample.
        expected: usize,
        /// Dimension of the offending sample.
        found: usize,
    },
    /// A segment boundary list was invalid (unsorted or empty segments).
    InvalidSegments,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { provided, required } => {
                write!(f, "too few samples for fit: {provided} provided, {required} required")
            }
            FitError::Singular => write!(f, "normal equations are singular"),
            FitError::DimensionMismatch { expected, found } => {
                write!(f, "feature dimension mismatch: expected {expected}, found {found}")
            }
            FitError::InvalidSegments => write!(f, "invalid piecewise segment boundaries"),
        }
    }
}

impl std::error::Error for FitError {}

/// Solves the square linear system `a · x = b` in place using Gaussian elimination with
/// partial pivoting. Returns `None` when the matrix is (numerically) singular.
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot: find the row with the largest magnitude in this column.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, tail) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (target, &coeff) in tail[0][col..n].iter_mut().zip(&pivot[col..n]) {
                *target -= factor * coeff;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Multivariate ordinary least squares: `y ≈ intercept + Σ coef_i · x_i`.
///
/// Used for the GPU-temperature model of Eq. (2), which is linear in the inlet temperature
/// and the GPU power draw, and as the building block for the piecewise models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
}

impl LinearModel {
    /// Creates a model directly from an intercept and coefficients.
    #[must_use]
    pub fn from_coefficients(intercept: f64, coefficients: Vec<f64>) -> Self {
        Self { intercept, coefficients }
    }

    /// Fits the model to `(features, target)` samples by ordinary least squares.
    ///
    /// # Errors
    /// Returns [`FitError::TooFewSamples`] when there are fewer samples than coefficients,
    /// [`FitError::DimensionMismatch`] when samples disagree on dimension, and
    /// [`FitError::Singular`] when the design matrix is rank-deficient.
    pub fn fit(samples: &[(Vec<f64>, f64)]) -> Result<Self, FitError> {
        let dim = samples.first().map(|(x, _)| x.len()).unwrap_or(0);
        let unknowns = dim + 1;
        if samples.len() < unknowns {
            return Err(FitError::TooFewSamples { provided: samples.len(), required: unknowns });
        }
        for (x, _) in samples {
            if x.len() != dim {
                return Err(FitError::DimensionMismatch { expected: dim, found: x.len() });
            }
        }
        // Normal equations: (Xᵀ X) β = Xᵀ y with an implicit leading 1 column for the intercept.
        let mut xtx = vec![vec![0.0; unknowns]; unknowns];
        let mut xty = vec![0.0; unknowns];
        for (features, y) in samples {
            let mut row = Vec::with_capacity(unknowns);
            row.push(1.0);
            row.extend_from_slice(features);
            for i in 0..unknowns {
                xty[i] += row[i] * y;
                for j in 0..unknowns {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let beta = solve_linear_system(xtx, xty).ok_or(FitError::Singular)?;
        Ok(Self { intercept: beta[0], coefficients: beta[1..].to_vec() })
    }

    /// Predicts the target for a feature vector.
    ///
    /// # Panics
    /// Panics if `features` has a different dimension than the model was fit with.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature dimension mismatch in predict"
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// The fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted coefficients, one per feature.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Mean absolute error of the model over a sample set.
    #[must_use]
    pub fn mean_absolute_error(&self, samples: &[(Vec<f64>, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|(x, y)| (self.predict(x) - y).abs())
            .sum::<f64>()
            / samples.len() as f64
    }
}

/// A univariate polynomial `y = c0 + c1·x + c2·x² + …` fit by least squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-degree order.
    ///
    /// # Panics
    /// Panics if `coefficients` is empty.
    #[must_use]
    pub fn from_coefficients(coefficients: Vec<f64>) -> Self {
        assert!(!coefficients.is_empty(), "polynomial needs at least one coefficient");
        Self { coefficients }
    }

    /// Fits a polynomial of the given `degree` to `(x, y)` samples.
    ///
    /// # Errors
    /// Returns [`FitError::TooFewSamples`] or [`FitError::Singular`] as appropriate.
    pub fn fit(samples: &[(f64, f64)], degree: usize) -> Result<Self, FitError> {
        let expanded: Vec<(Vec<f64>, f64)> = samples
            .iter()
            .map(|&(x, y)| ((1..=degree).map(|d| x.powi(d as i32)).collect(), y))
            .collect();
        let linear = LinearModel::fit(&expanded)?;
        let mut coefficients = vec![linear.intercept()];
        coefficients.extend_from_slice(linear.coefficients());
        Ok(Self { coefficients })
    }

    /// Evaluates the polynomial at `x`.
    #[must_use]
    pub fn evaluate(&self, x: f64) -> f64 {
        // Horner's rule.
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Degree of the polynomial.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Coefficients in ascending-degree order.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Mean absolute error over a sample set.
    #[must_use]
    pub fn mean_absolute_error(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&(x, y)| (self.evaluate(x) - y).abs())
            .sum::<f64>()
            / samples.len() as f64
    }
}

/// A univariate piecewise polynomial: the x-axis is split at `breakpoints` and an independent
/// polynomial is fit (or supplied) per segment.
///
/// Evaluation clamps the input to the fitted range, so the model never extrapolates beyond
/// the data it has seen — the property the paper calls out as the reason piecewise
/// polynomial regression beats random forests for unseen (colder) temperatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewisePolynomial {
    /// Segment boundaries, ascending. Segment `i` covers `[breakpoints[i], breakpoints[i+1])`.
    breakpoints: Vec<f64>,
    /// One polynomial per segment; `segments.len() == breakpoints.len() - 1`.
    segments: Vec<Polynomial>,
}

impl PiecewisePolynomial {
    /// Builds a piecewise polynomial from explicit breakpoints and per-segment polynomials.
    ///
    /// # Errors
    /// Returns [`FitError::InvalidSegments`] if the breakpoints are not strictly ascending or
    /// the number of segments does not match.
    pub fn from_segments(
        breakpoints: Vec<f64>,
        segments: Vec<Polynomial>,
    ) -> Result<Self, FitError> {
        if breakpoints.len() < 2
            || segments.len() != breakpoints.len() - 1
            || breakpoints.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(FitError::InvalidSegments);
        }
        Ok(Self { breakpoints, segments })
    }

    /// Fits one polynomial of the given `degree` per segment delimited by `breakpoints`.
    ///
    /// Samples outside the breakpoint range are assigned to the first/last segment so no data
    /// is discarded.
    ///
    /// # Errors
    /// Returns [`FitError::InvalidSegments`] for bad breakpoints, or propagates fitting errors
    /// from any segment (e.g. a segment with too few samples).
    pub fn fit(
        samples: &[(f64, f64)],
        breakpoints: &[f64],
        degree: usize,
    ) -> Result<Self, FitError> {
        if breakpoints.len() < 2 || breakpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FitError::InvalidSegments);
        }
        let n_segments = breakpoints.len() - 1;
        let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_segments];
        for &(x, y) in samples {
            let seg = segment_index(breakpoints, x);
            buckets[seg].push((x, y));
        }
        let mut segments = Vec::with_capacity(n_segments);
        for bucket in &buckets {
            segments.push(Polynomial::fit(bucket, degree)?);
        }
        Ok(Self { breakpoints: breakpoints.to_vec(), segments })
    }

    /// Evaluates the model at `x`, clamping `x` into the fitted range first.
    #[must_use]
    pub fn evaluate(&self, x: f64) -> f64 {
        let lo = self.breakpoints[0];
        let hi = *self.breakpoints.last().expect("at least two breakpoints");
        let x = x.clamp(lo, hi);
        let seg = segment_index(&self.breakpoints, x);
        self.segments[seg].evaluate(x)
    }

    /// The segment boundaries.
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// The per-segment polynomials.
    #[must_use]
    pub fn segments(&self) -> &[Polynomial] {
        &self.segments
    }

    /// Mean absolute error over a sample set.
    #[must_use]
    pub fn mean_absolute_error(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&(x, y)| (self.evaluate(x) - y).abs())
            .sum::<f64>()
            / samples.len() as f64
    }
}

/// Index of the segment containing `x` (clamped to the valid segment range).
fn segment_index(breakpoints: &[f64], x: f64) -> usize {
    let n_segments = breakpoints.len() - 1;
    if x < breakpoints[0] {
        return 0;
    }
    for i in 0..n_segments {
        if x < breakpoints[i + 1] {
            return i;
        }
    }
    n_segments - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_recovers_exact_coefficients() {
        // y = 3 + 2*x1 - 0.5*x2
        let samples: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|i| {
                let x1 = f64::from(i);
                let x2 = f64::from(i * i % 7);
                (vec![x1, x2], 3.0 + 2.0 * x1 - 0.5 * x2)
            })
            .collect();
        let model = LinearModel::fit(&samples).unwrap();
        assert!((model.intercept() - 3.0).abs() < 1e-8);
        assert!((model.coefficients()[0] - 2.0).abs() < 1e-8);
        assert!((model.coefficients()[1] + 0.5).abs() < 1e-8);
        assert!(model.mean_absolute_error(&samples) < 1e-8);
    }

    #[test]
    fn linear_model_rejects_too_few_samples() {
        let samples = vec![(vec![1.0, 2.0], 3.0)];
        assert!(matches!(
            LinearModel::fit(&samples),
            Err(FitError::TooFewSamples { provided: 1, required: 3 })
        ));
    }

    #[test]
    fn linear_model_rejects_dimension_mismatch() {
        let samples = vec![
            (vec![1.0, 2.0], 3.0),
            (vec![1.0], 3.0),
            (vec![2.0, 1.0], 3.0),
        ];
        assert!(matches!(
            LinearModel::fit(&samples),
            Err(FitError::DimensionMismatch { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn linear_model_detects_singular_design() {
        // Second feature is an exact copy of the first -> singular normal equations.
        let samples: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| {
                let x = f64::from(i);
                (vec![x, x], 2.0 * x)
            })
            .collect();
        assert_eq!(LinearModel::fit(&samples), Err(FitError::Singular));
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn predict_panics_on_wrong_dimension() {
        let model = LinearModel::from_coefficients(0.0, vec![1.0, 2.0]);
        let _ = model.predict(&[1.0]);
    }

    #[test]
    fn polynomial_fits_quadratic_exactly() {
        // y = 1 - 2x + 0.5x^2
        let samples: Vec<(f64, f64)> = (-10..=10)
            .map(|i| {
                let x = f64::from(i);
                (x, 1.0 - 2.0 * x + 0.5 * x * x)
            })
            .collect();
        let poly = Polynomial::fit(&samples, 2).unwrap();
        assert_eq!(poly.degree(), 2);
        assert!((poly.coefficients()[0] - 1.0).abs() < 1e-8);
        assert!((poly.coefficients()[1] + 2.0).abs() < 1e-8);
        assert!((poly.coefficients()[2] - 0.5).abs() < 1e-8);
        assert!(poly.mean_absolute_error(&samples) < 1e-8);
    }

    #[test]
    fn polynomial_evaluate_uses_horner_correctly() {
        let poly = Polynomial::from_coefficients(vec![1.0, 0.0, 2.0]);
        assert_eq!(poly.evaluate(3.0), 1.0 + 2.0 * 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn polynomial_rejects_empty_coefficients() {
        let _ = Polynomial::from_coefficients(vec![]);
    }

    #[test]
    fn piecewise_fits_different_regimes() {
        // Flat at 18 below x=15, rising with slope 0.8 between 15 and 25, rising with slope
        // 0.3 above 25 — the qualitative shape of the paper's inlet-temperature model (Fig. 3).
        let f = |x: f64| {
            if x < 15.0 {
                18.0
            } else if x < 25.0 {
                18.0 + 0.8 * (x - 15.0)
            } else {
                26.0 + 0.3 * (x - 25.0)
            }
        };
        let samples: Vec<(f64, f64)> = (0..400).map(|i| {
            let x = f64::from(i) * 0.1;
            (x, f(x))
        }).collect();
        let model = PiecewisePolynomial::fit(&samples, &[0.0, 15.0, 25.0, 40.0], 1).unwrap();
        assert!(model.mean_absolute_error(&samples) < 0.05);
        assert!((model.evaluate(10.0) - 18.0).abs() < 0.1);
        assert!((model.evaluate(20.0) - 22.0).abs() < 0.2);
        assert!((model.evaluate(30.0) - 27.5).abs() < 0.2);
        // Clamping: evaluation far outside the fitted range returns the boundary value.
        assert!((model.evaluate(-100.0) - model.evaluate(0.0)).abs() < 1e-9);
        assert!((model.evaluate(500.0) - model.evaluate(40.0)).abs() < 1e-9);
    }

    #[test]
    fn piecewise_rejects_bad_breakpoints() {
        let samples = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        assert_eq!(
            PiecewisePolynomial::fit(&samples, &[5.0, 1.0], 1).unwrap_err(),
            FitError::InvalidSegments
        );
        assert_eq!(
            PiecewisePolynomial::fit(&samples, &[1.0], 1).unwrap_err(),
            FitError::InvalidSegments
        );
    }

    #[test]
    fn piecewise_from_segments_validates() {
        let p = Polynomial::from_coefficients(vec![1.0]);
        assert!(PiecewisePolynomial::from_segments(vec![0.0, 1.0], vec![p.clone()]).is_ok());
        assert_eq!(
            PiecewisePolynomial::from_segments(vec![0.0, 1.0], vec![p.clone(), p.clone()])
                .unwrap_err(),
            FitError::InvalidSegments
        );
        assert_eq!(
            PiecewisePolynomial::from_segments(vec![1.0, 0.0], vec![p]).unwrap_err(),
            FitError::InvalidSegments
        );
    }

    #[test]
    fn segment_index_edges() {
        let bp = [0.0, 10.0, 20.0];
        assert_eq!(segment_index(&bp, -5.0), 0);
        assert_eq!(segment_index(&bp, 0.0), 0);
        assert_eq!(segment_index(&bp, 9.99), 0);
        assert_eq!(segment_index(&bp, 10.0), 1);
        assert_eq!(segment_index(&bp, 20.0), 1);
        assert_eq!(segment_index(&bp, 99.0), 1);
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::Singular.to_string().contains("singular"));
        assert!(FitError::TooFewSamples { provided: 1, required: 2 }
            .to_string()
            .contains("too few"));
    }
}
