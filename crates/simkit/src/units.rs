//! Strongly-typed physical quantities.
//!
//! The datacenter model juggles temperatures, powers, airflows and rates. Mixing them up is
//! an easy way to produce a simulator that silently reports nonsense (e.g. comparing a GPU
//! temperature in °C against a row budget in kW). Each quantity is a thin newtype over `f64`
//! following the C-NEWTYPE guideline, with the arithmetic that is physically meaningful for
//! that quantity and explicit conversions elsewhere.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for a scalar physical quantity newtype.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value between `lo` and `hi`.
            ///
            /// # Panics
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted: {} > {}", lo.0, hi.0);
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.2} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

scalar_unit!(
    /// A temperature in degrees Celsius.
    ///
    /// GPU junction temperatures, memory temperatures, server inlet/outlet temperatures and
    /// outside air temperatures are all expressed in °C, matching the paper's figures.
    Celsius,
    "°C"
);

scalar_unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);

scalar_unit!(
    /// Electrical power in kilowatts. Used for server- and row-level aggregates.
    Kilowatts,
    "kW"
);

scalar_unit!(
    /// Electrical power in megawatts. Used for UPS- and datacenter-level aggregates.
    Megawatts,
    "MW"
);

scalar_unit!(
    /// Volumetric airflow in cubic feet per minute (CFM).
    ///
    /// The DGX A100 moves roughly 840 CFM and the DGX H100 roughly 1105 CFM at 80 % PWM fan
    /// speed (§2.1 of the paper); aisle AHUs must provision more airflow than the servers in
    /// the aisle consume or hot air recirculates.
    CubicFeetPerMinute,
    "CFM"
);

scalar_unit!(
    /// A throughput in tokens per second (LLM serving goodput).
    TokensPerSecond,
    "tok/s"
);

scalar_unit!(
    /// A dimensionless utilization or load fraction, normally within `[0, 1]`.
    LoadFraction,
    "load"
);

impl Watts {
    /// Converts to kilowatts.
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.0 / 1000.0)
    }
}

impl Kilowatts {
    /// Converts to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.0 * 1000.0)
    }

    /// Converts to megawatts.
    #[must_use]
    pub fn to_megawatts(self) -> Megawatts {
        Megawatts::new(self.0 / 1000.0)
    }
}

impl Megawatts {
    /// Converts to kilowatts.
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.0 * 1000.0)
    }
}

impl LoadFraction {
    /// Full load (1.0).
    pub const FULL: Self = Self(1.0);

    /// Creates a load fraction, clamping into `[0, 1]`.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        Self(value.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Celsius::new(20.0);
        let b = Celsius::new(5.0);
        assert_eq!((a + b).value(), 25.0);
        assert_eq!((a - b).value(), 15.0);
        assert_eq!((a * 2.0).value(), 40.0);
        assert_eq!((a / 2.0).value(), 10.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((-b).value(), -5.0);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut p = Watts::new(100.0);
        p += Watts::new(50.0);
        assert_eq!(p.value(), 150.0);
        p -= Watts::new(25.0);
        assert_eq!(p.value(), 125.0);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Kilowatts = (1..=4).map(|i| Kilowatts::new(f64::from(i))).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn min_max_clamp() {
        let a = Celsius::new(30.0);
        let b = Celsius::new(40.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Celsius::new(90.0).clamp(Celsius::new(0.0), Celsius::new(85.0)),
            Celsius::new(85.0)
        );
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Celsius::new(1.0).clamp(Celsius::new(10.0), Celsius::new(0.0));
    }

    #[test]
    fn power_conversions_round_trip() {
        let w = Watts::new(6500.0);
        assert!((w.to_kilowatts().value() - 6.5).abs() < 1e-12);
        assert!((w.to_kilowatts().to_watts().value() - 6500.0).abs() < 1e-9);
        let mw = Kilowatts::new(2500.0).to_megawatts();
        assert!((mw.value() - 2.5).abs() < 1e-12);
        assert!((mw.to_kilowatts().value() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn load_fraction_clamps() {
        assert_eq!(LoadFraction::clamped(1.7), LoadFraction::FULL);
        assert_eq!(LoadFraction::clamped(-0.3), LoadFraction::ZERO);
        assert_eq!(LoadFraction::clamped(0.5).value(), 0.5);
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Celsius::new(21.5).to_string(), "21.50 °C");
        assert_eq!(Kilowatts::new(6.5).to_string(), "6.50 kW");
        assert_eq!(CubicFeetPerMinute::new(840.0).to_string(), "840.00 CFM");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let t = Celsius::new(72.25);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "72.25");
        let back: Celsius = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_and_into_f64() {
        let t: Celsius = 12.0.into();
        let raw: f64 = t.into();
        assert_eq!(raw, 12.0);
    }
}
