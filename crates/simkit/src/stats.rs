//! Summary statistics: means, percentiles, histograms and empirical CDFs.
//!
//! Every evaluation figure in the paper is a distributional summary: P50/P99 row power
//! (Fig. 10), CDFs of GPU temperature (Fig. 9), prediction-error CDFs (Fig. 14), peak and
//! tail statistics of week-long time series (Fig. 19–21). This module provides the small
//! set of estimators those figures need.

use serde::{Deserialize, Serialize};

/// Returns the arithmetic mean of `values`, or `None` if the slice is empty.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Returns the population standard deviation of `values`, or `None` if the slice is empty.
#[must_use]
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Returns the `p`-th percentile (0–100) of `values` using linear interpolation between the
/// closest ranks, or `None` if the slice is empty.
///
/// # Panics
/// Panics if `p` is not within `[0, 100]` or any value is NaN.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100], got {p}");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already ascending-sorted slice. See [`percentile`].
#[must_use]
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the maximum of `values`, or `None` if the slice is empty.
#[must_use]
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(m.max(v)),
    })
}

/// Returns the minimum of `values`, or `None` if the slice is empty.
#[must_use]
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(m.min(v)),
    })
}

/// A one-pass summary of a sample: count, mean, min, max and key percentiles.
///
/// # Examples
/// ```
/// use simkit::stats::Summary;
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.max, 5.0);
/// assert!((s.p50 - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (P50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Builds a summary from raw values.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Summary::from_values on empty slice");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Summary input"));
        Self {
            count: sorted.len(),
            mean: mean(&sorted).expect("non-empty"),
            std_dev: std_dev(&sorted).expect("non-empty"),
            min: sorted[0],
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// An empirical cumulative distribution function over a finite sample.
///
/// Construction sorts the sample once; queries are then `O(log n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample.
    ///
    /// # Panics
    /// Panics if the sample is empty or contains NaN.
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Ecdf of empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Ecdf input"));
        Self { sorted }
    }

    /// Number of samples backing the ECDF.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF has no backing samples (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples less than or equal to `x`, in `[0, 1]`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]` (inverse CDF with interpolation).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Evaluates the ECDF at `n` evenly spaced points between the sample minimum and maximum,
    /// returning `(x, cdf(x))` pairs. Useful for plotting figures such as Fig. 9/10/14.
    #[must_use]
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if n <= 1 || (hi - lo).abs() < f64::EPSILON {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

/// A fixed-bin histogram over a closed range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.below += 1;
            return;
        }
        if value >= self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((value - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total number of observations recorded (including out-of-range ones).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations below the histogram range.
    #[must_use]
    pub fn below_range(&self) -> u64 {
        self.below
    }

    /// Number of observations at or above the upper bound.
    #[must_use]
    pub fn above_range(&self) -> u64 {
        self.above
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }

    /// Fraction of in-range observations that fall in each bin, as `(bin_center, fraction)`.
    pub fn normalized(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let in_range = (self.total - self.below - self.above).max(1);
        self.bins().map(move |(x, c)| (x, c as f64 / in_range as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), Some(4.0));
        let sd = std_dev(&[2.0, 4.0, 6.0]).unwrap();
        assert!((sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let values = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&values, 0.0), Some(10.0));
        assert_eq!(percentile(&values, 100.0), Some(40.0));
        assert!((percentile(&values, 50.0).unwrap() - 25.0).abs() < 1e-12);
        assert!((percentile(&values, 75.0).unwrap() - 32.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 120.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(min(&[1.0, 5.0, 3.0]), Some(1.0));
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn summary_matches_manual_computation() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::from_values(&values);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_panics() {
        let _ = Summary::from_values(&[]);
    }

    #[test]
    fn ecdf_cdf_and_quantile_are_consistent() {
        let values: Vec<f64> = (1..=1000).map(f64::from).collect();
        let ecdf = Ecdf::new(&values);
        assert_eq!(ecdf.len(), 1000);
        assert!(!ecdf.is_empty());
        assert!((ecdf.cdf(500.0) - 0.5).abs() < 2e-3);
        assert!((ecdf.quantile(0.5) - 500.5).abs() < 1.0);
        assert_eq!(ecdf.cdf(0.0), 0.0);
        assert_eq!(ecdf.cdf(2000.0), 1.0);
        let curve = ecdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1), "CDF must be monotone");
    }

    #[test]
    fn ecdf_of_constant_sample() {
        let ecdf = Ecdf::new(&[3.0, 3.0, 3.0]);
        assert_eq!(ecdf.curve(5), vec![(3.0, 1.0)]);
        assert_eq!(ecdf.quantile(0.9), 3.0);
    }

    #[test]
    fn histogram_counts_and_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.5, 1.5, 2.5, 9.9, 10.0, 25.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.below_range(), 1);
        assert_eq!(h.above_range(), 2);
        let bins: Vec<(f64, u64)> = h.bins().collect();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0], (1.0, 2.0 as u64));
        assert_eq!(bins[1].1, 1);
        assert_eq!(bins[4].1, 1);
        let norm: Vec<(f64, f64)> = h.normalized().collect();
        let total_frac: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((total_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
