//! Dense, allocation-light event queue for event-timestamped simulation streams.
//!
//! The step loop works on fixed quanta, but the request fabric schedules *events*:
//! millions of per-request arrivals per simulated day, each carrying an integer entity
//! ordinal instead of a string label. [`EventQueue`] is the ordering substrate: a
//! Vec-backed binary min-heap keyed by `(time, sequence)` where the sequence number is a
//! monotonically increasing insertion counter. Ties on `time` therefore pop in insertion
//! (FIFO) order, which makes the drain order a pure function of the push order — the
//! determinism rule every digest contract relies on.
//!
//! Timestamps are plain `u64`s in whatever unit the caller picks. The simulation clock
//! ([`crate::time::SimTime`]) has minute resolution; the request fabric keys its queue in
//! *milliseconds* so sub-minute arrival interleavings stay exact without touching the
//! clock type.
//!
//! The heap never shrinks and stores payloads inline, so a steady-state
//! push/pop cycle performs zero allocations once the high-water mark is reached.
//!
//! # Examples
//! ```
//! use simkit::queue::EventQueue;
//! let mut queue = EventQueue::new();
//! queue.push(20, "b");
//! queue.push(10, "a");
//! queue.push(20, "c"); // same time as "b", pushed later → pops later
//! assert_eq!(queue.pop(), Some((10, "a")));
//! assert_eq!(queue.pop(), Some((20, "b")));
//! assert_eq!(queue.pop(), Some((20, "c")));
//! assert_eq!(queue.pop(), None);
//! ```

/// One pending event: an integer timestamp plus an inline payload.
#[derive(Debug, Clone)]
struct Slot<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> Slot<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic binary min-heap of timestamped events.
///
/// Pop order is ascending `(time, insertion sequence)`: earliest time first, and FIFO
/// among events that share a timestamp.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: Vec<Slot<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: Vec::new(), next_seq: 0 }
    }

    /// Creates an empty queue with room for `capacity` events before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { heap: Vec::with_capacity(capacity), next_seq: 0 }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events, keeping the allocation. The insertion counter is *not*
    /// reset, so FIFO tie-breaking stays globally consistent across reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.first().map(|slot| slot.time)
    }

    /// Schedules a payload at `time`.
    pub fn push(&mut self, time: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Slot { time, seq, payload });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let slot = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((slot.time, slot.payload))
    }

    /// Pops every event with `time <= deadline`, in deterministic order, into `visit`.
    pub fn drain_until(&mut self, deadline: u64, mut visit: impl FnMut(u64, T)) {
        while self.peek_time().is_some_and(|t| t <= deadline) {
            let (time, payload) = self.pop().expect("peeked event");
            visit(time, payload);
        }
    }

    fn sift_up(&mut self, mut index: usize) {
        while index > 0 {
            let parent = (index - 1) / 2;
            if self.heap[index].key() < self.heap[parent].key() {
                self.heap.swap(index, parent);
                index = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut index: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * index + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < len && self.heap[right].key() < self.heap[left].key() {
                smallest = right;
            }
            if self.heap[smallest].key() < self.heap[index].key() {
                self.heap.swap(index, smallest);
                index = smallest;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut queue = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            queue.push(t, t * 10);
        }
        let mut drained = Vec::new();
        while let Some((t, p)) = queue.pop() {
            drained.push((t, p));
        }
        assert_eq!(drained, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut queue = EventQueue::new();
        for i in 0..100u64 {
            queue.push(42, i);
        }
        for i in 0..100u64 {
            assert_eq!(queue.pop(), Some((42, i)));
        }
    }

    #[test]
    fn drain_until_respects_the_deadline() {
        let mut queue = EventQueue::new();
        for &t in &[2u64, 4, 6, 8] {
            queue.push(t, t);
        }
        let mut seen = Vec::new();
        queue.drain_until(5, |t, p| seen.push((t, p)));
        assert_eq!(seen, vec![(2, 2), (4, 4)]);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.peek_time(), Some(6));
    }

    #[test]
    fn clear_keeps_the_sequence_counter() {
        let mut queue = EventQueue::new();
        queue.push(1, "early");
        queue.clear();
        assert!(queue.is_empty());
        queue.push(7, "a");
        queue.push(7, "b");
        assert_eq!(queue.pop(), Some((7, "a")));
        assert_eq!(queue.pop(), Some((7, "b")));
    }

    #[test]
    fn matches_a_stable_sorted_reference_model() {
        let mut rng = SimRng::seed_from(2024);
        for _ in 0..50 {
            let count = rng.uniform_usize(1, 300);
            let mut queue = EventQueue::with_capacity(count);
            // Times drawn from a narrow range so ties are common.
            let mut reference: Vec<(u64, usize)> = Vec::with_capacity(count);
            for ordinal in 0..count {
                let time = rng.uniform_usize(0, 20) as u64;
                queue.push(time, ordinal);
                reference.push((time, ordinal));
            }
            // Stable sort by time preserves insertion order among ties — the contract.
            reference.sort_by_key(|&(time, _)| time);
            let mut drained = Vec::with_capacity(count);
            while let Some(item) = queue.pop() {
                drained.push(item);
            }
            assert_eq!(drained, reference);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut queue = EventQueue::new();
        queue.push(10, 0);
        queue.push(2, 1);
        assert_eq!(queue.pop(), Some((2, 1)));
        queue.push(4, 2);
        queue.push(10, 3);
        assert_eq!(queue.pop(), Some((4, 2)));
        assert_eq!(queue.pop(), Some((10, 0)));
        assert_eq!(queue.pop(), Some((10, 3)));
        assert!(queue.pop().is_none());
    }
}
