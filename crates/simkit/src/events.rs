//! Structured event log.
//!
//! The evaluation of TAPAS counts *events*: thermal throttling episodes, power capping
//! episodes, infrastructure failures, VM reconfigurations and SLO violations. Rather than
//! letting every crate keep ad-hoc counters, the cluster simulator appends typed [`Event`]s
//! to an [`EventLog`] which the report generators then slice by kind, entity and time window.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The category of a logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A GPU exceeded its thermal limit and the hardware throttled it.
    ThermalThrottle,
    /// A power-hierarchy level exceeded its budget and its servers were power-capped.
    PowerCap,
    /// An aisle's servers demanded more airflow than the AHUs provide (heat recirculation).
    AirflowViolation,
    /// A cooling device or AHU failed.
    CoolingFailure,
    /// A UPS or other power-hierarchy component failed.
    PowerFailure,
    /// A failed component was restored.
    FailureRecovered,
    /// A VM was placed on a server.
    VmPlaced,
    /// A VM could not be placed (no feasible server).
    VmRejected,
    /// A VM finished and released its server.
    VmRetired,
    /// A SaaS instance changed configuration (frequency, batch, parallelism, model, quant).
    InstanceReconfigured,
    /// A request violated its latency SLO.
    SloViolation,
    /// A request was served by a reduced-quality model variant.
    QualityDegraded,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            EventKind::ThermalThrottle => "thermal-throttle",
            EventKind::PowerCap => "power-cap",
            EventKind::AirflowViolation => "airflow-violation",
            EventKind::CoolingFailure => "cooling-failure",
            EventKind::PowerFailure => "power-failure",
            EventKind::FailureRecovered => "failure-recovered",
            EventKind::VmPlaced => "vm-placed",
            EventKind::VmRejected => "vm-rejected",
            EventKind::VmRetired => "vm-retired",
            EventKind::InstanceReconfigured => "instance-reconfigured",
            EventKind::SloViolation => "slo-violation",
            EventKind::QualityDegraded => "quality-degraded",
        };
        f.write_str(label)
    }
}

/// An interned entity label: a cheap-to-clone, shared string.
///
/// Hot recording paths log many events against the same entity ("row-3" every capped
/// step, one label per routed quantum for a misbehaving VM). Formatting a fresh `String`
/// per event made `record_kind` an allocation hot spot; an `EntityLabel` is an
/// `Arc<str>`, so re-recording against a cached label is a reference-count bump. Labels
/// serialize exactly like the plain strings they replaced, keeping every golden artifact
/// byte-identical.
///
/// Build one from any string (`"row-3".into()`), or cache per-ordinal labels in a
/// [`LabelInterner`] so each entity's label is formatted at most once per run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityLabel(Arc<str>);

impl EntityLabel {
    /// The label text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EntityLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EntityLabel {
    fn from(value: &str) -> Self {
        Self(Arc::from(value))
    }
}

impl From<String> for EntityLabel {
    fn from(value: String) -> Self {
        Self(Arc::from(value))
    }
}

impl From<&String> for EntityLabel {
    fn from(value: &String) -> Self {
        Self(Arc::from(value.as_str()))
    }
}

impl PartialEq<str> for EntityLabel {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for EntityLabel {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

// Hand-written serde: the vendored derive would also produce `Value::Str`, but the
// facade's derive macro rejects tuple structs around non-`String` fields; encoding is
// identical to the `String` field this type replaced.
impl Serialize for EntityLabel {
    fn to_value(&self) -> Value {
        Value::Str(self.0.to_string())
    }
}

impl Deserialize for EntityLabel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Self::from(s.as_str())),
            other => Err(Error::new(format!("expected a string entity label, got {other:?}"))),
        }
    }
}

/// A per-ordinal cache of [`EntityLabel`]s.
///
/// Recording paths index entities by dense ordinals (VM ids, row ordinals, GPU slots).
/// The interner formats each ordinal's label at most once and hands out shared clones
/// afterwards, so steady-state event recording performs no formatting or allocation.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    labels: Vec<Option<EntityLabel>>,
}

impl LabelInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached label for `ordinal`, formatting it with `make` on first use.
    pub fn get_or_insert_with(
        &mut self,
        ordinal: usize,
        make: impl FnOnce() -> String,
    ) -> EntityLabel {
        if ordinal >= self.labels.len() {
            self.labels.resize(ordinal + 1, None);
        }
        self.labels[ordinal]
            .get_or_insert_with(|| EntityLabel::from(make()))
            .clone()
    }

    /// Number of ordinals with a cached label.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Returns `true` if no labels are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A single logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// When the event occurred.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
    /// The affected entity, e.g. `"row-3"`, `"server-0412"`, `"vm-saas-17"`.
    pub entity: EntityLabel,
    /// Optional magnitude (degrees above the limit, kilowatts shed, …).
    pub magnitude: f64,
    /// Free-form detail for reports and debugging.
    pub detail: String,
}

/// An append-only log of simulation events.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Convenience constructor-and-append.
    ///
    /// Pass a cached [`EntityLabel`] (e.g. from a [`LabelInterner`]) on hot paths so the
    /// append does not format or allocate; `&str`/`String` still convert for cold paths.
    pub fn record_kind(
        &mut self,
        time: SimTime,
        kind: EventKind,
        entity: impl Into<EntityLabel>,
        magnitude: f64,
        detail: impl Into<String>,
    ) {
        self.record(Event { time, kind, entity: entity.into(), magnitude, detail: detail.into() });
    }

    /// All events in insertion order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events of the given kind.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of the given kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events affecting the given entity.
    pub fn for_entity<'a>(&'a self, entity: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.entity == entity)
    }

    /// Counts events by kind.
    #[must_use]
    pub fn counts_by_kind(&self) -> BTreeMap<EventKind, usize> {
        let mut counts = BTreeMap::new();
        for event in &self.events {
            *counts.entry(event.kind).or_insert(0) += 1;
        }
        counts
    }

    /// Fraction of simulation steps in `[0, horizon)` during which at least one event of the
    /// given kind occurred, assuming events are logged at step boundaries of length `step`.
    ///
    /// This is the "% of time under thermal/power capping" metric of Fig. 21.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    #[must_use]
    pub fn fraction_of_time(&self, kind: EventKind, horizon: SimTime, step: SimDuration) -> f64 {
        assert!(!step.is_zero(), "step must be non-zero");
        let total_steps = horizon.as_minutes().div_ceil(step.as_minutes());
        if total_steps == 0 {
            return 0.0;
        }
        let mut steps_with_event: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for event in self.of_kind(kind) {
            steps_with_event.insert(event.time.as_minutes() / step.as_minutes());
        }
        steps_with_event.len() as f64 / total_steps as f64
    }

    /// Merges another log into this one (used when sub-simulations run independently).
    pub fn merge(&mut self, other: EventLog) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.time);
    }
}

impl Extend<Event> for EventLog {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(minute: u64, kind: EventKind, entity: &str) -> Event {
        Event {
            time: SimTime::from_minutes(minute),
            kind,
            entity: entity.into(),
            magnitude: 1.0,
            detail: String::new(),
        }
    }

    #[test]
    fn record_and_count() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.record(event(0, EventKind::ThermalThrottle, "server-1"));
        log.record(event(5, EventKind::PowerCap, "row-1"));
        log.record(event(7, EventKind::ThermalThrottle, "server-2"));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(EventKind::ThermalThrottle), 2);
        assert_eq!(log.count(EventKind::PowerCap), 1);
        assert_eq!(log.count(EventKind::CoolingFailure), 0);
        assert_eq!(log.of_kind(EventKind::PowerCap).count(), 1);
        assert_eq!(log.for_entity("server-1").count(), 1);
        let counts = log.counts_by_kind();
        assert_eq!(counts[&EventKind::ThermalThrottle], 2);
    }

    #[test]
    fn record_kind_builds_event() {
        let mut log = EventLog::new();
        log.record_kind(
            SimTime::from_minutes(3),
            EventKind::VmPlaced,
            "vm-7",
            0.0,
            "placed on server-12",
        );
        assert_eq!(log.events()[0].entity, "vm-7");
        assert_eq!(log.events()[0].detail, "placed on server-12");
    }

    #[test]
    fn fraction_of_time_counts_distinct_steps() {
        let mut log = EventLog::new();
        // Two events within the same 5-minute step should count once.
        log.record(event(0, EventKind::PowerCap, "row-1"));
        log.record(event(2, EventKind::PowerCap, "row-2"));
        log.record(event(10, EventKind::PowerCap, "row-1"));
        let fraction = log.fraction_of_time(
            EventKind::PowerCap,
            SimTime::from_minutes(20),
            SimDuration::from_minutes(5),
        );
        assert!((fraction - 0.5).abs() < 1e-12);
        assert_eq!(
            log.fraction_of_time(
                EventKind::ThermalThrottle,
                SimTime::from_minutes(20),
                SimDuration::from_minutes(5)
            ),
            0.0
        );
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = EventLog::new();
        a.record(event(10, EventKind::VmPlaced, "vm-1"));
        let mut b = EventLog::new();
        b.record(event(2, EventKind::VmPlaced, "vm-2"));
        a.merge(b);
        assert_eq!(a.events()[0].entity, "vm-2");
        assert_eq!(a.events()[1].entity, "vm-1");
    }

    #[test]
    fn entity_labels_serialize_like_plain_strings() {
        let label = EntityLabel::from("row-3");
        assert_eq!(label.to_value(), Value::Str("row-3".to_string()));
        let back = EntityLabel::from_value(&Value::Str("row-3".to_string())).unwrap();
        assert_eq!(back, label);
        assert_eq!(label, "row-3");
        assert_eq!(label.to_string(), "row-3");
        assert!(EntityLabel::from_value(&Value::U64(3)).is_err());
    }

    #[test]
    fn interner_formats_each_ordinal_once() {
        let mut interner = LabelInterner::new();
        let mut calls = 0;
        let first = interner.get_or_insert_with(3, || {
            calls += 1;
            "row-3".to_string()
        });
        let again = interner.get_or_insert_with(3, || {
            calls += 1;
            "unreachable".to_string()
        });
        assert_eq!(calls, 1);
        assert_eq!(first, again);
        assert_eq!(first, "row-3");
        assert_eq!(interner.len(), 1);
        assert!(!interner.is_empty());
    }

    #[test]
    fn event_kind_display_is_kebab_case() {
        assert_eq!(EventKind::ThermalThrottle.to_string(), "thermal-throttle");
        assert_eq!(EventKind::QualityDegraded.to_string(), "quality-degraded");
    }
}
