//! Time series containers.
//!
//! Experiments record one value per simulation step for each monitored quantity (row power,
//! maximum GPU temperature, request latency, …). [`TimeSeries`] keeps the `(time, value)`
//! pairs together with the helpers the figures need: peaks, window maxima, resampling to a
//! coarser interval and normalization against a provisioned limit.

use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An append-only series of `(SimTime, f64)` samples with non-decreasing timestamps.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name (used in reports).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), times: Vec::new(), values: Vec::new() }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last recorded sample.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "time series must be appended in order ({time} < {last})");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// The raw values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The timestamps.
    #[must_use]
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last sample, if any.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Maximum value over the whole series, or `None` if empty.
    #[must_use]
    pub fn peak(&self) -> Option<f64> {
        crate::stats::max(&self.values)
    }

    /// Minimum value over the whole series, or `None` if empty.
    #[must_use]
    pub fn trough(&self) -> Option<f64> {
        crate::stats::min(&self.values)
    }

    /// Arithmetic mean over the whole series, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        crate::stats::mean(&self.values)
    }

    /// Distributional summary of the values.
    ///
    /// # Panics
    /// Panics if the series is empty.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::from_values(&self.values)
    }

    /// Fraction of samples for which `predicate` holds (0 for an empty series).
    #[must_use]
    pub fn fraction_where(&self, predicate: impl Fn(f64) -> bool) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| predicate(v)).count() as f64 / self.values.len() as f64
    }

    /// Resamples to a coarser interval by taking the maximum within each window.
    ///
    /// This mirrors how the paper reports "peak power over 5-minute intervals" (Fig. 19) from
    /// finer-grained data.
    #[must_use]
    pub fn window_max(&self, window: SimDuration) -> TimeSeries {
        self.resample(window, |values| crate::stats::max(values).unwrap_or(0.0))
    }

    /// Resamples to a coarser interval by taking the mean within each window.
    #[must_use]
    pub fn window_mean(&self, window: SimDuration) -> TimeSeries {
        self.resample(window, |values| crate::stats::mean(values).unwrap_or(0.0))
    }

    /// Generic windowed resampling: groups samples into `[k·window, (k+1)·window)` buckets and
    /// applies `aggregate` to each non-empty bucket. The output sample is timestamped at the
    /// start of its window.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn resample(&self, window: SimDuration, aggregate: impl Fn(&[f64]) -> f64) -> TimeSeries {
        assert!(!window.is_zero(), "resample window must be non-zero");
        let mut out = TimeSeries::new(format!("{}[{}]", self.name, window));
        if self.is_empty() {
            return out;
        }
        let w = window.as_minutes();
        let mut bucket_start = self.times[0].as_minutes() / w * w;
        let mut bucket: Vec<f64> = Vec::new();
        for (t, v) in self.iter() {
            let start = t.as_minutes() / w * w;
            if start != bucket_start && !bucket.is_empty() {
                out.push(SimTime::from_minutes(bucket_start), aggregate(&bucket));
                bucket.clear();
            }
            bucket_start = start;
            bucket.push(v);
        }
        if !bucket.is_empty() {
            out.push(SimTime::from_minutes(bucket_start), aggregate(&bucket));
        }
        out
    }

    /// Returns a copy of the series with every value divided by `reference`.
    ///
    /// Used to normalize against provisioned maxima, as in "normalized peak power".
    ///
    /// # Panics
    /// Panics if `reference` is zero.
    #[must_use]
    pub fn normalized_by(&self, reference: f64) -> TimeSeries {
        assert!(reference != 0.0, "cannot normalize by zero");
        let mut out = TimeSeries::new(format!("{} (normalized)", self.name));
        for (t, v) in self.iter() {
            out.push(t, v / reference);
        }
        out
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut series = TimeSeries::new("series");
        series.extend(iter);
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn push_and_basic_statistics() {
        let mut s = TimeSeries::new("power");
        assert!(s.is_empty());
        assert_eq!(s.peak(), None);
        s.push(minutes(0), 10.0);
        s.push(minutes(5), 30.0);
        s.push(minutes(10), 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.peak(), Some(30.0));
        assert_eq!(s.trough(), Some(10.0));
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(s.last(), Some((minutes(10), 20.0)));
        assert_eq!(s.name(), "power");
        assert_eq!(s.summary().count, 3);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(minutes(10), 1.0);
        s.push(minutes(5), 2.0);
    }

    #[test]
    fn fraction_where_counts_matching_samples() {
        let s: TimeSeries = (0..10).map(|i| (minutes(i), f64::from(i as u32))).collect();
        assert!((s.fraction_where(|v| v >= 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(TimeSeries::new("empty").fraction_where(|_| true), 0.0);
    }

    #[test]
    fn window_max_groups_by_window_start() {
        let mut s = TimeSeries::new("temp");
        for m in 0..30 {
            s.push(minutes(m), f64::from(m as u32 % 7));
        }
        let resampled = s.window_max(SimDuration::from_minutes(10));
        assert_eq!(resampled.len(), 3);
        assert_eq!(resampled.times()[0], minutes(0));
        assert_eq!(resampled.times()[1], minutes(10));
        assert_eq!(resampled.values()[0], 6.0);
        assert!(resampled.values().iter().all(|&v| v <= 6.0));
    }

    #[test]
    fn window_mean_of_constant_series_is_constant() {
        let s: TimeSeries = (0..60).map(|i| (minutes(i), 4.0)).collect();
        let resampled = s.window_mean(SimDuration::from_minutes(15));
        assert_eq!(resampled.len(), 4);
        assert!(resampled.values().iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn resample_handles_gaps() {
        let mut s = TimeSeries::new("gappy");
        s.push(minutes(0), 1.0);
        s.push(minutes(55), 9.0);
        let resampled = s.window_max(SimDuration::from_minutes(10));
        assert_eq!(resampled.len(), 2);
        assert_eq!(resampled.times()[1], minutes(50));
    }

    #[test]
    fn normalized_by_scales_values() {
        let s: TimeSeries = (0..4).map(|i| (minutes(i), f64::from(i as u32) * 25.0)).collect();
        let norm = s.normalized_by(75.0);
        assert!((norm.values()[3] - 1.0).abs() < 1e-12);
        assert!(norm.name().contains("normalized"));
    }

    #[test]
    #[should_panic(expected = "normalize by zero")]
    fn normalize_by_zero_panics() {
        let _ = TimeSeries::new("x").normalized_by(0.0);
    }

    #[test]
    fn extend_and_collect() {
        let mut s = TimeSeries::new("a");
        s.extend((0..3).map(|i| (minutes(i), 1.0)));
        assert_eq!(s.len(), 3);
        let collected: TimeSeries = (0..5).map(|i| (minutes(i), 2.0)).collect();
        assert_eq!(collected.len(), 5);
    }
}
