//! Discrete simulation time.
//!
//! The paper's telemetry arrives at 10-minute granularity, the router recalculates its
//! aisle/row caches every 5 minutes and the real-cluster experiment samples power every
//! minute. A minute-resolution integer clock covers all of these without floating-point
//! drift over week-long simulations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of minutes in an hour.
pub const MINUTES_PER_HOUR: u64 = 60;
/// Number of minutes in a day.
pub const MINUTES_PER_DAY: u64 = 24 * MINUTES_PER_HOUR;
/// Number of minutes in a week.
pub const MINUTES_PER_WEEK: u64 = 7 * MINUTES_PER_DAY;

/// A point in simulated time, measured in whole minutes since the start of the simulation.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, measured in whole minutes.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);

    /// Creates a time from minutes since the simulation start.
    #[must_use]
    pub const fn from_minutes(minutes: u64) -> Self {
        Self(minutes)
    }

    /// Creates a time from hours since the simulation start.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * MINUTES_PER_HOUR)
    }

    /// Creates a time from days since the simulation start.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        Self(days * MINUTES_PER_DAY)
    }

    /// Minutes since the simulation start.
    #[must_use]
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Fractional hours since the simulation start.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// Fractional days since the simulation start.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// The minute within the current day, in `[0, 1440)`.
    ///
    /// Useful for diurnal load patterns (Fig. 13 of the paper).
    #[must_use]
    pub const fn minute_of_day(self) -> u64 {
        self.0 % MINUTES_PER_DAY
    }

    /// The fractional hour of day in `[0, 24)`.
    #[must_use]
    pub fn hour_of_day(self) -> f64 {
        self.minute_of_day() as f64 / MINUTES_PER_HOUR as f64
    }

    /// The day index since the simulation start (day 0, day 1, …).
    #[must_use]
    pub const fn day_index(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from minutes.
    #[must_use]
    pub const fn from_minutes(minutes: u64) -> Self {
        Self(minutes)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * MINUTES_PER_HOUR)
    }

    /// Creates a duration from days.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        Self(days * MINUTES_PER_DAY)
    }

    /// Length in minutes.
    #[must_use]
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Length in fractional hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// Length in fractional days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 as f64 / MINUTES_PER_DAY as f64
    }

    /// Returns `true` if the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "cannot subtract a later time ({}) from an earlier one ({})",
            rhs.0,
            self.0
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.day_index();
        let minutes = self.minute_of_day();
        write!(f, "d{}+{:02}:{:02}", days, minutes / 60, minutes % 60)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}min", self.0)
    }
}

/// A stepping clock that advances in fixed increments.
///
/// The cluster simulator uses one clock per experiment: 1-minute steps for the real-cluster
/// replay (Fig. 18), 5-minute steps for the week-long large-scale simulation (Fig. 19).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
    step: SimDuration,
    end: SimTime,
}

impl SimClock {
    /// Creates a clock that runs from time zero until `end` (exclusive) in increments of
    /// `step`.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    #[must_use]
    pub fn new(step: SimDuration, end: SimTime) -> Self {
        assert!(!step.is_zero(), "clock step must be non-zero");
        Self {
            now: SimTime::ZERO,
            step,
            end,
        }
    }

    /// The current simulated time.
    #[must_use]
    pub const fn now(&self) -> SimTime {
        self.now
    }

    /// The step size.
    #[must_use]
    pub const fn step(&self) -> SimDuration {
        self.step
    }

    /// The exclusive end time.
    #[must_use]
    pub const fn end(&self) -> SimTime {
        self.end
    }

    /// Returns `true` while the current time is before the end time.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.now < self.end
    }

    /// Advances the clock by one step and returns the new time, or `None` once the end has
    /// been reached.
    pub fn tick(&mut self) -> Option<SimTime> {
        if !self.is_running() {
            return None;
        }
        self.now += self.step;
        Some(self.now)
    }

    /// Iterates over every step boundary from the current time until the end (exclusive),
    /// advancing the clock as it goes.
    pub fn drain(&mut self) -> impl Iterator<Item = SimTime> + '_ {
        std::iter::from_fn(move || {
            if self.is_running() {
                let t = self.now;
                self.now += self.step;
                Some(t)
            } else {
                None
            }
        })
    }

    /// Total number of steps the clock will produce from time zero.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.end.as_minutes().div_ceil(self.step.as_minutes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_hours(2).as_minutes(), 120);
        assert_eq!(SimTime::from_days(1).as_minutes(), MINUTES_PER_DAY);
        assert_eq!(SimDuration::from_days(7).as_minutes(), MINUTES_PER_WEEK);
        assert!((SimTime::from_minutes(90).as_hours() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_hours(36).as_days() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn diurnal_helpers() {
        let t = SimTime::from_minutes(MINUTES_PER_DAY + 90);
        assert_eq!(t.day_index(), 1);
        assert_eq!(t.minute_of_day(), 90);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_minutes(100) + SimDuration::from_minutes(40);
        assert_eq!(t.as_minutes(), 140);
        assert_eq!((t - SimTime::from_minutes(100)).as_minutes(), 40);
        assert_eq!(
            SimTime::from_minutes(10).saturating_since(SimTime::from_minutes(50)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "cannot subtract")]
    fn subtracting_later_time_panics() {
        let _ = SimTime::from_minutes(10) - SimTime::from_minutes(20);
    }

    #[test]
    fn clock_ticks_until_end() {
        let mut clock = SimClock::new(SimDuration::from_minutes(5), SimTime::from_minutes(20));
        assert_eq!(clock.total_steps(), 4);
        let mut seen = vec![clock.now().as_minutes()];
        while let Some(t) = clock.tick() {
            seen.push(t.as_minutes());
        }
        assert_eq!(seen, vec![0, 5, 10, 15, 20]);
        assert!(!clock.is_running());
        assert_eq!(clock.tick(), None);
    }

    #[test]
    fn clock_drain_yields_step_starts() {
        let mut clock = SimClock::new(SimDuration::from_minutes(10), SimTime::from_minutes(30));
        let steps: Vec<u64> = clock.drain().map(|t| t.as_minutes()).collect();
        assert_eq!(steps, vec![0, 10, 20]);
        assert!(!clock.is_running());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_clock_panics() {
        let _ = SimClock::new(SimDuration::ZERO, SimTime::from_minutes(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_minutes(MINUTES_PER_DAY + 75).to_string(), "d1+01:15");
        assert_eq!(SimDuration::from_minutes(30).to_string(), "30min");
    }
}
