//! VM descriptions.
//!
//! Every GPU VM in the studied datacenters occupies a full 8-GPU server (§3.1: "these VMs
//! occupy a full server"), so placement is a VM→server assignment. VMs are either IaaS
//! (opaque, unmodifiable, owned by a customer) or SaaS (provider-managed LLM inference,
//! belonging to an endpoint and reconfigurable).

use crate::endpoints::EndpointId;
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use std::fmt;

/// Unique VM identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VmId(pub u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Identifier of the customer owning an IaaS VM (used for load prediction, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IaasCustomerId(pub u64);

/// What kind of workload a VM runs, and who it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmKind {
    /// Opaque customer VM: the provider sees only its power draw and cannot reconfigure it.
    Iaas {
        /// Owning customer.
        customer: IaasCustomerId,
    },
    /// Provider-managed LLM inference VM: belongs to an endpoint and can be reconfigured.
    Saas {
        /// The SaaS endpoint this VM serves.
        endpoint: EndpointId,
    },
}

impl VmKind {
    /// Returns `true` for SaaS VMs.
    #[must_use]
    pub fn is_saas(&self) -> bool {
        matches!(self, VmKind::Saas { .. })
    }

    /// Returns `true` for IaaS VMs.
    #[must_use]
    pub fn is_iaas(&self) -> bool {
        matches!(self, VmKind::Iaas { .. })
    }

    /// The endpoint of a SaaS VM, if any.
    #[must_use]
    pub fn endpoint(&self) -> Option<EndpointId> {
        match self {
            VmKind::Saas { endpoint } => Some(*endpoint),
            VmKind::Iaas { .. } => None,
        }
    }
}

/// One GPU VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Unique id.
    pub id: VmId,
    /// Workload kind and owner.
    pub kind: VmKind,
    /// When the VM was requested.
    pub arrival: SimTime,
    /// How long the VM lives before being retired.
    pub lifetime: SimDuration,
}

impl Vm {
    /// The time at which the VM retires.
    #[must_use]
    pub fn departure(&self) -> SimTime {
        self.arrival + self.lifetime
    }

    /// Returns `true` if the VM is alive at `time` (arrival inclusive, departure exclusive).
    #[must_use]
    pub fn is_alive_at(&self, time: SimTime) -> bool {
        time >= self.arrival && time < self.departure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_helpers() {
        let saas = VmKind::Saas { endpoint: EndpointId(3) };
        let iaas = VmKind::Iaas { customer: IaasCustomerId(9) };
        assert!(saas.is_saas() && !saas.is_iaas());
        assert!(iaas.is_iaas() && !iaas.is_saas());
        assert_eq!(saas.endpoint(), Some(EndpointId(3)));
        assert_eq!(iaas.endpoint(), None);
    }

    #[test]
    fn lifetime_window() {
        let vm = Vm {
            id: VmId(1),
            kind: VmKind::Iaas { customer: IaasCustomerId(0) },
            arrival: SimTime::from_hours(10),
            lifetime: SimDuration::from_days(2),
        };
        assert_eq!(vm.departure(), SimTime::from_hours(58));
        assert!(!vm.is_alive_at(SimTime::from_hours(9)));
        assert!(vm.is_alive_at(SimTime::from_hours(10)));
        assert!(vm.is_alive_at(SimTime::from_hours(57)));
        assert!(!vm.is_alive_at(SimTime::from_hours(58)));
        assert_eq!(VmId(7).to_string(), "vm-7");
    }
}
