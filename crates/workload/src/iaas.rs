//! IaaS GPU-load traces.
//!
//! IaaS VMs are opaque: the provider sees their power draw but cannot see or change what runs
//! inside (§3.2). For the simulator we generate a per-VM normalized GPU load over time; the
//! datacenter power model then converts it to watts. Each IaaS customer gets its own diurnal
//! phase and intensity so that rows accumulating VMs of the same customer develop the
//! synchronized peaks that produce the heavy-tailed row-power distribution of Fig. 10.

use crate::diurnal::DiurnalPattern;
use crate::vm::{IaasCustomerId, Vm, VmKind};
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimTime;
use std::collections::BTreeMap;

/// Per-customer load behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CustomerProfile {
    pattern: DiurnalPattern,
    /// Long-run intensity multiplier in `(0, 1]` — some customers run their GPUs flat out,
    /// others leave them mostly idle.
    intensity: f64,
}

/// Generates normalized GPU load for IaaS VMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IaasLoadModel {
    profiles: BTreeMap<IaasCustomerId, CustomerProfile>,
    seed: u64,
}

impl IaasLoadModel {
    /// Creates the model for up to `customers` distinct customers.
    #[must_use]
    pub fn new(customers: u64, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).derive("iaas-load");
        let profiles = (0..customers)
            .map(|c| {
                let batchy = rng.chance(0.4);
                let base = if batchy {
                    DiurnalPattern::batchy(seed ^ c)
                } else {
                    DiurnalPattern::interactive(seed ^ c)
                };
                let pattern = base.with_peak_hour(rng.uniform(0.0, 24.0));
                let intensity = rng.uniform(0.35, 1.0);
                (IaasCustomerId(c), CustomerProfile { pattern, intensity })
            })
            .collect();
        Self { profiles, seed }
    }

    /// Number of customer profiles.
    #[must_use]
    pub fn customer_count(&self) -> usize {
        self.profiles.len()
    }

    /// Normalized GPU load in `[0, 1]` of an IaaS VM at a point in time.
    ///
    /// Returns 0 for SaaS VMs (their load comes from the request stream, not this model) and
    /// for VMs that are not alive at `time`.
    #[must_use]
    pub fn load_at(&self, vm: &Vm, time: SimTime) -> f64 {
        if !vm.is_alive_at(time) {
            return 0.0;
        }
        let customer = match vm.kind {
            VmKind::Iaas { customer } => customer,
            VmKind::Saas { .. } => return 0.0,
        };
        let profile = match self.profiles.get(&customer) {
            Some(p) => p,
            // Unknown customer: assume peak load, the conservative choice §4.1 prescribes
            // when historical data is missing.
            None => return 1.0,
        };
        // A small per-VM wobble decorrelates VMs of the same customer without hiding their
        // shared diurnal phase.
        let mut vm_rng = SimRng::seed_from(self.seed ^ vm.id.0.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let wobble = vm_rng.uniform(0.9, 1.1);
        (profile.pattern.load_at(time) * profile.intensity * wobble).clamp(0.0, 1.0)
    }

    /// The predicted peak load of a VM (used by the allocator, §4.1): the customer's intensity
    /// at the top of the diurnal cycle, or 1.0 when the customer is unknown.
    #[must_use]
    pub fn predicted_peak(&self, customer: IaasCustomerId) -> f64 {
        self.profiles
            .get(&customer)
            .map(|p| p.intensity.min(1.0))
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{VmId, VmKind};
    use simkit::stats;
    use simkit::time::SimDuration;

    fn iaas_vm(id: u64, customer: u64) -> Vm {
        Vm {
            id: VmId(id),
            kind: VmKind::Iaas { customer: IaasCustomerId(customer) },
            arrival: SimTime::ZERO,
            lifetime: SimDuration::from_days(30),
        }
    }

    #[test]
    fn load_is_bounded_and_zero_when_dead() {
        let model = IaasLoadModel::new(20, 1);
        assert_eq!(model.customer_count(), 20);
        let vm = iaas_vm(0, 3);
        for m in (0..3 * 1440).step_by(60) {
            let load = model.load_at(&vm, SimTime::from_minutes(m));
            assert!((0.0..=1.0).contains(&load));
        }
        let dead = Vm { lifetime: SimDuration::from_minutes(10), ..vm };
        assert_eq!(model.load_at(&dead, SimTime::from_hours(5)), 0.0);
    }

    #[test]
    fn saas_vms_get_no_iaas_load() {
        let model = IaasLoadModel::new(5, 2);
        let saas = Vm {
            id: VmId(1),
            kind: VmKind::Saas { endpoint: crate::endpoints::EndpointId(0) },
            arrival: SimTime::ZERO,
            lifetime: SimDuration::from_days(10),
        };
        assert_eq!(model.load_at(&saas, SimTime::from_hours(12)), 0.0);
    }

    #[test]
    fn unknown_customer_assumes_peak_load() {
        let model = IaasLoadModel::new(5, 3);
        let vm = iaas_vm(9, 99);
        assert_eq!(model.load_at(&vm, SimTime::from_hours(3)), 1.0);
        assert_eq!(model.predicted_peak(IaasCustomerId(99)), 1.0);
    }

    #[test]
    fn same_customer_vms_are_correlated() {
        let model = IaasLoadModel::new(30, 4);
        let a = iaas_vm(0, 7);
        let b = iaas_vm(1, 7);
        let c = iaas_vm(2, 23);
        let times: Vec<SimTime> = (0..48).map(SimTime::from_hours).collect();
        let load = |vm: &Vm| -> Vec<f64> { times.iter().map(|&t| model.load_at(vm, t)).collect() };
        let la = load(&a);
        let lb = load(&b);
        let lc = load(&c);
        let corr = correlation(&la, &lb);
        let cross = correlation(&la, &lc);
        assert!(corr > 0.9, "same-customer VMs should be strongly correlated, got {corr}");
        assert!(corr > cross, "same-customer correlation should exceed cross-customer");
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let ma = stats::mean(a).unwrap();
        let mb = stats::mean(b).unwrap();
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        if va == 0.0 || vb == 0.0 {
            return 0.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn predicted_peak_bounds_observed_load() {
        let model = IaasLoadModel::new(15, 5);
        for customer in 0..15 {
            let vm = iaas_vm(customer, customer);
            let peak = model.predicted_peak(IaasCustomerId(customer));
            for h in 0..72 {
                let load = model.load_at(&vm, SimTime::from_hours(h));
                assert!(
                    load <= peak * 1.1 + 1e-9,
                    "observed load {load} exceeds predicted peak {peak}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = IaasLoadModel::new(10, 8);
        let b = IaasLoadModel::new(10, 8);
        let vm = iaas_vm(0, 2);
        for h in 0..24 {
            assert_eq!(a.load_at(&vm, SimTime::from_hours(h)), b.load_at(&vm, SimTime::from_hours(h)));
        }
    }
}
