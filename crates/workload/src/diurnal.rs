//! Diurnal load patterns.
//!
//! Fig. 13 shows a representative GPU VM with a distinctly periodic daily load pattern, and
//! the row-level power aggregation inherits the same periodicity. [`DiurnalPattern`] produces
//! a normalized load in `[floor, 1]` as a function of time of day, with a customer-specific
//! phase (different tenants peak at different hours), a weekday/weekend modulation and
//! autocorrelated noise.

use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimTime;

/// A deterministic diurnal load generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Minimum normalized load at the bottom of the nightly trough.
    pub floor: f64,
    /// Hour of day (0–24) at which the load peaks.
    pub peak_hour: f64,
    /// Weekend load multiplier (≤ 1).
    pub weekend_factor: f64,
    /// Amplitude of the per-step noise.
    pub noise: f64,
    /// Seed for the noise stream.
    seed: u64,
}

impl DiurnalPattern {
    /// A typical interactive-service pattern: peak mid-afternoon, deep night trough, quieter
    /// weekends.
    #[must_use]
    pub fn interactive(seed: u64) -> Self {
        Self { floor: 0.25, peak_hour: 15.0, weekend_factor: 0.7, noise: 0.05, seed }
    }

    /// A batch-like pattern with a shallow cycle (e.g. fine-tuning or offline scoring IaaS
    /// tenants): stays near full load with small dips.
    #[must_use]
    pub fn batchy(seed: u64) -> Self {
        Self { floor: 0.7, peak_hour: 2.0, weekend_factor: 1.0, noise: 0.08, seed }
    }

    /// Creates a pattern with an explicit peak hour (used to give each customer its own
    /// phase).
    #[must_use]
    pub fn with_peak_hour(mut self, peak_hour: f64) -> Self {
        self.peak_hour = peak_hour.rem_euclid(24.0);
        self
    }

    /// Normalized load in `[0, 1]` at a point in time.
    #[must_use]
    pub fn load_at(&self, time: SimTime) -> f64 {
        let hour = time.hour_of_day();
        // Cosine bump centred on the peak hour.
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let cycle = 0.5 * (1.0 + phase.cos());
        let base = self.floor + (1.0 - self.floor) * cycle;
        // Day 5 and 6 of each week are the weekend.
        let weekday = time.day_index() % 7;
        let weekend = if weekday >= 5 { self.weekend_factor } else { 1.0 };
        // Deterministic noise: hash the hour index with the seed so queries are pure.
        let hour_index = time.as_minutes() / 60;
        let mut rng = SimRng::seed_from(self.seed ^ hour_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let noise = rng.normal(0.0, self.noise);
        (base * weekend + noise).clamp(0.0, 1.0)
    }

    /// The average load over one full week, sampled every 10 minutes.
    #[must_use]
    pub fn weekly_mean(&self) -> f64 {
        let samples: Vec<f64> = (0..7 * 24 * 6)
            .map(|i| self.load_at(SimTime::from_minutes(i * 10)))
            .collect();
        simkit::stats::mean(&samples).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats;

    #[test]
    fn load_is_bounded_and_pure() {
        let pattern = DiurnalPattern::interactive(1);
        for m in (0..7 * 1440).step_by(30) {
            let t = SimTime::from_minutes(m);
            let v = pattern.load_at(t);
            assert!((0.0..=1.0).contains(&v));
            assert_eq!(v, pattern.load_at(t), "repeated queries must agree");
        }
    }

    #[test]
    fn peak_hour_is_hotter_than_trough() {
        let pattern = DiurnalPattern::interactive(2);
        let mut peak = Vec::new();
        let mut trough = Vec::new();
        for day in 0..5 {
            peak.push(pattern.load_at(SimTime::from_minutes(day * 1440 + 15 * 60)));
            trough.push(pattern.load_at(SimTime::from_minutes(day * 1440 + 3 * 60)));
        }
        assert!(stats::mean(&peak).unwrap() > stats::mean(&trough).unwrap() + 0.4);
    }

    #[test]
    fn weekend_is_quieter_for_interactive() {
        let pattern = DiurnalPattern::interactive(3);
        // Compare the same hour on a weekday (day 2) and a weekend day (day 5).
        let weekday = pattern.load_at(SimTime::from_minutes(2 * 1440 + 15 * 60));
        let weekend = pattern.load_at(SimTime::from_minutes(5 * 1440 + 15 * 60));
        assert!(weekend < weekday);
        // Batch-like tenants do not slow down at the weekend (modulo noise).
        let batch = DiurnalPattern::batchy(3);
        let wd = batch.load_at(SimTime::from_minutes(2 * 1440 + 2 * 60));
        let we = batch.load_at(SimTime::from_minutes(5 * 1440 + 2 * 60));
        assert!((wd - we).abs() < 0.3);
    }

    #[test]
    fn with_peak_hour_shifts_the_phase() {
        let morning = DiurnalPattern::interactive(4).with_peak_hour(6.0);
        let evening = DiurnalPattern::interactive(4).with_peak_hour(20.0);
        let at_six = SimTime::from_minutes(6 * 60);
        assert!(morning.load_at(at_six) > evening.load_at(at_six));
        // Peak hours wrap modulo 24.
        let wrapped = DiurnalPattern::interactive(4).with_peak_hour(30.0);
        assert!((wrapped.peak_hour - 6.0).abs() < 1e-12);
    }

    #[test]
    fn batchy_pattern_has_higher_mean_than_interactive() {
        let interactive = DiurnalPattern::interactive(5);
        let batchy = DiurnalPattern::batchy(5);
        assert!(batchy.weekly_mean() > interactive.weekly_mean() + 0.15);
        assert!(interactive.weekly_mean() > 0.3);
    }
}
