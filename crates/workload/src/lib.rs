//! # workload — workload substrate for the TAPAS reproduction
//!
//! §3 of the paper characterizes the GPU workloads the cloud hosts: a mix of opaque IaaS VMs
//! and provider-managed SaaS LLM-inference VMs, long VM lifetimes, strongly diurnal load, and
//! power that is predictable from history. This crate generates synthetic traces with those
//! statistical shapes:
//!
//! * [`vm`] — VM descriptions (IaaS vs SaaS, owning customer or endpoint, lifetime).
//! * [`arrivals`] — VM arrival/lifetime generators calibrated to Fig. 12a (most GPU VMs live
//!   for weeks) and the evaluation's 50/50 IaaS/SaaS split.
//! * [`endpoints`] — SaaS endpoint catalog (Fig. 12b: a few endpoints own most VMs; the
//!   evaluation uses 10 endpoints of 23–100 VMs).
//! * [`diurnal`] — diurnal request-rate / load generators (Fig. 13).
//! * [`iaas`] — opaque IaaS GPU-load traces (the provider only sees power, not what runs).
//! * [`prediction`] — template-based power prediction (P50/P90/P99 of the previous week,
//!   Fig. 14) used by the TAPAS allocator and router.
//! * [`trace`] — Azure-LLM-inference-style CSV/JSONL trace ingestion with typed errors,
//!   feeding the request fabric (per-request replay) and `with_arrivals` (VM replay).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod diurnal;
pub mod endpoints;
pub mod iaas;
pub mod prediction;
pub mod trace;
pub mod vm;

pub use arrivals::{ArrivalConfig, VmArrivalGenerator};
pub use diurnal::DiurnalPattern;
pub use endpoints::{Endpoint, EndpointCatalog, EndpointId};
pub use iaas::IaasLoadModel;
pub use prediction::{PowerTemplate, TemplateKind};
pub use trace::{parse_csv, parse_jsonl, vm_arrivals_from_trace, TraceError, TraceRecord};
pub use vm::{Vm, VmId, VmKind};
