//! VM arrival and lifetime generation.
//!
//! The evaluation replays a one-week VM arrival trace with a 50/50 IaaS/SaaS split over about
//! a thousand servers (§5.1). Fig. 12a shows that GPU VMs are long-lived — over 60 % run for
//! more than two weeks — so within any one week most of the population is already resident.
//! The generator therefore produces (1) an *initial population* that occupies a configurable
//! fraction of the cluster at time zero and (2) a stream of additional arrivals during the
//! simulated horizon, both with lifetimes drawn from a long-tailed distribution calibrated to
//! Fig. 12a.

use crate::endpoints::EndpointCatalog;
use crate::vm::{IaasCustomerId, Vm, VmId, VmKind};
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// Configuration of the arrival generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Fraction of generated VMs that are SaaS (the paper's default evaluation mix is 0.5).
    pub saas_fraction: f64,
    /// Number of servers the initial population should occupy.
    pub initial_population: usize,
    /// Mean number of additional VM arrivals per day during the horizon.
    pub arrivals_per_day: f64,
    /// Number of distinct IaaS customers.
    pub iaas_customers: u64,
    /// Simulation horizon; arrivals are generated in `[0, horizon)`.
    pub horizon: SimTime,
}

impl ArrivalConfig {
    /// The paper's one-week evaluation shape for a cluster of `servers` servers.
    #[must_use]
    pub fn evaluation_week(servers: usize) -> Self {
        Self {
            saas_fraction: 0.5,
            initial_population: servers * 9 / 10,
            arrivals_per_day: (servers as f64 * 0.05).max(1.0),
            iaas_customers: 40,
            horizon: SimTime::from_days(7),
        }
    }
}

/// Generates VMs (initial population + arrivals) for one simulation run.
#[derive(Debug, Clone)]
pub struct VmArrivalGenerator {
    config: ArrivalConfig,
    rng: SimRng,
    next_id: u64,
}

impl VmArrivalGenerator {
    /// Creates a generator.
    #[must_use]
    pub fn new(config: ArrivalConfig, seed: u64) -> Self {
        Self { config, rng: SimRng::seed_from(seed).derive("vm-arrivals"), next_id: 0 }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ArrivalConfig {
        &self.config
    }

    /// Draws a VM lifetime matching Fig. 12a: ≈20 % of VMs are short-lived (hours to a couple
    /// of days), the rest long-lived with more than 60 % exceeding two weeks.
    pub fn draw_lifetime(&mut self) -> SimDuration {
        let u = self.rng.uniform(0.0, 1.0);
        let days = if u < 0.2 {
            // Short-lived: 2 hours to 2 days.
            self.rng.uniform(2.0 / 24.0, 2.0)
        } else if u < 0.4 {
            // Medium: 2 days to 2 weeks.
            self.rng.uniform(2.0, 14.0)
        } else {
            // Long-lived: 2 weeks to 10 weeks.
            self.rng.uniform(14.0, 70.0)
        };
        SimDuration::from_minutes((days * 24.0 * 60.0).round().max(1.0) as u64)
    }

    /// Draws the kind of the next VM, spreading SaaS VMs across the catalog's endpoints
    /// proportionally to their VM demand.
    fn draw_kind(&mut self, catalog: &EndpointCatalog) -> VmKind {
        let is_saas = !catalog.is_empty() && self.rng.chance(self.config.saas_fraction);
        if is_saas {
            let weights: Vec<f64> =
                catalog.endpoints().iter().map(|e| e.vm_count.max(1) as f64).collect();
            let idx = self.rng.weighted_index(&weights);
            VmKind::Saas { endpoint: catalog.endpoints()[idx].id }
        } else {
            VmKind::Iaas {
                customer: IaasCustomerId(self.rng.next_u64() % self.config.iaas_customers),
            }
        }
    }

    fn next_vm(&mut self, arrival: SimTime, kind: VmKind, lifetime: SimDuration) -> Vm {
        let id = VmId(self.next_id);
        self.next_id += 1;
        Vm { id, kind, arrival, lifetime }
    }

    /// Generates the initial resident population (arrival time zero, lifetimes long enough to
    /// outlive their draw even though part of it notionally elapsed before the simulation).
    pub fn initial_population(&mut self, catalog: &EndpointCatalog) -> Vec<Vm> {
        (0..self.config.initial_population)
            .map(|_| {
                let kind = self.draw_kind(catalog);
                let lifetime = self.draw_lifetime();
                self.next_vm(SimTime::ZERO, kind, lifetime)
            })
            .collect()
    }

    /// Generates the additional arrivals over the horizon as a Poisson process.
    pub fn arrivals(&mut self, catalog: &EndpointCatalog) -> Vec<Vm> {
        let horizon_days = self.config.horizon.as_days();
        let mean_total = self.config.arrivals_per_day * horizon_days;
        let count = self.rng.poisson(mean_total);
        let mut vms: Vec<Vm> = (0..count)
            .map(|_| {
                let minute = self
                    .rng
                    .uniform(0.0, self.config.horizon.as_minutes().max(1) as f64)
                    as u64;
                let kind = self.draw_kind(catalog);
                let lifetime = self.draw_lifetime();
                self.next_vm(SimTime::from_minutes(minute), kind, lifetime)
            })
            .collect();
        vms.sort_by_key(|vm| vm.arrival);
        vms
    }

    /// Generates the whole trace: initial population followed by the arrival stream.
    pub fn generate(&mut self, catalog: &EndpointCatalog) -> Vec<Vm> {
        let mut all = self.initial_population(catalog);
        all.extend(self.arrivals(catalog));
        all
    }
}

/// Deterministic weighted splitter for partitioning one arrival stream across sites.
///
/// Implements smooth weighted round-robin: each call adds every site's weight to its
/// running credit, picks the site with the highest credit (ties break toward the lowest
/// index), and charges the winner the total weight. Over any window the assignment counts
/// track the weights, the sequence is a pure function of the weights (no RNG), and with
/// equal weights it degenerates to plain round-robin starting at site 0 — the naive
/// geo-oblivious baseline a headroom-seeking fleet router is compared against.
#[derive(Debug, Clone)]
pub struct WeightedSplitter {
    weights: Vec<f64>,
    credit: Vec<f64>,
    total: f64,
}

impl WeightedSplitter {
    /// Creates a splitter over per-site weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, any weight is negative or non-finite, or all weights
    /// are zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "splitter needs at least one site");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        Self { weights: weights.to_vec(), credit: vec![0.0; weights.len()], total }
    }

    /// Number of sites the splitter spreads over.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.weights.len()
    }

    /// The site receiving the next item.
    pub fn next_site(&mut self) -> usize {
        let mut best = 0usize;
        let mut best_credit = f64::NEG_INFINITY;
        for (site, (credit, weight)) in self.credit.iter_mut().zip(&self.weights).enumerate()
        {
            *credit += *weight;
            if *credit > best_credit {
                best_credit = *credit;
                best = site;
            }
        }
        self.credit[best] -= self.total;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> EndpointCatalog {
        EndpointCatalog::evaluation(10, 10.0, 42)
    }

    #[test]
    fn lifetimes_match_fig12a() {
        let mut generator =
            VmArrivalGenerator::new(ArrivalConfig::evaluation_week(1000), 1);
        let lifetimes: Vec<f64> = (0..5000).map(|_| generator.draw_lifetime().as_days()).collect();
        let over_two_weeks =
            lifetimes.iter().filter(|&&d| d >= 14.0).count() as f64 / lifetimes.len() as f64;
        assert!(
            (0.55..0.70).contains(&over_two_weeks),
            "over 60 % of VMs should live more than two weeks, got {over_two_weeks}"
        );
        assert!(lifetimes.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn initial_population_has_requested_size_and_mix() {
        let config = ArrivalConfig::evaluation_week(1000);
        let mut generator = VmArrivalGenerator::new(config.clone(), 2);
        let population = generator.initial_population(&catalog());
        assert_eq!(population.len(), config.initial_population);
        let saas = population.iter().filter(|vm| vm.kind.is_saas()).count() as f64;
        let fraction = saas / population.len() as f64;
        assert!((fraction - 0.5).abs() < 0.05, "saas fraction {fraction}");
        assert!(population.iter().all(|vm| vm.arrival == SimTime::ZERO));
        // Ids are unique.
        let mut ids: Vec<u64> = population.iter().map(|vm| vm.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), population.len());
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let config = ArrivalConfig::evaluation_week(1000);
        let mut generator = VmArrivalGenerator::new(config.clone(), 3);
        let arrivals = generator.arrivals(&catalog());
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(arrivals.iter().all(|vm| vm.arrival < config.horizon));
        // Roughly arrivals_per_day × 7 arrivals.
        let expected = config.arrivals_per_day * 7.0;
        assert!((arrivals.len() as f64 - expected).abs() < expected * 0.5);
    }

    #[test]
    fn saas_fraction_zero_and_one_are_respected() {
        let mut config = ArrivalConfig::evaluation_week(200);
        config.saas_fraction = 0.0;
        let mut generator = VmArrivalGenerator::new(config.clone(), 4);
        assert!(generator
            .initial_population(&catalog())
            .iter()
            .all(|vm| vm.kind.is_iaas()));
        config.saas_fraction = 1.0;
        let mut generator = VmArrivalGenerator::new(config, 4);
        assert!(generator
            .initial_population(&catalog())
            .iter()
            .all(|vm| vm.kind.is_saas()));
    }

    #[test]
    fn empty_catalog_forces_iaas() {
        let mut config = ArrivalConfig::evaluation_week(100);
        config.saas_fraction = 1.0;
        let mut generator = VmArrivalGenerator::new(config, 5);
        let empty = EndpointCatalog::from_endpoints(Vec::new());
        assert!(generator.initial_population(&empty).iter().all(|vm| vm.kind.is_iaas()));
    }

    #[test]
    fn deterministic_given_seed() {
        let config = ArrivalConfig::evaluation_week(300);
        let mut a = VmArrivalGenerator::new(config.clone(), 9);
        let mut b = VmArrivalGenerator::new(config, 9);
        assert_eq!(a.generate(&catalog()), b.generate(&catalog()));
    }

    #[test]
    fn equal_weights_split_round_robin_from_site_zero() {
        let mut splitter = WeightedSplitter::new(&[1.0, 1.0, 1.0]);
        let sites: Vec<usize> = (0..6).map(|_| splitter.next_site()).collect();
        assert_eq!(sites, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weighted_split_tracks_the_weights() {
        let mut splitter = WeightedSplitter::new(&[3.0, 1.0]);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[splitter.next_site()] += 1;
        }
        assert_eq!(counts, [3000, 1000]);
        // A zero-weight site never receives anything.
        let mut skewed = WeightedSplitter::new(&[0.0, 1.0]);
        assert!((0..100).all(|_| skewed.next_site() == 1));
    }

    #[test]
    fn splitter_is_deterministic() {
        let mut a = WeightedSplitter::new(&[2.0, 1.0, 1.0]);
        let mut b = WeightedSplitter::new(&[2.0, 1.0, 1.0]);
        let seq_a: Vec<usize> = (0..64).map(|_| a.next_site()).collect();
        let seq_b: Vec<usize> = (0..64).map(|_| b.next_site()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn all_zero_weights_panic() {
        let _ = WeightedSplitter::new(&[0.0, 0.0]);
    }
}
