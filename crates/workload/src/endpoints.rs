//! SaaS endpoint catalog.
//!
//! The SaaS offering serves multiple LLM inference endpoints, each backed by a dedicated set
//! of VMs across which the load balancer routes requests (§3.2). Fig. 12b shows a heavy-tailed
//! endpoint-size distribution: half of all SaaS VMs belong to endpoints with more than 100
//! VMs. The evaluation (§5.1) uses 10 endpoints with 23–100 VMs each; the catalog supports
//! both shapes.

use llm_sim::config::InstanceConfig;
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use std::fmt;

/// Unique endpoint identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "endpoint-{}", self.0)
    }
}

/// One SaaS LLM-inference endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    /// Unique id.
    pub id: EndpointId,
    /// Number of VMs (instances) the endpoint runs.
    pub vm_count: usize,
    /// Default serving configuration for the endpoint's instances.
    pub default_config: InstanceConfig,
    /// Peak aggregate request rate (requests per minute) at the top of the diurnal cycle.
    pub peak_requests_per_minute: f64,
    /// Quality SLO: the minimum average result quality (`[0, 1]`) the endpoint must deliver.
    pub quality_slo: f64,
    /// Number of distinct customers issuing requests to this endpoint.
    pub customers: u64,
}

impl Endpoint {
    /// Peak request rate per VM, assuming perfectly balanced routing.
    #[must_use]
    pub fn peak_rate_per_vm(&self) -> f64 {
        if self.vm_count == 0 {
            0.0
        } else {
            self.peak_requests_per_minute / self.vm_count as f64
        }
    }
}

/// A catalog of endpoints for one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointCatalog {
    endpoints: Vec<Endpoint>,
}

impl EndpointCatalog {
    /// The evaluation-scale catalog (§5.1): `count` endpoints with VM counts drawn uniformly
    /// between 23 and 100, each serving Llama-2 70B by default.
    ///
    /// `requests_per_vm_per_minute` sets the peak load level: the paper's instances are sized
    /// so that at peak load each VM serves on the order of tens of requests per minute.
    #[must_use]
    pub fn evaluation(count: usize, requests_per_vm_per_minute: f64, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).derive("endpoints");
        let endpoints = (0..count)
            .map(|i| {
                let vm_count = rng.uniform_usize(23, 101);
                Endpoint {
                    id: EndpointId(i as u64),
                    vm_count,
                    default_config: InstanceConfig::default_70b(),
                    peak_requests_per_minute: requests_per_vm_per_minute * vm_count as f64,
                    quality_slo: 0.9,
                    customers: 200 + rng.uniform_usize(0, 2000) as u64,
                }
            })
            .collect();
        Self { endpoints }
    }

    /// A production-shaped catalog whose VM counts follow the heavy-tailed distribution of
    /// Fig. 12b (sizes drawn from a bounded Pareto between 2 and 500 VMs).
    #[must_use]
    pub fn production_shaped(count: usize, requests_per_vm_per_minute: f64, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).derive("endpoints-heavy");
        let endpoints = (0..count)
            .map(|i| {
                let vm_count = rng.bounded_pareto(2.0, 500.0, 0.8).round().max(1.0) as usize;
                Endpoint {
                    id: EndpointId(i as u64),
                    vm_count,
                    default_config: InstanceConfig::default_70b(),
                    peak_requests_per_minute: requests_per_vm_per_minute * vm_count as f64,
                    quality_slo: 0.9,
                    customers: 100 + rng.uniform_usize(0, 5000) as u64,
                }
            })
            .collect();
        Self { endpoints }
    }

    /// Builds a catalog from explicit endpoints.
    #[must_use]
    pub fn from_endpoints(endpoints: Vec<Endpoint>) -> Self {
        Self { endpoints }
    }

    /// All endpoints.
    #[must_use]
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Looks up an endpoint.
    #[must_use]
    pub fn get(&self, id: EndpointId) -> Option<&Endpoint> {
        self.endpoints.iter().find(|e| e.id == id)
    }

    /// Number of endpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Returns `true` if the catalog has no endpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Total VM demand across all endpoints.
    #[must_use]
    pub fn total_vms(&self) -> usize {
        self.endpoints.iter().map(|e| e.vm_count).sum()
    }

    /// Scales every endpoint's VM count by `factor` (at least one VM each), preserving the
    /// per-VM request rate. Used to fit the catalog to a target cluster size.
    #[must_use]
    pub fn scaled_to_total_vms(&self, target_total: usize) -> Self {
        let current = self.total_vms().max(1);
        let factor = target_total as f64 / current as f64;
        let endpoints = self
            .endpoints
            .iter()
            .map(|e| {
                let per_vm_rate = e.peak_rate_per_vm();
                let vm_count = ((e.vm_count as f64 * factor).round() as usize).max(1);
                Endpoint {
                    id: e.id,
                    vm_count,
                    default_config: e.default_config,
                    peak_requests_per_minute: per_vm_rate * vm_count as f64,
                    quality_slo: e.quality_slo,
                    customers: e.customers,
                }
            })
            .collect();
        Self { endpoints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats;

    #[test]
    fn evaluation_catalog_matches_paper_shape() {
        let catalog = EndpointCatalog::evaluation(10, 10.0, 42);
        assert_eq!(catalog.len(), 10);
        assert!(!catalog.is_empty());
        for e in catalog.endpoints() {
            assert!((23..=100).contains(&e.vm_count), "vm count {}", e.vm_count);
            assert!((e.peak_requests_per_minute - 10.0 * e.vm_count as f64).abs() < 1e-9);
            assert!((e.peak_rate_per_vm() - 10.0).abs() < 1e-9);
            assert_eq!(e.quality_slo, 0.9);
        }
        assert_eq!(catalog.get(EndpointId(3)).unwrap().id, EndpointId(3));
        assert!(catalog.get(EndpointId(99)).is_none());
    }

    #[test]
    fn production_catalog_is_heavy_tailed() {
        let catalog = EndpointCatalog::production_shaped(300, 10.0, 7);
        let sizes: Vec<f64> = catalog.endpoints().iter().map(|e| e.vm_count as f64).collect();
        let p50 = stats::percentile(&sizes, 50.0).unwrap();
        let max = stats::max(&sizes).unwrap();
        assert!(max > 8.0 * p50, "distribution should be heavy tailed: p50={p50} max={max}");
        // Fig. 12b: a large share of all VMs belongs to big endpoints.
        let total: f64 = sizes.iter().sum();
        let in_big: f64 = sizes.iter().filter(|&&s| s >= 100.0).sum();
        assert!(in_big / total > 0.25, "big endpoints should own a large share of VMs");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = EndpointCatalog::evaluation(10, 10.0, 1);
        let b = EndpointCatalog::evaluation(10, 10.0, 1);
        let c = EndpointCatalog::evaluation(10, 10.0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scaling_preserves_per_vm_rate() {
        let catalog = EndpointCatalog::evaluation(10, 12.0, 3);
        let scaled = catalog.scaled_to_total_vms(40);
        assert!(scaled.total_vms() >= 10, "every endpoint keeps at least one VM");
        assert!(scaled.total_vms() < catalog.total_vms());
        for e in scaled.endpoints() {
            assert!((e.peak_rate_per_vm() - 12.0).abs() < 1e-9);
            assert!(e.vm_count >= 1);
        }
    }

    #[test]
    fn empty_endpoint_rate_is_zero() {
        let e = Endpoint {
            id: EndpointId(0),
            vm_count: 0,
            default_config: InstanceConfig::default_70b(),
            peak_requests_per_minute: 50.0,
            quality_slo: 0.9,
            customers: 10,
        };
        assert_eq!(e.peak_rate_per_vm(), 0.0);
        assert_eq!(EndpointId(4).to_string(), "endpoint-4");
    }
}
