//! Inference-trace ingestion: Azure-LLM-inference-style CSV and JSONL parsers.
//!
//! Public LLM inference traces (e.g. the Azure LLM inference dataset) are tables of
//! per-request rows: an arrival timestamp, the endpoint (deployment) the request hit, and
//! the prompt/output token counts. This module parses both common encodings into
//! [`TraceRecord`]s with typed [`TraceError`]s, and converts record streams into the two
//! replay shapes the simulator consumes:
//!
//! * the request fabric replays records directly (each record is one
//!   `InferenceRequest`-shaped event), and
//! * `ClusterSimulator::with_arrivals` takes a VM arrival stream, which
//!   [`vm_arrivals_from_trace`] synthesizes by mapping each record's endpoint activity
//!   onto SaaS VM arrivals.
//!
//! Column order in CSV is discovered from the header line; JSONL uses the same field
//! names (`timestamp_ms`, `endpoint`, `prompt_tokens`, `output_tokens`).

use crate::endpoints::EndpointId;
use crate::vm::{Vm, VmId, VmKind};
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use std::fmt;

/// One parsed trace row: a single inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time in milliseconds from the trace origin.
    pub timestamp_ms: u64,
    /// Endpoint (deployment) identifier.
    pub endpoint: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub output_tokens: u32,
}

/// Typed trace-parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input contains no records (CSV: no data lines after the header).
    Empty,
    /// The CSV header is missing a required column.
    MissingColumn {
        /// The absent column name.
        column: &'static str,
    },
    /// A data line has fewer fields than the header declares.
    MissingField {
        /// 1-based line number in the input.
        line: usize,
        /// The field that was absent.
        field: &'static str,
    },
    /// A field failed to parse as the expected integer type.
    InvalidField {
        /// 1-based line number in the input.
        line: usize,
        /// The offending field.
        field: &'static str,
        /// The raw text that failed to parse.
        value: String,
    },
    /// A JSONL line is not a valid JSON object of the expected shape.
    MalformedLine {
        /// 1-based line number in the input.
        line: usize,
        /// Parser diagnostic.
        reason: String,
    },
    /// Timestamps must be non-decreasing (traces are replayed as event streams).
    UnsortedTimestamp {
        /// 1-based line number of the out-of-order record.
        line: usize,
    },
    /// A record names an endpoint the experiment's catalog does not contain.
    UnknownEndpoint {
        /// The unresolvable endpoint id.
        endpoint: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no records"),
            TraceError::MissingColumn { column } => {
                write!(f, "trace header is missing the `{column}` column")
            }
            TraceError::MissingField { line, field } => {
                write!(f, "line {line}: missing `{field}` field")
            }
            TraceError::InvalidField { line, field, value } => {
                write!(f, "line {line}: `{field}` value `{value}` is not a valid number")
            }
            TraceError::MalformedLine { line, reason } => {
                write!(f, "line {line}: malformed record ({reason})")
            }
            TraceError::UnsortedTimestamp { line } => {
                write!(f, "line {line}: timestamp decreases (trace must be time-sorted)")
            }
            TraceError::UnknownEndpoint { endpoint } => {
                write!(f, "trace endpoint {endpoint} is not in the experiment's catalog")
            }
        }
    }
}

impl std::error::Error for TraceError {}

const COLUMNS: [&str; 4] = ["timestamp_ms", "endpoint", "prompt_tokens", "output_tokens"];

/// Parses a CSV trace: a header line naming at least the four required columns
/// (`timestamp_ms`, `endpoint`, `prompt_tokens`, `output_tokens`, any order, extra
/// columns ignored) followed by one record per line. Blank lines are skipped.
///
/// # Errors
/// Returns a [`TraceError`] naming the first offending line/column.
pub fn parse_csv(input: &str) -> Result<Vec<TraceRecord>, TraceError> {
    let mut lines = input.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, line)) if line.trim().is_empty() => continue,
            Some((_, line)) => break line,
            None => return Err(TraceError::Empty),
        }
    };
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let mut positions = [0usize; 4];
    for (slot, column) in COLUMNS.iter().enumerate() {
        positions[slot] = names
            .iter()
            .position(|name| name == column)
            .ok_or(TraceError::MissingColumn { column })?;
    }

    let mut records = Vec::new();
    for (index, line) in lines {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let mut values = [0u64; 4];
        for (slot, &column) in COLUMNS.iter().enumerate() {
            let raw = *fields
                .get(positions[slot])
                .ok_or(TraceError::MissingField { line: line_no, field: column })?;
            values[slot] = raw.parse::<u64>().map_err(|_| TraceError::InvalidField {
                line: line_no,
                field: column,
                value: raw.to_string(),
            })?;
        }
        push_record(&mut records, values, line_no)?;
    }
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(records)
}

/// Parses a JSONL trace: one JSON object per line with the same field names as the CSV
/// columns. Blank lines are skipped.
///
/// # Errors
/// Returns a [`TraceError`] naming the first offending line.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceRecord>, TraceError> {
    let mut records = Vec::new();
    for (index, line) in input.lines().enumerate() {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let record: TraceRecord = serde_json::from_str(line).map_err(|err| {
            TraceError::MalformedLine { line: line_no, reason: err.to_string() }
        })?;
        push_record(
            &mut records,
            [
                record.timestamp_ms,
                record.endpoint,
                u64::from(record.prompt_tokens),
                u64::from(record.output_tokens),
            ],
            line_no,
        )?;
    }
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(records)
}

fn push_record(
    records: &mut Vec<TraceRecord>,
    values: [u64; 4],
    line_no: usize,
) -> Result<(), TraceError> {
    if records.last().is_some_and(|prev| prev.timestamp_ms > values[0]) {
        return Err(TraceError::UnsortedTimestamp { line: line_no });
    }
    records.push(TraceRecord {
        timestamp_ms: values[0],
        endpoint: values[1],
        prompt_tokens: u32::try_from(values[2]).map_err(|_| TraceError::InvalidField {
            line: line_no,
            field: "prompt_tokens",
            value: values[2].to_string(),
        })?,
        output_tokens: u32::try_from(values[3]).map_err(|_| TraceError::InvalidField {
            line: line_no,
            field: "output_tokens",
            value: values[3].to_string(),
        })?,
    });
    Ok(())
}

/// Synthesizes a VM arrival stream from a request trace for
/// `ClusterSimulator::with_arrivals`: the first request each endpoint receives spawns
/// one SaaS VM for that endpoint (arrival rounded down to the trace minute, living for
/// `lifetime`), mirroring how capacity follows traffic in the studied clusters. Records
/// stay time-sorted, so the resulting stream is time-sorted too.
#[must_use]
pub fn vm_arrivals_from_trace(records: &[TraceRecord], lifetime: SimDuration) -> Vec<Vm> {
    let mut seen: Vec<u64> = Vec::new();
    let mut vms = Vec::new();
    for record in records {
        if seen.contains(&record.endpoint) {
            continue;
        }
        seen.push(record.endpoint);
        vms.push(Vm {
            id: VmId(vms.len() as u64),
            kind: VmKind::Saas { endpoint: EndpointId(record.endpoint) },
            arrival: SimTime::from_minutes(record.timestamp_ms / 60_000),
            lifetime,
        });
    }
    vms
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
timestamp_ms,endpoint,prompt_tokens,output_tokens
0,0,512,128
1500,1,200,40
1500,0,900,220
60000,1,333,77
";

    #[test]
    fn csv_parses_in_order() {
        let records = parse_csv(CSV).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(
            records[0],
            TraceRecord { timestamp_ms: 0, endpoint: 0, prompt_tokens: 512, output_tokens: 128 }
        );
        assert_eq!(records[3].timestamp_ms, 60_000);
    }

    #[test]
    fn csv_accepts_reordered_and_extra_columns() {
        let input = "\
endpoint,region,output_tokens,timestamp_ms,prompt_tokens
3,westus,64,100,512
";
        let records = parse_csv(input).unwrap();
        assert_eq!(
            records[0],
            TraceRecord { timestamp_ms: 100, endpoint: 3, prompt_tokens: 512, output_tokens: 64 }
        );
    }

    #[test]
    fn csv_errors_are_typed_and_positioned() {
        assert_eq!(parse_csv(""), Err(TraceError::Empty));
        assert_eq!(
            parse_csv("timestamp_ms,endpoint,prompt_tokens\n1,2,3\n"),
            Err(TraceError::MissingColumn { column: "output_tokens" })
        );
        assert_eq!(
            parse_csv("timestamp_ms,endpoint,prompt_tokens,output_tokens\n5,0,10\n"),
            Err(TraceError::MissingField { line: 2, field: "output_tokens" })
        );
        assert_eq!(
            parse_csv("timestamp_ms,endpoint,prompt_tokens,output_tokens\n5,zero,10,10\n"),
            Err(TraceError::InvalidField {
                line: 2,
                field: "endpoint",
                value: "zero".to_string()
            })
        );
        assert_eq!(
            parse_csv("timestamp_ms,endpoint,prompt_tokens,output_tokens\n9,0,1,1\n5,0,1,1\n"),
            Err(TraceError::UnsortedTimestamp { line: 3 })
        );
        // Errors display as readable messages.
        let msg = TraceError::InvalidField {
            line: 2,
            field: "endpoint",
            value: "zero".to_string(),
        }
        .to_string();
        assert!(msg.contains("line 2") && msg.contains("endpoint"));
    }

    #[test]
    fn jsonl_round_trips_the_csv_shape() {
        let jsonl = "\
{\"timestamp_ms\":0,\"endpoint\":0,\"prompt_tokens\":512,\"output_tokens\":128}
{\"timestamp_ms\":1500,\"endpoint\":1,\"prompt_tokens\":200,\"output_tokens\":40}

{\"timestamp_ms\":1500,\"endpoint\":0,\"prompt_tokens\":900,\"output_tokens\":220}
{\"timestamp_ms\":60000,\"endpoint\":1,\"prompt_tokens\":333,\"output_tokens\":77}
";
        assert_eq!(parse_jsonl(jsonl).unwrap(), parse_csv(CSV).unwrap());
    }

    #[test]
    fn jsonl_errors_name_the_line() {
        assert_eq!(parse_jsonl(""), Err(TraceError::Empty));
        match parse_jsonl("{\"timestamp_ms\":0}\n") {
            Err(TraceError::MalformedLine { line: 1, .. }) => {}
            other => panic!("expected MalformedLine, got {other:?}"),
        }
        assert_eq!(
            parse_jsonl(
                "{\"timestamp_ms\":9,\"endpoint\":0,\"prompt_tokens\":1,\"output_tokens\":1}\n\
                 {\"timestamp_ms\":5,\"endpoint\":0,\"prompt_tokens\":1,\"output_tokens\":1}\n"
            ),
            Err(TraceError::UnsortedTimestamp { line: 2 })
        );
    }

    #[test]
    fn vm_arrivals_follow_first_endpoint_appearance() {
        let records = parse_csv(CSV).unwrap();
        let vms = vm_arrivals_from_trace(&records, SimDuration::from_days(7));
        assert_eq!(vms.len(), 2);
        assert_eq!(vms[0].kind, VmKind::Saas { endpoint: EndpointId(0) });
        assert_eq!(vms[0].arrival, SimTime::ZERO);
        assert_eq!(vms[1].kind, VmKind::Saas { endpoint: EndpointId(1) });
        assert_eq!(vms[1].arrival, SimTime::from_minutes(0));
        assert_eq!(vms[0].id, VmId(0));
        assert_eq!(vms[1].id, VmId(1));
    }
}
