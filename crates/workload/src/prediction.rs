//! Template-based power prediction (Fig. 14).
//!
//! §3.1 shows that both row-level and per-VM power are predictable from the previous week's
//! history using percentile *templates*: the predicted draw for a given hour of the week is a
//! chosen percentile (P50/P90/P99) of the values observed at that hour in the past. The
//! conservative P99 template under-predicts for fewer than 4 % of row-hours, and TAPAS's
//! allocator and router use these templates to estimate peak airflow and power demand.

use serde::{Deserialize, Serialize};
use simkit::stats;
use simkit::time::SimTime;

/// Which percentile of the historical values the template stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Median template.
    P50,
    /// 90th-percentile template.
    P90,
    /// 99th-percentile template (the conservative choice of §4.1).
    P99,
}

impl TemplateKind {
    /// The percentile this kind corresponds to.
    #[must_use]
    pub fn percentile(self) -> f64 {
        match self {
            TemplateKind::P50 => 50.0,
            TemplateKind::P90 => 90.0,
            TemplateKind::P99 => 99.0,
        }
    }
}

/// A per-hour-of-week percentile template of a power (or load) signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTemplate {
    kind: TemplateKind,
    /// One predicted value per hour of the week (168 entries).
    per_hour: Vec<f64>,
}

/// Number of hours in a week.
const HOURS_PER_WEEK: usize = 7 * 24;

impl PowerTemplate {
    /// Fits a template to a history of `(time, value)` samples.
    ///
    /// Samples are grouped by hour of week; hours with no samples fall back to the global
    /// percentile (or to the maximum observed value for the P99 template, the conservative
    /// "assume peak" rule of §4.1).
    ///
    /// # Panics
    /// Panics if `history` is empty.
    #[must_use]
    pub fn fit(kind: TemplateKind, history: &[(SimTime, f64)]) -> Self {
        assert!(!history.is_empty(), "cannot fit a template to an empty history");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); HOURS_PER_WEEK];
        for &(time, value) in history {
            buckets[hour_of_week(time)].push(value);
        }
        let all_values: Vec<f64> = history.iter().map(|&(_, v)| v).collect();
        let global_fallback = match kind {
            TemplateKind::P99 => stats::max(&all_values).expect("non-empty"),
            _ => stats::percentile(&all_values, kind.percentile()).expect("non-empty"),
        };
        let per_hour = buckets
            .iter()
            .map(|bucket| {
                if bucket.is_empty() {
                    global_fallback
                } else {
                    stats::percentile(bucket, kind.percentile()).expect("non-empty bucket")
                }
            })
            .collect();
        Self { kind, per_hour }
    }

    /// The template kind.
    #[must_use]
    pub fn kind(&self) -> TemplateKind {
        self.kind
    }

    /// Predicted value for a future time (by hour of week).
    #[must_use]
    pub fn predict(&self, time: SimTime) -> f64 {
        self.per_hour[hour_of_week(time)]
    }

    /// The predicted weekly peak (maximum over the per-hour template).
    #[must_use]
    pub fn predicted_peak(&self) -> f64 {
        stats::max(&self.per_hour).expect("template has 168 entries")
    }

    /// Signed percentage errors of the template against a later observation window:
    /// `(predicted − actual) / actual × 100`, one entry per observation. Positive values are
    /// over-predictions (safe), negative values are under-predictions (risky).
    #[must_use]
    pub fn percentage_errors(&self, observations: &[(SimTime, f64)]) -> Vec<f64> {
        observations
            .iter()
            .filter(|&&(_, actual)| actual.abs() > f64::EPSILON)
            .map(|&(time, actual)| (self.predict(time) - actual) / actual * 100.0)
            .collect()
    }

    /// Fraction of observations the template under-predicts.
    #[must_use]
    pub fn underprediction_fraction(&self, observations: &[(SimTime, f64)]) -> f64 {
        let errors = self.percentage_errors(observations);
        if errors.is_empty() {
            return 0.0;
        }
        errors.iter().filter(|&&e| e < 0.0).count() as f64 / errors.len() as f64
    }
}

/// Hour-of-week index in `[0, 168)`.
fn hour_of_week(time: SimTime) -> usize {
    ((time.as_minutes() / 60) % HOURS_PER_WEEK as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::SimRng;

    /// Two weeks of a noisy diurnal row-power-like signal: week 1 is history, week 2 is the
    /// evaluation window. Row power aggregates dozens of servers, so the hour-to-hour noise is
    /// small relative to the diurnal swing.
    type WeekSeries = Vec<(SimTime, f64)>;

    fn signal(seed: u64) -> (WeekSeries, WeekSeries) {
        let mut rng = SimRng::seed_from(seed).derive("signal-noise");
        let sample = |minute: u64, rng: &mut SimRng| {
            let t = SimTime::from_minutes(minute);
            let hour = t.hour_of_day();
            let base = 70.0 + 30.0 * ((hour - 15.0) / 24.0 * std::f64::consts::TAU).cos();
            (t, (base + rng.normal(0.0, 2.0)).max(0.0))
        };
        let week1 = (0..7 * 1440).step_by(2).map(|m| sample(m, &mut rng)).collect();
        let week2 = (7 * 1440..14 * 1440).step_by(2).map(|m| sample(m, &mut rng)).collect();
        (week1, week2)
    }

    #[test]
    fn hour_of_week_wraps() {
        assert_eq!(hour_of_week(SimTime::from_hours(0)), 0);
        assert_eq!(hour_of_week(SimTime::from_hours(167)), 167);
        assert_eq!(hour_of_week(SimTime::from_hours(168)), 0);
        assert_eq!(hour_of_week(SimTime::from_hours(169 + 24)), 25);
    }

    #[test]
    fn row_level_prediction_error_is_small() {
        // Fig. 14a: row power prediction from history has < 10 % error for most row-hours.
        let (history, future) = signal(1);
        let template = PowerTemplate::fit(TemplateKind::P50, &history);
        let errors = template.percentage_errors(&future);
        let within_10 = errors.iter().filter(|e| e.abs() <= 10.0).count() as f64 / errors.len() as f64;
        assert!(within_10 > 0.8, "most errors should be within 10 %, got {within_10}");
    }

    #[test]
    fn p99_template_rarely_underpredicts() {
        // Fig. 14a: the conservative P99 template under-predicts < 4 % of row-hours.
        let (history, future) = signal(2);
        let p99 = PowerTemplate::fit(TemplateKind::P99, &history);
        let p50 = PowerTemplate::fit(TemplateKind::P50, &history);
        let under_p99 = p99.underprediction_fraction(&future);
        let under_p50 = p50.underprediction_fraction(&future);
        assert!(under_p99 < 0.06, "P99 underprediction {under_p99}");
        assert!(under_p99 < under_p50, "P99 must be more conservative than P50");
        assert!(p99.predicted_peak() >= p50.predicted_peak());
    }

    #[test]
    fn template_orders_by_percentile() {
        let (history, _) = signal(3);
        let p50 = PowerTemplate::fit(TemplateKind::P50, &history);
        let p90 = PowerTemplate::fit(TemplateKind::P90, &history);
        let p99 = PowerTemplate::fit(TemplateKind::P99, &history);
        for hour in 0..168 {
            let t = SimTime::from_hours(hour);
            assert!(p50.predict(t) <= p90.predict(t) + 1e-9);
            assert!(p90.predict(t) <= p99.predict(t) + 1e-9);
        }
        assert_eq!(p99.kind(), TemplateKind::P99);
        assert_eq!(TemplateKind::P90.percentile(), 90.0);
    }

    #[test]
    fn sparse_history_falls_back_conservatively() {
        // History only covers hour 0 of the week; other hours fall back to the global
        // statistic (maximum for P99).
        let history: Vec<(SimTime, f64)> =
            (0..6).map(|i| (SimTime::from_minutes(i * 10), 50.0 + i as f64)).collect();
        let p99 = PowerTemplate::fit(TemplateKind::P99, &history);
        assert_eq!(p99.predict(SimTime::from_hours(100)), 55.0);
        let p50 = PowerTemplate::fit(TemplateKind::P50, &history);
        assert!((p50.predict(SimTime::from_hours(100)) - 52.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty history")]
    fn empty_history_panics() {
        let _ = PowerTemplate::fit(TemplateKind::P50, &[]);
    }

    #[test]
    fn prediction_of_zero_signal_has_no_errors_recorded() {
        let history = vec![(SimTime::ZERO, 5.0)];
        let template = PowerTemplate::fit(TemplateKind::P50, &history);
        let observations = vec![(SimTime::from_hours(1), 0.0)];
        assert!(template.percentage_errors(&observations).is_empty());
        assert_eq!(template.underprediction_fraction(&observations), 0.0);
    }
}
