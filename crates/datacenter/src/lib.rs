//! # dc-sim — datacenter substrate for the TAPAS reproduction
//!
//! This crate models the physical infrastructure that §2 of the paper characterizes:
//!
//! * [`topology`] — the physical hierarchy: datacenter → cold aisles (each served by AHUs and
//!   containing two rows) → rows → racks → GPU servers → 8 GPUs per server, together with the
//!   server hardware specifications (DGX A100 / DGX H100).
//! * [`weather`] — outside air temperature as a function of time for different climates.
//! * [`cooling`] — the air-cooling model: server inlet temperature (Eq. 1), per-GPU
//!   temperature (Eq. 2), server fan airflow and aisle AHU provisioning (Eq. 3), and heat
//!   recirculation when an aisle's airflow demand exceeds its provisioning.
//! * [`power`] — the electrical model: server power as a polynomial of GPU load, and the
//!   three-level power-delivery hierarchy (rows → PDU pairs → UPS → ATS) with budgets,
//!   redundancy, and power capping (Eq. 4).
//! * [`failures`] — cooling and power failure injection (AHU failure, cooling-device failure,
//!   UPS failure) with the capacity reductions the paper uses in §5.4 (90 % cooling, 75 %
//!   power).
//! * [`index`] — frozen topology ordinals ([`TopologyIndex`] handles, one per datacenter)
//!   and the dense id-keyed telemetry containers ([`OrdinalMap`]) every per-step shape is
//!   built on.
//! * [`engine`] — the per-step evaluation pipeline that turns per-GPU load/power into
//!   temperatures, aggregate powers, violations and capping directives, built on
//!   structure-of-arrays, row-batched, branch-free kernels.
//! * [`kernel_reference`] — the retained scalar reference implementation the batched
//!   kernels are pinned bitwise-equal to (the engine's FP-order contract, executable).
//!
//! The crate is purely a *physics* substrate: it knows nothing about VMs, LLMs or policies.
//! Those live in the `workload`, `llm-sim` and `tapas` crates.
//!
//! # Example
//!
//! ```
//! use dc_sim::topology::LayoutConfig;
//! use dc_sim::engine::{Datacenter, StepInput};
//! use simkit::units::Celsius;
//!
//! let layout = LayoutConfig::small_test_cluster().build();
//! let mut dc = Datacenter::new(layout, 42);
//! let idle = StepInput::idle(dc.layout(), Celsius::new(20.0));
//! let outcome = dc.evaluate(&idle);
//! assert!(outcome.max_gpu_temp().value() < 60.0, "idle cluster should be cool");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cooling;
pub mod engine;
pub mod failures;
pub mod ids;
pub mod index;
pub mod kernel_reference;
pub mod power;
pub mod topology;
pub mod weather;

pub use engine::{Datacenter, StepInput, StepOutcome};
pub use ids::{AisleId, GpuId, RackId, RowId, ServerId};
pub use index::{OrdinalMap, TopologyIndex, TopologyOrdinal};
pub use topology::{GpuModel, Layout, LayoutConfig, ServerSpec};
pub use weather::{Climate, WeatherModel};
