//! The per-step evaluation pipeline.
//!
//! [`Datacenter`] owns the layout and the generative thermal/power models, and
//! [`Datacenter::evaluate`] turns one step's per-GPU activity into:
//!
//! 1. per-server airflow demand and per-aisle airflow assessment (Eq. 3), including the heat
//!    recirculation penalty when an aisle is over-subscribed or an AHU has failed;
//! 2. per-server inlet temperatures (Eq. 1) given outside temperature, datacenter load and
//!    the recirculation penalty;
//! 3. per-GPU and per-GPU-memory temperatures (Eq. 2);
//! 4. per-server power and the hierarchy assessment (Eq. 4) with power capping directives;
//! 5. thermal throttling directives for GPUs above their junction limit.
//!
//! The engine is stateless across steps apart from the models' static offsets: the caller
//! (the cluster simulator) owns all dynamic state (which VM runs where, what load it offers)
//! and applies the capping/throttling directives to the *next* step's activity, which mirrors
//! how real telemetry-driven control loops behave.

use crate::cooling::airflow::{AirflowModel, AisleAirflowAssessment};
use crate::cooling::gpu::{GpuThermalCoefficients, GpuThermalModel, TempGrid};
use crate::cooling::inlet::{InletCurve, InletModel};
use crate::failures::FailureState;
use crate::ids::{AisleId, GpuId, RowId, ServerId};
use crate::index::{is_contiguous_run, OrdinalMap, TopologyIndex};
use crate::power::hierarchy::{CapacityState, PowerAssessment, PowerHierarchy};
use crate::power::server::{ServerPowerModel, ServerPowerTerms};
use crate::topology::{Layout, ServerSpec};
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::sync::Arc;

/// `true` when this build compiled the opt-in AVX2+FMA kernel lane
/// (`RUSTFLAGS="-C target-feature=+avx2,+fma"`). Wide builds are deterministic for a
/// given binary but use fused multiply-adds and four-lane accumulators, which change the
/// FP rounding/order relative to the pinned scalar contract — so they are **excluded
/// from the digest and bitwise-vs-reference test contracts** (those tests skip
/// themselves when this is `true` and tolerance-based sanity tests run instead).
/// Default builds compile the SSE2/scalar kernels and stay bit-identical.
pub const WIDE_KERNELS: bool =
    cfg!(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma"));

/// Activity of one server during a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerActivity {
    /// Per-GPU utilization in `[0, 1]`.
    pub gpu_utilization: Vec<f64>,
    /// Per-GPU frequency scale in `(0, 1]` (1.0 = nominal clocks).
    pub frequency_scale: Vec<f64>,
    /// Memory-boundedness of the work in `[0, 1]` (0 = prefill-like, 1 = decode-like).
    pub memory_boundedness: f64,
}

impl ServerActivity {
    /// An idle server with the given GPU count.
    #[must_use]
    pub fn idle(gpu_count: usize) -> Self {
        Self {
            gpu_utilization: vec![0.0; gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.0,
        }
    }

    /// A server with every GPU at the same utilization and nominal frequency.
    #[must_use]
    pub fn uniform(gpu_count: usize, utilization: f64) -> Self {
        Self {
            gpu_utilization: vec![utilization.clamp(0.0, 1.0); gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.5,
        }
    }

    /// Mean GPU utilization of the server.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.gpu_utilization.is_empty() {
            0.0
        } else {
            self.gpu_utilization.iter().sum::<f64>() / self.gpu_utilization.len() as f64
        }
    }
}

/// Structure-of-arrays per-GPU activity of the whole datacenter: the step input the
/// row-batched kernels stream directly.
///
/// Instead of one heap-allocated [`ServerActivity`] per server (two pointer-chased
/// `Vec<f64>` payloads each — the last array-of-structs on the hot path), the planes
/// store every GPU's utilization and frequency scale in two flat server-major vectors
/// windowed by the same GPU prefix sums a [`TopologyIndex`] freezes
/// ([`TopologyIndex::gpu_offsets`]), plus one per-server memory-boundedness vector.
/// Row kernels slice contiguous windows out of the planes with no per-server indirection,
/// and building an idle cluster costs four allocations total instead of two per server.
///
/// The serialized encoding is exactly the legacy `Vec<ServerActivity>` sequence-of-maps
/// form (see the hand-written serde impls), so golden artifacts and digests that captured
/// the old shape remain byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityPlanes {
    /// Flat server-major per-GPU utilization in `[0, 1]`, windowed by `offsets`.
    gpu_utilization: Vec<f64>,
    /// Flat server-major per-GPU frequency scale in `(0, 1]`, windowed by `offsets`.
    frequency_scale: Vec<f64>,
    /// Per-server memory-boundedness in `[0, 1]` (0 = prefill-like, 1 = decode-like).
    memory_boundedness: Vec<f64>,
    /// Server-major GPU prefix sums (length `server_count + 1`), mirroring the layout's
    /// [`TopologyIndex::gpu_offsets`]. The engine validates them against its topology in
    /// one up-front comparison instead of per-server length checks.
    offsets: Vec<u32>,
}

/// Read-only view of one server's activity inside [`ActivityPlanes`].
#[derive(Debug, Clone, Copy)]
pub struct ServerActivityRef<'a> {
    /// The server's window of the utilization plane.
    pub gpu_utilization: &'a [f64],
    /// The server's window of the frequency-scale plane.
    pub frequency_scale: &'a [f64],
    /// The server's memory-boundedness.
    pub memory_boundedness: f64,
}

/// Mutable view of one server's activity inside [`ActivityPlanes`].
#[derive(Debug)]
pub struct ServerActivityMut<'a> {
    /// The server's window of the utilization plane.
    pub gpu_utilization: &'a mut [f64],
    /// The server's window of the frequency-scale plane.
    pub frequency_scale: &'a mut [f64],
    /// The server's memory-boundedness.
    pub memory_boundedness: &'a mut f64,
}

impl ActivityPlanes {
    /// All-idle planes shaped for a layout: utilization 0, nominal frequency, no
    /// memory-boundedness. Four allocations for the whole datacenter.
    #[must_use]
    pub fn idle_for(layout: &Layout) -> Self {
        let offsets = Self::offsets_for(layout);
        let gpu_count = *offsets.last().expect("offsets non-empty") as usize;
        Self {
            gpu_utilization: vec![0.0; gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: vec![0.0; layout.server_count()],
            offsets,
        }
    }

    /// Planes with every GPU at the same utilization and nominal frequency (the
    /// [`ServerActivity::uniform`] shape, datacenter-wide).
    #[must_use]
    pub fn uniform_for(layout: &Layout, utilization: f64) -> Self {
        let offsets = Self::offsets_for(layout);
        let gpu_count = *offsets.last().expect("offsets non-empty") as usize;
        Self {
            gpu_utilization: vec![utilization.clamp(0.0, 1.0); gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: vec![0.5; layout.server_count()],
            offsets,
        }
    }

    /// Compat constructor from the legacy per-server shape. The planes' offsets are
    /// derived from each entry's GPU count, so a shape that disagrees with the layout is
    /// still representable (and rejected by the engine's validation, exactly as before).
    ///
    /// # Panics
    /// Panics if a server's utilization and frequency vectors have different lengths —
    /// that shape has no plane representation.
    #[must_use]
    pub fn from_servers(servers: &[ServerActivity]) -> Self {
        let mut offsets = Vec::with_capacity(servers.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for activity in servers {
            assert_eq!(
                activity.frequency_scale.len(),
                activity.gpu_utilization.len(),
                "activity frequency count must match the activity GPU count"
            );
            total += u32::try_from(activity.gpu_utilization.len())
                .expect("per-server GPU count fits in u32");
            offsets.push(total);
        }
        let mut gpu_utilization = Vec::with_capacity(total as usize);
        let mut frequency_scale = Vec::with_capacity(total as usize);
        let mut memory_boundedness = Vec::with_capacity(servers.len());
        for activity in servers {
            gpu_utilization.extend_from_slice(&activity.gpu_utilization);
            frequency_scale.extend_from_slice(&activity.frequency_scale);
            memory_boundedness.push(activity.memory_boundedness);
        }
        Self { gpu_utilization, frequency_scale, memory_boundedness, offsets }
    }

    fn offsets_for(layout: &Layout) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(layout.server_count() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for server in layout.servers() {
            total += u32::try_from(server.spec.gpus_per_server)
                .expect("per-server GPU count fits in u32");
            offsets.push(total);
        }
        offsets
    }

    /// Number of servers the planes cover.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of GPU lanes.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty") as usize
    }

    /// The server-major GPU prefix sums (length `server_count + 1`).
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat kernel planes: `(utilization, frequency scale, memory boundedness)`.
    #[must_use]
    pub fn planes(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.gpu_utilization, &self.frequency_scale, &self.memory_boundedness)
    }

    /// Read-only view of one server's activity.
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    #[must_use]
    pub fn server(&self, server: usize) -> ServerActivityRef<'_> {
        let window = self.offsets[server] as usize..self.offsets[server + 1] as usize;
        ServerActivityRef {
            gpu_utilization: &self.gpu_utilization[window.clone()],
            frequency_scale: &self.frequency_scale[window],
            memory_boundedness: self.memory_boundedness[server],
        }
    }

    /// Mutable view of one server's activity (the simulator's per-quantum fill path).
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    #[must_use]
    pub fn server_mut(&mut self, server: usize) -> ServerActivityMut<'_> {
        let window = self.offsets[server] as usize..self.offsets[server + 1] as usize;
        ServerActivityMut {
            gpu_utilization: &mut self.gpu_utilization[window.clone()],
            frequency_scale: &mut self.frequency_scale[window],
            memory_boundedness: &mut self.memory_boundedness[server],
        }
    }

    /// Resets one server to the idle shape (allocation-free).
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    pub fn set_idle(&mut self, server: usize) {
        let a = self.server_mut(server);
        a.gpu_utilization.fill(0.0);
        a.frequency_scale.fill(1.0);
        *a.memory_boundedness = 0.0;
    }

    /// Sets one server to the [`ServerActivity::uniform`] shape (allocation-free).
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    pub fn set_uniform(&mut self, server: usize, utilization: f64) {
        let a = self.server_mut(server);
        a.gpu_utilization.fill(utilization.clamp(0.0, 1.0));
        a.frequency_scale.fill(1.0);
        *a.memory_boundedness = 0.5;
    }
}

// The serialized form is the legacy `Vec<ServerActivity>` encoding — a sequence of
// per-server `{gpu_utilization, frequency_scale, memory_boundedness}` maps — written out
// by hand (the vendored derive cannot express the planes-to-sequence projection). Golden
// artifacts and digests captured before the SoA conversion stay byte-identical.
impl Serialize for ActivityPlanes {
    fn to_value(&self) -> serde::Value {
        let mut servers = Vec::with_capacity(self.server_count());
        for i in 0..self.server_count() {
            let s = self.server(i);
            servers.push(serde::Value::Map(vec![
                (String::from("gpu_utilization"), s.gpu_utilization.to_value()),
                (String::from("frequency_scale"), s.frequency_scale.to_value()),
                (String::from("memory_boundedness"), serde::Value::F64(s.memory_boundedness)),
            ]));
        }
        serde::Value::Seq(servers)
    }
}

impl Deserialize for ActivityPlanes {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let servers = Vec::<ServerActivity>::from_value(value)?;
        Ok(Self::from_servers(&servers))
    }
}

/// Input to one evaluation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepInput {
    /// Outside air temperature.
    pub outside_temp: Celsius,
    /// Per-server activity as flat SoA planes, windowed by [`ServerId::index`]-ordered
    /// GPU offsets.
    pub activity: ActivityPlanes,
    /// Active infrastructure failures.
    pub failures: FailureState,
    /// Operator power-cap fraction in `(0, 1]`: every row and UPS budget is clamped to
    /// this fraction of provisioned capacity, multiplying any failure-derived
    /// reductions. `1.0` (the constructors' default) is a bit-identical no-op.
    pub power_cap: f64,
}

impl StepInput {
    /// An all-idle cluster at a given outside temperature (useful for tests and
    /// baselines). Allocation-free per server: the planes are four datacenter-wide
    /// vectors, not two heap payloads per server.
    #[must_use]
    pub fn idle(layout: &Layout, outside_temp: Celsius) -> Self {
        Self {
            outside_temp,
            activity: ActivityPlanes::idle_for(layout),
            failures: FailureState::healthy(),
            power_cap: 1.0,
        }
    }

    /// A uniformly loaded cluster.
    #[must_use]
    pub fn uniform_load(layout: &Layout, outside_temp: Celsius, utilization: f64) -> Self {
        Self {
            outside_temp,
            activity: ActivityPlanes::uniform_for(layout, utilization),
            failures: FailureState::healthy(),
            power_cap: 1.0,
        }
    }
}

/// A GPU that crossed its thermal limit, and the frequency reduction the hardware applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalThrottleDirective {
    /// The throttled GPU.
    pub gpu: GpuId,
    /// Junction temperature that triggered the throttle.
    pub temperature: Celsius,
    /// Frequency scale the hardware enforces until the GPU cools (`< 1.0`).
    pub frequency_scale: f64,
}

/// Everything the engine derives for one step.
///
/// All fields are dense, topology-ordinal grids: per-server vectors indexed by
/// [`ServerId::index`], the flat server-major [`TempGrid`], and one [`OrdinalMap`] per
/// aggregation level. The shapes are frozen by the [`TopologyIndex`] of the datacenter that
/// produced the outcome, so fleet-level consumers can aggregate across datacenters with
/// O(1) per-cell access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Per-server inlet temperature.
    pub inlet_temps: Vec<Celsius>,
    /// Per-GPU temperatures: one contiguous server-major grid.
    pub gpu_temps: TempGrid,
    /// Per-server total power.
    pub server_power: Vec<Kilowatts>,
    /// Per-server airflow demand.
    pub server_airflow: Vec<CubicFeetPerMinute>,
    /// Per-aisle airflow assessment, indexed by [`AisleId`].
    pub aisle_airflow: OrdinalMap<AisleId, AisleAirflowAssessment>,
    /// Power-hierarchy assessment, including power capping directives.
    pub power: PowerAssessment,
    /// GPUs above their thermal limit and the throttle the hardware applies.
    pub thermal_throttles: Vec<ThermalThrottleDirective>,
    /// Normalized datacenter load in `[0, 1]` used for the inlet model.
    pub datacenter_load: f64,
}

impl StepOutcome {
    /// The hottest GPU temperature across the datacenter.
    #[must_use]
    pub fn max_gpu_temp(&self) -> Celsius {
        self.gpu_temps.max_gpu()
    }

    /// The hottest GPU-memory temperature across the datacenter.
    #[must_use]
    pub fn max_mem_temp(&self) -> Celsius {
        self.gpu_temps.max_mem()
    }

    /// The peak row power.
    #[must_use]
    pub fn peak_row_power(&self) -> Kilowatts {
        self.power.peak_row_power()
    }

    /// Per-row power draw, in row order (allocation-free compatibility accessor).
    pub fn row_power(&self) -> impl ExactSizeIterator<Item = (RowId, Kilowatts)> + '_ {
        self.power.row_power()
    }

    /// Number of GPUs currently thermally throttled.
    #[must_use]
    pub fn throttled_gpu_count(&self) -> usize {
        self.thermal_throttles.len()
    }

    /// Returns `true` if any aisle violates its airflow provisioning.
    #[must_use]
    pub fn any_airflow_violation(&self) -> bool {
        self.aisle_airflow.values().any(AisleAirflowAssessment::is_violated)
    }
}

/// Tunable model parameters for a [`Datacenter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct DatacenterModels {
    /// Inlet-temperature curve (Eq. 1).
    pub inlet_curve: InletCurve,
    /// GPU-temperature coefficients (Eq. 2).
    pub gpu_thermal: GpuThermalCoefficients,
    /// Airflow / recirculation model (Eq. 3).
    pub airflow: AirflowModel,
    /// Server power model (Eq. 4).
    pub power: ServerPowerModel,
}


/// The datacenter physics engine.
#[derive(Debug, Clone)]
pub struct Datacenter {
    layout: Layout,
    topology: Arc<TopologyIndex>,
    inlet_model: InletModel,
    gpu_model: GpuThermalModel,
    airflow_model: AirflowModel,
    power_model: ServerPowerModel,
    hierarchy: PowerHierarchy,
    /// Per-row kernel plans: hoisted spec-derived constants, frozen at construction.
    row_plans: Vec<RowPlan>,
    /// Per-aisle contiguous server spans for the dense demand reduction.
    aisle_spans: Vec<AisleSpan>,
    fingerprint: u64,
}

/// Per-aisle `[start, end)` server-index span when the aisle's member list is an
/// ascending contiguous run (the layout builder's invariant) — the aisle demand then
/// reduces over a dense slice of the airflow plane. `None` falls back to the id walk.
type AisleSpan = Option<std::ops::Range<usize>>;

fn aisle_spans(layout: &Layout) -> Vec<AisleSpan> {
    layout
        .aisles()
        .iter()
        .map(|aisle| {
            (is_contiguous_run(&aisle.servers) && !aisle.servers.is_empty()).then(|| {
                let start = aisle.servers[0].index();
                start..start + aisle.servers.len()
            })
        })
        .collect()
}

/// Per-row kernel plan. Built once in [`Datacenter::with_models`]: the aisle the row draws
/// air from (rows never span aisles) and, when the row is spec-homogeneous — the case the
/// layout builder always produces — the spec-derived constants hoisted out of the lane
/// loops. Mixed-spec or ragged rows fall back to the general per-server path.
#[derive(Debug, Clone, Copy)]
struct RowPlan {
    /// Ordinal of the aisle every server in the row belongs to.
    aisle: usize,
    /// Hoisted terms when every server in the row shares one spec.
    uniform: Option<RowUniformTerms>,
}

/// Spec-derived constants of a homogeneous row, hoisted once per row instead of being
/// re-derived per server. All values are produced by the same model helpers the scalar
/// path uses ([`ServerPowerModel::gpu_power_terms`], [`AirflowModel::airflow_terms`],
/// [`ServerPowerModel::server_power_terms`]), so results stay bit-identical.
#[derive(Debug, Clone, Copy)]
struct RowUniformTerms {
    gpus_per_server: usize,
    gpu_static_w: f64,
    gpu_dynamic_w: f64,
    airflow_idle: CubicFeetPerMinute,
    airflow_span: CubicFeetPerMinute,
    power: ServerPowerTerms,
    throttle_limit_c: f64,
}

impl RowUniformTerms {
    fn for_spec(spec: &ServerSpec, airflow: &AirflowModel, power: &ServerPowerModel) -> Self {
        let (gpu_static_w, gpu_dynamic_w) = power.gpu_power_terms(spec);
        let (airflow_idle, airflow_span) = airflow.airflow_terms(spec);
        Self {
            gpus_per_server: spec.gpus_per_server,
            gpu_static_w,
            gpu_dynamic_w,
            airflow_idle,
            airflow_span,
            power: power.server_power_terms(spec),
            throttle_limit_c: spec.gpu_throttle_temp_c,
        }
    }
}

fn row_plans(layout: &Layout, airflow: &AirflowModel, power: &ServerPowerModel) -> Vec<RowPlan> {
    layout
        .rows()
        .iter()
        .map(|row| {
            debug_assert!(
                row.servers.iter().all(|&s| layout.server(s).aisle == row.aisle),
                "rows must not span aisles"
            );
            let uniform = row.servers.split_first().and_then(|(&first, rest)| {
                let spec = layout.server(first).spec;
                rest.iter()
                    .all(|&s| layout.server(s).spec == spec)
                    .then(|| RowUniformTerms::for_spec(&spec, airflow, power))
            });
            RowPlan { aisle: row.aisle.index(), uniform }
        })
        .collect()
}

impl Datacenter {
    /// Creates a datacenter with default model parameters and deterministic per-entity
    /// offsets derived from `seed`.
    #[must_use]
    pub fn new(layout: Layout, seed: u64) -> Self {
        Self::with_models(layout, DatacenterModels::default(), seed)
    }

    /// Creates a datacenter with explicit model parameters.
    #[must_use]
    pub fn with_models(layout: Layout, models: DatacenterModels, seed: u64) -> Self {
        let inlet_model = InletModel::for_layout(&layout, models.inlet_curve, seed);
        let gpu_model = GpuThermalModel::for_layout(&layout, models.gpu_thermal, seed);
        let hierarchy = PowerHierarchy::from_layout(&layout);
        let topology = Arc::new(TopologyIndex::from_layout(&layout));
        let fingerprint = Self::fingerprint_of(&layout, &models, seed);
        let row_plans = row_plans(&layout, &models.airflow, &models.power);
        let aisle_spans = aisle_spans(&layout);
        Self {
            layout,
            topology,
            inlet_model,
            gpu_model,
            airflow_model: models.airflow,
            power_model: models.power,
            hierarchy,
            row_plans,
            aisle_spans,
            fingerprint,
        }
    }

    /// A deterministic digest of `(layout, models, seed)` identifying this datacenter's
    /// generative models. Two datacenters with equal fingerprints produce identical physics,
    /// so derived artifacts (e.g. offline profiles) can be shared between them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn fingerprint_of(layout: &Layout, models: &DatacenterModels, seed: u64) -> u64 {
        // FNV-1a over the structural parameters; deterministic across processes.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(seed);
        mix(layout.server_count() as u64);
        mix(layout.rows().len() as u64);
        mix(layout.aisles().len() as u64);
        mix(layout.racks().len() as u64);
        mix(layout.pdus().len() as u64);
        mix(layout.upses().len() as u64);
        // Every server spec participates (mixed fleets must not collide).
        for server in layout.servers() {
            mix(server.spec.gpus_per_server as u64);
            mix(server.spec.max_power.value().to_bits());
            mix(server.spec.idle_power.value().to_bits());
            mix(server.spec.gpu_max_power.value().to_bits());
            mix(server.spec.idle_airflow.value().to_bits());
            mix(server.spec.max_airflow.value().to_bits());
            mix(server.spec.gpu_throttle_temp_c.to_bits());
            mix(server.spec.mem_throttle_temp_c.to_bits());
        }
        for row in layout.rows() {
            mix(row.power_budget.value().to_bits());
            mix(row.servers.len() as u64);
        }
        for aisle in layout.aisles() {
            mix(aisle.airflow_provisioned.value().to_bits());
            mix(aisle.ahu_count as u64);
        }
        // Every tunable of every model participates.
        mix(models.inlet_curve.floor_c.to_bits());
        mix(models.inlet_curve.floor_until_outside_c.to_bits());
        mix(models.inlet_curve.mid_slope.to_bits());
        mix(models.inlet_curve.hot_from_outside_c.to_bits());
        mix(models.inlet_curve.hot_slope.to_bits());
        mix(models.inlet_curve.load_sensitivity_c.to_bits());
        mix(models.gpu_thermal.inlet_coeff.to_bits());
        mix(models.gpu_thermal.power_coeff.to_bits());
        mix(models.gpu_thermal.intercept.to_bits());
        mix(models.gpu_thermal.layout_penalty_c.to_bits());
        mix(models.gpu_thermal.process_variation_std_c.to_bits());
        mix(models.gpu_thermal.mem_offset_membound_c.to_bits());
        mix(models.gpu_thermal.mem_offset_computebound_c.to_bits());
        mix(models.airflow.recirculation_penalty_c_per_10pct.to_bits());
        mix(models.power.linear_weight.to_bits());
        hash
    }

    /// The physical layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The frozen ordinal geometry of this datacenter. Clone the `Arc` to share the handle
    /// with workspaces or fleet-level aggregation.
    #[must_use]
    pub fn topology(&self) -> &Arc<TopologyIndex> {
        &self.topology
    }

    /// The inlet-temperature model.
    #[must_use]
    pub fn inlet_model(&self) -> &InletModel {
        &self.inlet_model
    }

    /// The GPU thermal model.
    #[must_use]
    pub fn gpu_model(&self) -> &GpuThermalModel {
        &self.gpu_model
    }

    /// The server power model.
    #[must_use]
    pub fn power_model(&self) -> &ServerPowerModel {
        &self.power_model
    }

    /// The airflow model.
    #[must_use]
    pub fn airflow_model(&self) -> &AirflowModel {
        &self.airflow_model
    }

    /// The power hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &PowerHierarchy {
        &self.hierarchy
    }

    /// Evaluates one step, allocating a fresh [`StepWorkspace`].
    ///
    /// Callers on the hot loop should hold a persistent workspace and use
    /// [`Self::evaluate_into`] instead, which reuses every intermediate and output buffer
    /// across steps.
    ///
    /// # Panics
    /// Panics if `input.activity` does not have exactly one entry per server, or if a
    /// server's activity has a different GPU count than its spec.
    #[must_use]
    pub fn evaluate(&self, input: &StepInput) -> StepOutcome {
        let mut workspace = StepWorkspace::for_topology(Arc::clone(&self.topology));
        self.evaluate_into(input, &mut workspace);
        workspace.outcome
    }

    /// Evaluates one step into a reusable workspace (allocation-free after the first step).
    ///
    /// Per-server physics (airflow, power split, GPU temperatures, throttle detection) runs
    /// on contiguous per-row slices; with the `parallel` feature enabled and a large enough
    /// cluster, rows are processed concurrently with identical results (all reductions happen
    /// in fixed row order).
    ///
    /// # Panics
    /// Panics if `input.activity` does not have exactly one entry per server, or if a
    /// server's activity has a different GPU count than its spec.
    pub fn evaluate_into(&self, input: &StepInput, workspace: &mut StepWorkspace) {
        assert_eq!(
            input.activity.server_count(),
            self.layout.server_count(),
            "activity must cover every server"
        );
        // One dense comparison of the planes' prefix sums against the frozen topology
        // replaces the per-server length checks of the array-of-structs shape: equal
        // offsets mean every server's GPU window matches its spec.
        assert!(
            input.activity.offsets() == workspace.topology.gpu_offsets(),
            "activity GPU count must match the server spec"
        );
        workspace.reset(&self.layout);
        let server_count = self.layout.server_count();
        let servers = self.layout.servers();
        let topology = Arc::clone(&workspace.topology);
        let row_ranges = topology.row_ranges();
        let gpu_offsets = topology.gpu_offsets();
        let (utilization_all, frequency_all, boundedness_all) = input.activity.planes();

        // 1. Per-server loads, airflow demand and power, processed per contiguous row slice.
        let threads = physics_threads(workspace.thread_limit);
        let parallel = parallel_active(server_count, row_ranges.len(), threads);
        if parallel {
            topology.balanced_row_chunks_into(threads, &mut workspace.row_chunks);
        }
        {
            let outcome = &mut workspace.outcome;
            let row_chunks = &workspace.row_chunks;
            // The junction plane doubles as the per-GPU power staging area: this pass
            // writes watts into it, the thermal pass transforms them to temperatures in
            // place. One plane streamed twice beats two planes streamed once each.
            let (power_stage_all, _) = outcome.gpu_temps.kernel_planes_mut();
            let mut airflow_rest = outcome.server_airflow.as_mut_slice();
            let mut power_rest = outcome.server_power.as_mut_slice();
            let mut power_stage_rest = power_stage_all;
            let mut load_rest = workspace.row_load.as_mut_slice();
            let mut tasks: Vec<RowPowerTask<'_>> = Vec::new();
            if parallel {
                tasks.reserve(row_ranges.len());
            }
            for (row, range) in row_ranges.iter().enumerate() {
                let row_len = range.end - range.start;
                let gpu_window =
                    gpu_offsets[range.start] as usize..gpu_offsets[range.end] as usize;
                let gpu_len = gpu_window.end - gpu_window.start;
                let (airflow, rest) = airflow_rest.split_at_mut(row_len);
                airflow_rest = rest;
                let (power, rest) = power_rest.split_at_mut(row_len);
                power_rest = rest;
                let (power_stage, rest) = power_stage_rest.split_at_mut(gpu_len);
                power_stage_rest = rest;
                let (load, rest) = load_rest.split_at_mut(1);
                load_rest = rest;
                let mut task = RowPowerTask {
                    plan: &self.row_plans[row],
                    servers: &servers[range.clone()],
                    utilization: &utilization_all[gpu_window.clone()],
                    frequency: &frequency_all[gpu_window],
                    airflow,
                    power,
                    power_stage,
                    row_load: &mut load[0],
                };
                if parallel {
                    tasks.push(task);
                } else {
                    task.run(&self.airflow_model, &self.power_model);
                }
            }
            run_row_tasks(&mut tasks, row_chunks.iter().copied(), |task| {
                task.run(&self.airflow_model, &self.power_model);
            });
        }
        // Fixed-order reduction keeps the total identical with and without `parallel`.
        let total_load: f64 = workspace.row_load.iter().sum();
        let datacenter_load =
            if server_count > 0 { total_load / server_count as f64 } else { 0.0 };
        workspace.outcome.datacenter_load = datacenter_load;

        // 2. Aisle airflow assessment and recirculation penalties, written into the
        // pre-sized per-aisle grid.
        for aisle in self.layout.aisles() {
            let fraction = input
                .failures
                .aisle_airflow_fraction(aisle.id, aisle.ahu_count);
            let server_airflow = &workspace.outcome.server_airflow;
            let assessment = match &self.aisle_spans[aisle.id.index()] {
                // Dense reduction over the aisle's contiguous window (bit-identical to
                // the id walk: same elements, same order).
                Some(span) => {
                    let demand: CubicFeetPerMinute =
                        server_airflow[span.clone()].iter().copied().sum();
                    self.airflow_model.assess_aisle_demand(aisle, demand, fraction)
                }
                None => self.airflow_model.assess_aisle(
                    aisle,
                    |s: ServerId| server_airflow[s.index()],
                    fraction,
                ),
            };
            workspace.aisle_penalty[aisle.id.index()] = assessment.recirculation_penalty_c;
            workspace.outcome.aisle_airflow[aisle.id] = assessment;
        }

        // 3./4. Inlet and GPU temperatures plus thermal throttles, per contiguous row slice
        // of the flat temperature planes. The step-invariant parts of the inlet model
        // (base curve at this outside temperature, load term) are hoisted once per step.
        let inlet_base = self.inlet_model.curve().base(input.outside_temp);
        let load_term = self.inlet_model.curve().load_term(datacenter_load);
        let spatial_all = self.inlet_model.spatial_offsets();
        let thermal_offsets_all = self.gpu_model.offsets_flat();
        debug_assert_eq!(thermal_offsets_all.len(), topology.gpu_count());
        let coeffs = *self.gpu_model.coefficients();
        {
            let outcome = &mut workspace.outcome;
            let row_chunks = &workspace.row_chunks;
            let (gpu_plane, mem_offsets_plane) = outcome.gpu_temps.kernel_planes_mut();
            let mut inlet_rest = outcome.inlet_temps.as_mut_slice();
            let mut gpu_rest = gpu_plane;
            let mut mem_rest = mem_offsets_plane;
            let mut throttles_rest = workspace.row_throttles.as_mut_slice();
            let mut tasks: Vec<RowThermalTask<'_>> = Vec::new();
            if parallel {
                tasks.reserve(row_ranges.len());
            }
            // Rows run in *reverse* ordinal order: the power pass above finished at the
            // last row, so on sites too large for cache the thermal pass starts on the
            // still-resident tail of the staged power plane and zigzags back (row tasks
            // own disjoint windows and every cross-row reduction happens after both
            // passes, so processing order cannot affect results).
            for (row, range) in row_ranges.iter().enumerate().rev() {
                let row_len = range.end - range.start;
                let gpu_start = gpu_offsets[range.start] as usize;
                let gpu_end = gpu_offsets[range.end] as usize;
                let gpu_len = gpu_end - gpu_start;
                let (rest, inlets) = inlet_rest.split_at_mut(inlet_rest.len() - row_len);
                inlet_rest = rest;
                let (rest, gpu_c) = gpu_rest.split_at_mut(gpu_rest.len() - gpu_len);
                gpu_rest = rest;
                let (rest, mem_offsets) = mem_rest.split_at_mut(mem_rest.len() - row_len);
                mem_rest = rest;
                let (rest, throttles) = throttles_rest.split_at_mut(throttles_rest.len() - 1);
                throttles_rest = rest;
                let mut task = RowThermalTask {
                    plan: &self.row_plans[row],
                    servers: &servers[range.clone()],
                    row_start: range.start,
                    memory_boundedness: &boundedness_all[range.clone()],
                    spatial: &spatial_all[range.clone()],
                    thermal_offsets: &thermal_offsets_all[gpu_start..gpu_end],
                    aisle_penalty: &workspace.aisle_penalty,
                    inlet_base,
                    load_term,
                    inlets,
                    gpu_c,
                    mem_offsets,
                    throttles: &mut throttles[0],
                };
                if parallel {
                    tasks.push(task);
                } else {
                    task.run(&coeffs);
                }
            }
            // The tasks were staged tail-first, so the chunk walk reverses too — every
            // chunk still covers the same contiguous row range as in the power pass.
            run_row_tasks(&mut tasks, row_chunks.iter().rev().copied(), |task| {
                task.run(&coeffs);
            });
        }
        workspace.outcome.thermal_throttles.clear();
        for row in &mut workspace.row_throttles {
            workspace.outcome.thermal_throttles.append(row);
        }

        // 5. Power hierarchy assessment and capping, written into the reusable dense grids.
        input
            .failures
            .capacity_state_into(&self.layout, &mut workspace.capacity);
        // An operator power cap clamps row/UPS budgets on top of the failure-derived
        // fractions. Guarded so the uncapped path never touches (or grows) the grids.
        if input.power_cap < 1.0 {
            workspace.capacity.apply_power_cap(
                input.power_cap,
                self.layout.upses().len(),
                self.layout.rows().len(),
            );
        }
        self.hierarchy.assess_into(
            &workspace.outcome.server_power,
            &workspace.capacity,
            &mut workspace.outcome.power,
            &mut workspace.hierarchy_scratch,
        );

        #[cfg(debug_assertions)]
        workspace.assert_kernel_lanes_written();
    }

}


/// Reusable buffers for [`Datacenter::evaluate_into`], including the output
/// [`StepOutcome`] whose grids are overwritten in place each step.
///
/// The workspace is shaped by a [`TopologyIndex`] handle (shared with the engine via
/// `Arc`), which freezes the grid strides every buffer follows.
#[derive(Debug)]
pub struct StepWorkspace {
    /// The most recent step's outcome.
    pub outcome: StepOutcome,
    /// The frozen ordinal geometry the grids follow.
    topology: Arc<TopologyIndex>,
    /// Recirculation penalty per aisle index.
    aisle_penalty: Vec<f64>,
    /// Sum of mean server loads per row.
    row_load: Vec<f64>,
    /// Per-row throttle staging buffers (concatenated in row order for determinism).
    row_throttles: Vec<Vec<ThermalThrottleDirective>>,
    /// Reusable power-capacity state derived from the step's failures.
    capacity: CapacityState,
    hierarchy_scratch: crate::power::hierarchy::HierarchyScratch,
    /// Optional cap on intra-site worker threads (`parallel` feature). `None` uses the
    /// machine's available parallelism; `Some(1)` forces the serial inline path. Results
    /// are bit-identical for every value — the digest tests pin this.
    thread_limit: Option<std::num::NonZeroUsize>,
    /// Reused chunk table for the intra-site row sharding: rows per contiguous chunk,
    /// balanced by server count (see [`TopologyIndex::balanced_row_chunks_into`]).
    row_chunks: Vec<usize>,
}

impl StepWorkspace {
    /// Creates a workspace sized for a layout (freezing a fresh [`TopologyIndex`]).
    ///
    /// Callers that already hold a datacenter should prefer [`Self::for_topology`] with
    /// [`Datacenter::topology`] so the handle is shared instead of rebuilt.
    ///
    /// # Panics
    /// Panics if the layout's rows are not contiguous server-index ranges (the builder
    /// always produces contiguous rows).
    #[must_use]
    pub fn new(layout: &Layout) -> Self {
        Self::for_topology(Arc::new(TopologyIndex::from_layout(layout)))
    }

    /// Creates a workspace over an existing topology handle.
    #[must_use]
    pub fn for_topology(topology: Arc<TopologyIndex>) -> Self {
        let server_count = topology.server_count();
        let empty_aisle = AisleAirflowAssessment {
            demand: CubicFeetPerMinute::ZERO,
            available: CubicFeetPerMinute::ZERO,
            utilization: 0.0,
            recirculation_penalty_c: 0.0,
        };
        let outcome = StepOutcome {
            inlet_temps: vec![Celsius::ZERO; server_count],
            gpu_temps: TempGrid::for_topology(&topology),
            server_power: vec![Kilowatts::ZERO; server_count],
            server_airflow: vec![CubicFeetPerMinute::ZERO; server_count],
            aisle_airflow: OrdinalMap::filled(topology.aisle_count(), empty_aisle),
            power: PowerAssessment::empty(),
            thermal_throttles: Vec::new(),
            datacenter_load: 0.0,
        };
        Self {
            outcome,
            aisle_penalty: vec![0.0; topology.aisle_count()],
            row_load: vec![0.0; topology.row_count()],
            row_throttles: vec![Vec::new(); topology.row_count()],
            capacity: CapacityState::healthy(),
            hierarchy_scratch: crate::power::hierarchy::HierarchyScratch::default(),
            thread_limit: None,
            row_chunks: Vec::new(),
            topology,
        }
    }

    /// The topology handle the workspace grids follow.
    #[must_use]
    pub fn topology(&self) -> &Arc<TopologyIndex> {
        &self.topology
    }

    /// Caps how many scoped worker threads the intra-site row sharding may use (only
    /// meaningful with the `parallel` feature). `None` restores the default (the
    /// machine's available parallelism); `Some(1)` forces the serial inline path.
    /// Outcomes are bit-identical for every limit — chunks cover contiguous row ranges
    /// and all cross-row reductions happen in fixed row order after the sharded passes.
    pub fn set_thread_limit(&mut self, limit: Option<std::num::NonZeroUsize>) {
        self.thread_limit = limit;
    }

    /// The current intra-site thread cap (see [`Self::set_thread_limit`]).
    #[must_use]
    pub fn thread_limit(&self) -> Option<std::num::NonZeroUsize> {
        self.thread_limit
    }

    fn reset(&mut self, layout: &Layout) {
        debug_assert_eq!(self.outcome.inlet_temps.len(), layout.server_count());
        for penalty in &mut self.aisle_penalty {
            *penalty = 0.0;
        }
        // In debug builds, poison every lane the row kernels are contractually required
        // to fully overwrite, so a future partial-write bug cannot silently reuse a stale
        // lane from the previous step. Release builds rely on the overwrite contract and
        // skip both the poisoning and the post-step sweep.
        #[cfg(debug_assertions)]
        self.poison_kernel_lanes();
    }

    /// Fills every kernel-overwritten buffer with NaN (debug builds only).
    #[cfg(debug_assertions)]
    fn poison_kernel_lanes(&mut self) {
        self.outcome.inlet_temps.fill(Celsius::new(f64::NAN));
        self.outcome.server_power.fill(Kilowatts::new(f64::NAN));
        self.outcome.server_airflow.fill(CubicFeetPerMinute::new(f64::NAN));
        let (gpu_c, mem_offsets) = self.outcome.gpu_temps.kernel_planes_mut();
        gpu_c.fill(f64::NAN);
        mem_offsets.fill(f64::NAN);
        self.row_load.fill(f64::NAN);
    }

    /// Verifies every poisoned lane was overwritten by the step's kernels (debug builds
    /// only — finite inputs never produce NaN, so a surviving NaN is a stale lane).
    #[cfg(debug_assertions)]
    fn assert_kernel_lanes_written(&self) {
        fn sweep(name: &str, lanes: impl Iterator<Item = f64>) {
            for (i, value) in lanes.enumerate() {
                assert!(
                    !value.is_nan(),
                    "physics kernels left {name} lane {i} unwritten (stale-lane poison \
                     survived the step, or a NaN input reached the engine)"
                );
            }
        }
        sweep("inlet", self.outcome.inlet_temps.iter().map(|c| c.value()));
        sweep("server-power", self.outcome.server_power.iter().map(|p| p.value()));
        sweep("server-airflow", self.outcome.server_airflow.iter().map(|a| a.value()));
        sweep("gpu-temp", self.outcome.gpu_temps.gpu_plane().iter().copied());
        // Derived memory values inherit NaN from either an unwritten junction lane or an
        // unwritten per-server offset, so this sweep covers the offset plane too.
        sweep("mem-temp", self.outcome.gpu_temps.iter().map(|t| t.memory.value()));
        sweep("row-load", self.row_load.iter().copied());
    }
}

/// Fused per-server GPU lane pass of the power kernel: writes each GPU's power
/// (`ServerPowerModel::gpu_power` with its terms hoisted by the caller) and returns the
/// `(Σ per-GPU power, mean utilization)` pair. The two alternating accumulator lanes make
/// the float additions pipeline instead of forming one serial dependency chain — the
/// lane order (even slots → lane 0, odd slots → lane 1, the historical `acc[slot & 1]`)
/// is part of the engine's FP-order contract.
///
/// On x86-64 the pair loop runs on explicit SSE2 packed-double intrinsics (SSE2 is part
/// of the x86-64 baseline, so no runtime detection is needed): the auto-vectorizer packs
/// `[u, f]` per lane instead of `[u₀, u₁]` across lanes, which drowns the loop in
/// shuffles. Every packed op is the lane-wise IEEE operation of the scalar path, so
/// results are bit-identical (see `kernel_reference` and `tests/soa_physics.rs`); NaN
/// activity is outside the engine's contract either way (the debug poison sweep rejects
/// it).
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma")))]
#[inline(always)]
fn power_lanes(
    static_power: f64,
    dynamic_coeff: f64,
    utilization: &[f64],
    frequency: &[f64],
    out: &mut [f64],
) -> (f64, f64) {
    // Equal-length reslicing: the caller validated the shapes up front; restating the
    // bound here lets the compiler collapse the loops into counted, branch-free form.
    let lanes = out.len();
    let utilization = &utilization[..lanes];
    let frequency = &frequency[..lanes];
    let mut util_acc = [0.0f64; 2];
    let mut pow_acc = [0.0f64; 2];
    let pairs = lanes / 2;

    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is unconditionally available on x86-64; every pointer below stays
    // within the resliced `lanes` bound (`2 * pairs <= lanes`).
    unsafe {
        use std::arch::x86_64::{
            _mm_add_pd, _mm_loadu_pd, _mm_max_pd, _mm_min_pd, _mm_mul_pd, _mm_set1_pd,
            _mm_storeu_pd,
        };
        let zero = _mm_set1_pd(0.0);
        let one = _mm_set1_pd(1.0);
        let freq_floor = _mm_set1_pd(0.1);
        let static_2 = _mm_set1_pd(static_power);
        let dynamic_2 = _mm_set1_pd(dynamic_coeff);
        let mut util_acc_2 = _mm_loadu_pd(util_acc.as_ptr());
        let mut pow_acc_2 = _mm_loadu_pd(pow_acc.as_ptr());
        for i in 0..pairs {
            let u = _mm_loadu_pd(utilization.as_ptr().add(2 * i));
            let f = _mm_loadu_pd(frequency.as_ptr().add(2 * i));
            let clamped_u = _mm_min_pd(_mm_max_pd(u, zero), one);
            let clamped_f = _mm_min_pd(_mm_max_pd(f, freq_floor), one);
            let f3 = _mm_mul_pd(_mm_mul_pd(clamped_f, clamped_f), clamped_f);
            let power =
                _mm_add_pd(static_2, _mm_mul_pd(_mm_mul_pd(dynamic_2, clamped_u), f3));
            _mm_storeu_pd(out.as_mut_ptr().add(2 * i), power);
            util_acc_2 = _mm_add_pd(util_acc_2, u);
            pow_acc_2 = _mm_add_pd(pow_acc_2, power);
        }
        _mm_storeu_pd(util_acc.as_mut_ptr(), util_acc_2);
        _mm_storeu_pd(pow_acc.as_mut_ptr(), pow_acc_2);
    }

    #[cfg(not(target_arch = "x86_64"))]
    for i in 0..pairs {
        for k in 0..2 {
            let u = utilization[2 * i + k];
            let clamped_u = u.clamp(0.0, 1.0);
            let clamped_f = frequency[2 * i + k].clamp(0.1, 1.0);
            let f3 = (clamped_f * clamped_f) * clamped_f;
            let power = static_power + dynamic_coeff * clamped_u * f3;
            util_acc[k] += u;
            pow_acc[k] += power;
            out[2 * i + k] = power;
        }
    }

    // Odd trailing lane (ragged GPU counts): its slot is even, so it lands in lane 0.
    if lanes % 2 == 1 {
        let u = utilization[lanes - 1];
        let clamped_u = u.clamp(0.0, 1.0);
        let clamped_f = frequency[lanes - 1].clamp(0.1, 1.0);
        let f3 = (clamped_f * clamped_f) * clamped_f;
        let power = static_power + dynamic_coeff * clamped_u * f3;
        util_acc[0] += u;
        pow_acc[0] += power;
        out[lanes - 1] = power;
    }
    let gpu_sum = pow_acc[0] + pow_acc[1];
    let mean_load =
        if lanes == 0 { 0.0 } else { (util_acc[0] + util_acc[1]) / lanes as f64 };
    (gpu_sum, mean_load)
}

/// Opt-in wide build of [`power_lanes`]: four-wide AVX2 lanes with fused multiply-adds,
/// compiled in place of the SSE2 pair loop when the build enables both target features
/// (`RUSTFLAGS="-C target-feature=+avx2,+fma"`), mirroring the SSE2 kernels'
/// compile-time detection. FMA fuses `dynamic·u·f³ + static` into one rounding and the
/// four-lane accumulator reduces in a different order than the two-lane contract, so
/// wide builds are deterministic for a given binary but **excluded from the digest and
/// bitwise-vs-reference contracts** (see [`WIDE_KERNELS`]). Default builds never compile
/// this path and stay bit-identical to the scalar reference.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma"))]
#[inline(always)]
fn power_lanes(
    static_power: f64,
    dynamic_coeff: f64,
    utilization: &[f64],
    frequency: &[f64],
    out: &mut [f64],
) -> (f64, f64) {
    let lanes = out.len();
    let utilization = &utilization[..lanes];
    let frequency = &frequency[..lanes];
    let quads = lanes / 4;
    let mut util_sum;
    let mut pow_sum;
    // SAFETY: the cfg gate guarantees AVX2+FMA at compile time; every pointer below
    // stays within the resliced `lanes` bound (`4 * quads <= lanes`).
    unsafe {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd,
            _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        };
        let zero = _mm256_set1_pd(0.0);
        let one = _mm256_set1_pd(1.0);
        let freq_floor = _mm256_set1_pd(0.1);
        let static_4 = _mm256_set1_pd(static_power);
        let dynamic_4 = _mm256_set1_pd(dynamic_coeff);
        let mut util_acc_4 = zero;
        let mut pow_acc_4 = zero;
        for i in 0..quads {
            let u = _mm256_loadu_pd(utilization.as_ptr().add(4 * i));
            let f = _mm256_loadu_pd(frequency.as_ptr().add(4 * i));
            let clamped_u = _mm256_min_pd(_mm256_max_pd(u, zero), one);
            let clamped_f = _mm256_min_pd(_mm256_max_pd(f, freq_floor), one);
            let f3 = _mm256_mul_pd(_mm256_mul_pd(clamped_f, clamped_f), clamped_f);
            let power = _mm256_fmadd_pd(_mm256_mul_pd(dynamic_4, clamped_u), f3, static_4);
            _mm256_storeu_pd(out.as_mut_ptr().add(4 * i), power);
            util_acc_4 = _mm256_add_pd(util_acc_4, u);
            pow_acc_4 = _mm256_add_pd(pow_acc_4, power);
        }
        let mut u4 = [0.0f64; 4];
        let mut p4 = [0.0f64; 4];
        _mm256_storeu_pd(u4.as_mut_ptr(), util_acc_4);
        _mm256_storeu_pd(p4.as_mut_ptr(), pow_acc_4);
        // Fixed pairwise reduction: deterministic within a wide build, but a different
        // FP order than the two-lane contract.
        util_sum = (u4[0] + u4[2]) + (u4[1] + u4[3]);
        pow_sum = (p4[0] + p4[2]) + (p4[1] + p4[3]);
    }
    // Scalar tail for the 1–3 trailing lanes of ragged GPU counts.
    for i in 4 * quads..lanes {
        let u = utilization[i];
        let clamped_u = u.clamp(0.0, 1.0);
        let clamped_f = frequency[i].clamp(0.1, 1.0);
        let f3 = (clamped_f * clamped_f) * clamped_f;
        let power = (dynamic_coeff * clamped_u).mul_add(f3, static_power);
        util_sum += u;
        pow_sum += power;
        out[i] = power;
    }
    let mean_load = if lanes == 0 { 0.0 } else { util_sum / lanes as f64 };
    (pow_sum, mean_load)
}

struct RowPowerTask<'a> {
    plan: &'a RowPlan,
    servers: &'a [crate::topology::Server],
    /// The row's window of the flat utilization plane (validated against the topology's
    /// GPU offsets up front, so no per-server shape checks remain in the loop).
    utilization: &'a [f64],
    /// The row's window of the flat frequency-scale plane.
    frequency: &'a [f64],
    airflow: &'a mut [CubicFeetPerMinute],
    power: &'a mut [Kilowatts],
    /// The row's window of the junction-temperature plane, used as per-GPU power staging
    /// (in watts) until the thermal pass transforms it in place.
    power_stage: &'a mut [f64],
    row_load: &'a mut f64,
}

impl RowPowerTask<'_> {
    fn run(&mut self, airflow_model: &AirflowModel, power_model: &ServerPowerModel) {
        match self.plan.uniform {
            Some(terms) => self.run_uniform(&terms),
            None => self.run_mixed(airflow_model, power_model),
        }
    }

    /// Fast path for a spec-homogeneous row: every spec-derived term arrives hoisted in
    /// the row plan, so the per-server stride is fixed and the loop never touches the
    /// `Server` structs. The activity arrives as dense plane windows, so the loop is
    /// three linear streams the hardware prefetcher follows on its own (the old
    /// per-server `Vec` shape needed explicit prefetch hints to hide its pointer chase).
    fn run_uniform(&mut self, t: &RowUniformTerms) {
        let gpus = t.gpus_per_server;
        let mut load_sum = 0.0;
        let mut gpu_offset = 0usize;
        for i in 0..self.power.len() {
            let lanes = gpu_offset..gpu_offset + gpus;
            let (gpu_sum, mean_load) = power_lanes(
                t.gpu_static_w,
                t.gpu_dynamic_w,
                &self.utilization[lanes.clone()],
                &self.frequency[lanes.clone()],
                &mut self.power_stage[lanes],
            );
            load_sum += mean_load;
            self.airflow[i] = t.airflow_idle + t.airflow_span * mean_load.clamp(0.0, 1.0);
            // Total = Σ per-GPU + overhead, where overhead = max(f_power(mean) − Σ, 0); this
            // collapses to the larger of the two without re-walking the slice. The select
            // is `f64::max` minus its NaN bookkeeping (both operands are finite sums of
            // clamped terms), which a bare `maxsd` implements exactly.
            let server_w = t.power.at_load(mean_load).to_watts().value();
            let total = if server_w >= gpu_sum { server_w } else { gpu_sum };
            self.power[i] = Watts::new(total).to_kilowatts();
            gpu_offset += gpus;
        }
        *self.row_load = load_sum;
    }

    /// General path for mixed-spec or ragged rows: terms are hoisted per server instead
    /// of per row, everything else is the same math in the same order.
    fn run_mixed(&mut self, airflow_model: &AirflowModel, power_model: &ServerPowerModel) {
        let mut load_sum = 0.0;
        let mut gpu_offset = 0usize;
        for (i, server) in self.servers.iter().enumerate() {
            let spec = &server.spec;
            let (static_power, dynamic_coeff) = power_model.gpu_power_terms(spec);
            let lanes = gpu_offset..gpu_offset + spec.gpus_per_server;
            let (gpu_sum, mean_load) = power_lanes(
                static_power,
                dynamic_coeff,
                &self.utilization[lanes.clone()],
                &self.frequency[lanes.clone()],
                &mut self.power_stage[lanes],
            );
            load_sum += mean_load;
            self.airflow[i] = airflow_model.server_airflow(spec, mean_load);
            let server_w = power_model.server_power(spec, mean_load).to_watts().value();
            let total = if server_w >= gpu_sum { server_w } else { gpu_sum };
            self.power[i] = Watts::new(total).to_kilowatts();
            gpu_offset += spec.gpus_per_server;
        }
        *self.row_load = load_sum;
    }
}

/// Branch-free GPU lane pass of the thermal kernel: transforms the row's staged per-GPU
/// power lanes into junction temperatures *in place* (the power pass wrote watts into
/// the junction plane; streaming one plane twice beats streaming two planes once each)
/// and returns whether any lane overshot its throttle limit, so the sparse collection
/// pass runs only when a throttle actually fired. The flag is an OR of comparisons
/// rather than a running `f64::max` — the max's NaN-propagation semantics cost a
/// five-instruction select per lane and serialize the loop. Neither memory temperatures
/// nor overshoots are stored per lane: memory derives from the per-server offset (see
/// [`TempGrid`]) and the collection pass recomputes `base − limit` (bitwise the same
/// value), because at the 10k-server scale the step is memory-bound and every avoided
/// full-plane stream is ~10 % of the step.
///
/// As in [`power_lanes`], the x86-64 pair loop uses explicit SSE2 packed doubles; every
/// packed op is the lane-wise IEEE operation of the scalar path, so results are
/// bit-identical to the retained scalar reference.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma")))]
#[inline(always)]
fn thermal_lanes(
    base_common: f64,
    power_coeff: f64,
    limit: f64,
    offsets: &[f64],
    gpu_out: &mut [f64],
) -> bool {
    // Equal-length reslicing, as in `power_lanes`: counted, branch-free loops.
    let lanes = gpu_out.len();
    let offsets = &offsets[..lanes];
    #[allow(unused_assignments)] // the initializer is dead on x86_64 (the SSE2 block assigns)
    let mut any_hot = false;
    let pairs = lanes / 2;

    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is unconditionally available on x86-64; every pointer below stays
    // within the resliced `lanes` bound (`2 * pairs <= lanes`).
    unsafe {
        use std::arch::x86_64::{
            _mm_add_pd, _mm_cmpgt_pd, _mm_loadu_pd, _mm_movemask_pd, _mm_mul_pd,
            _mm_set1_pd, _mm_storeu_pd,
        };
        let base_2 = _mm_set1_pd(base_common);
        let coeff_2 = _mm_set1_pd(power_coeff);
        let limit_2 = _mm_set1_pd(limit);
        let mut hot_mask = 0i32;
        for i in 0..pairs {
            let power = _mm_loadu_pd(gpu_out.as_ptr().add(2 * i));
            let offset = _mm_loadu_pd(offsets.as_ptr().add(2 * i));
            let base = _mm_add_pd(_mm_add_pd(base_2, _mm_mul_pd(coeff_2, power)), offset);
            _mm_storeu_pd(gpu_out.as_mut_ptr().add(2 * i), base);
            hot_mask |= _mm_movemask_pd(_mm_cmpgt_pd(base, limit_2));
        }
        any_hot = hot_mask != 0;
    }

    #[cfg(not(target_arch = "x86_64"))]
    for i in 0..2 * pairs {
        let base = base_common + power_coeff * gpu_out[i] + offsets[i];
        gpu_out[i] = base;
        any_hot |= base > limit;
    }

    // Odd trailing lane (ragged GPU counts).
    if lanes % 2 == 1 {
        let base = base_common + power_coeff * gpu_out[lanes - 1] + offsets[lanes - 1];
        gpu_out[lanes - 1] = base;
        any_hot |= base > limit;
    }
    any_hot
}

/// Opt-in wide build of [`thermal_lanes`]: four-wide AVX2 lanes with one fused
/// multiply-add per GPU, compiled in place of the SSE2 pair loop under
/// `-C target-feature=+avx2,+fma`. Same determinism caveat as the wide
/// [`power_lanes`]: excluded from digest contracts (see [`WIDE_KERNELS`]).
#[cfg(all(target_arch = "x86_64", target_feature = "avx2", target_feature = "fma"))]
#[inline(always)]
fn thermal_lanes(
    base_common: f64,
    power_coeff: f64,
    limit: f64,
    offsets: &[f64],
    gpu_out: &mut [f64],
) -> bool {
    let lanes = gpu_out.len();
    let offsets = &offsets[..lanes];
    let quads = lanes / 4;
    let mut any_hot;
    // SAFETY: the cfg gate guarantees AVX2+FMA at compile time; every pointer below
    // stays within the resliced `lanes` bound (`4 * quads <= lanes`).
    unsafe {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_cmp_pd, _mm256_fmadd_pd, _mm256_loadu_pd,
            _mm256_movemask_pd, _mm256_set1_pd, _mm256_storeu_pd, _CMP_GT_OQ,
        };
        let base_4 = _mm256_set1_pd(base_common);
        let coeff_4 = _mm256_set1_pd(power_coeff);
        let limit_4 = _mm256_set1_pd(limit);
        let mut hot_mask = 0i32;
        for i in 0..quads {
            let power = _mm256_loadu_pd(gpu_out.as_ptr().add(4 * i));
            let offset = _mm256_loadu_pd(offsets.as_ptr().add(4 * i));
            let base = _mm256_add_pd(_mm256_fmadd_pd(coeff_4, power, base_4), offset);
            _mm256_storeu_pd(gpu_out.as_mut_ptr().add(4 * i), base);
            hot_mask |= _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(base, limit_4));
        }
        any_hot = hot_mask != 0;
    }
    // Scalar tail for the 1–3 trailing lanes of ragged GPU counts.
    for i in 4 * quads..lanes {
        let base = power_coeff.mul_add(gpu_out[i], base_common) + offsets[i];
        gpu_out[i] = base;
        any_hot |= base > limit;
    }
    any_hot
}

/// Sparse collection pass of the branch-free throttle detection: walks one server's
/// junction lanes and emits directives in slot order — the same order (and the same
/// `overshoot = base − limit` values) the in-loop branch produced before. Only reached
/// when the lane pass flagged an overshoot, so the common all-cool step never branches
/// per lane.
fn collect_throttles(
    server: ServerId,
    limit: f64,
    gpu_c: &[f64],
    out: &mut Vec<ThermalThrottleDirective>,
) {
    for (slot, &base) in gpu_c.iter().enumerate() {
        let over = base - limit;
        if over > 0.0 {
            // The hardware reduces clocks proportionally to the overshoot, with a floor
            // of 50 % of nominal frequency (matching observed DVFS behaviour).
            let frequency_scale = (1.0 - 0.05 * over).clamp(0.5, 0.95);
            out.push(ThermalThrottleDirective {
                gpu: GpuId::new(server, slot),
                temperature: Celsius::new(base),
                frequency_scale,
            });
        }
    }
}

struct RowThermalTask<'a> {
    plan: &'a RowPlan,
    servers: &'a [crate::topology::Server],
    /// Ordinal of the row's first server (fast path reconstructs `ServerId`s from it).
    row_start: usize,
    /// The row's window of the staged per-server memory-boundedness plane.
    memory_boundedness: &'a [f64],
    /// The row's window of the inlet model's spatial-offset plane.
    spatial: &'a [f64],
    /// The row's window of the thermal model's per-GPU offset plane.
    thermal_offsets: &'a [f64],
    aisle_penalty: &'a [f64],
    /// Step-invariant inlet base: `InletCurve::base(outside)`.
    inlet_base: f64,
    /// Step-invariant inlet load term: `InletCurve::load_term(datacenter_load)`.
    load_term: f64,
    inlets: &'a mut [Celsius],
    /// The row's window of the junction plane; holds the staged per-GPU watts on entry,
    /// junction temperatures on exit.
    gpu_c: &'a mut [f64],
    /// The row's window of the per-server memory-temperature offsets.
    mem_offsets: &'a mut [f64],
    throttles: &'a mut Vec<ThermalThrottleDirective>,
}

impl RowThermalTask<'_> {
    fn run(&mut self, coeffs: &GpuThermalCoefficients) {
        self.throttles.clear();
        match self.plan.uniform {
            Some(terms) => self.run_uniform(&terms, coeffs),
            None => self.run_mixed(coeffs),
        }
    }

    /// Fast path for a spec-homogeneous row: the throttle limit and GPU stride come from
    /// the row plan, and the recirculation penalty is hoisted per row (rows never span
    /// aisles), so the loop never touches the `Server` structs.
    fn run_uniform(&mut self, t: &RowUniformTerms, coeffs: &GpuThermalCoefficients) {
        let gpus = t.gpus_per_server;
        let limit = t.throttle_limit_c;
        let penalty = self.aisle_penalty[self.plan.aisle].max(0.0);
        let mut gpu_offset = 0usize;
        for i in 0..self.inlets.len() {
            let inlet = Celsius::new(self.inlet_base + self.spatial[i] + self.load_term + penalty);
            self.inlets[i] = inlet;
            let base_common = coeffs.base_terms(inlet);
            self.mem_offsets[i] = coeffs.memory_offset(self.memory_boundedness[i]);
            let lanes = gpu_offset..gpu_offset + gpus;
            let hot = thermal_lanes(
                base_common,
                coeffs.power_coeff,
                limit,
                &self.thermal_offsets[lanes.clone()],
                &mut self.gpu_c[lanes.clone()],
            );
            if hot {
                collect_throttles(
                    ServerId::new(self.row_start + i),
                    limit,
                    &self.gpu_c[lanes],
                    self.throttles,
                );
            }
            gpu_offset += gpus;
        }
    }

    /// General path for mixed-spec or ragged rows: the stride, throttle limit and aisle
    /// penalty are read per server, everything else is the same math in the same order.
    fn run_mixed(&mut self, coeffs: &GpuThermalCoefficients) {
        let mut gpu_offset = 0usize;
        for (i, server) in self.servers.iter().enumerate() {
            let penalty = self.aisle_penalty[server.aisle.index()].max(0.0);
            let inlet = Celsius::new(self.inlet_base + self.spatial[i] + self.load_term + penalty);
            self.inlets[i] = inlet;
            let base_common = coeffs.base_terms(inlet);
            self.mem_offsets[i] = coeffs.memory_offset(self.memory_boundedness[i]);
            let gpus = server.spec.gpus_per_server;
            let lanes = gpu_offset..gpu_offset + gpus;
            let hot = thermal_lanes(
                base_common,
                coeffs.power_coeff,
                server.spec.gpu_throttle_temp_c,
                &self.thermal_offsets[lanes.clone()],
                &mut self.gpu_c[lanes.clone()],
            );
            if hot {
                collect_throttles(
                    server.id,
                    server.spec.gpu_throttle_temp_c,
                    &self.gpu_c[lanes],
                    self.throttles,
                );
            }
            gpu_offset += gpus;
        }
    }
}

/// Minimum cluster size below which per-row threading costs more than it saves.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_SERVERS: usize = 256;

/// The worker-thread budget for intra-site row sharding: the workspace's explicit limit
/// when set (the digest tests force 1, 2 and N), otherwise the machine's available
/// parallelism.
#[cfg(feature = "parallel")]
fn physics_threads(limit: Option<std::num::NonZeroUsize>) -> usize {
    limit
        .map(std::num::NonZeroUsize::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

#[cfg(not(feature = "parallel"))]
fn physics_threads(_limit: Option<std::num::NonZeroUsize>) -> usize {
    1
}

/// Returns `true` when per-row tasks should be dispatched to threads. Always `false`
/// without the `parallel` feature; with it, requires a large enough cluster, at least two
/// worker threads and at least two rows. When this returns `false`, rows are processed
/// inline in row order with no task staging at all.
#[cfg(feature = "parallel")]
fn parallel_active(server_count: usize, row_count: usize, threads: usize) -> bool {
    server_count >= PARALLEL_MIN_SERVERS && threads >= 2 && row_count >= 2
}

#[cfg(not(feature = "parallel"))]
fn parallel_active(_server_count: usize, _row_count: usize, _threads: usize) -> bool {
    false
}

/// Runs staged per-row tasks concurrently, one scoped thread per pre-balanced chunk of
/// contiguous rows (only called with a non-empty task list when [`parallel_active`]
/// returned `true`; `chunks` yields each chunk's task count and must sum to
/// `tasks.len()`). Each task owns disjoint output slices, and every cross-row reduction
/// downstream happens in fixed row order after the sharded passes, so results are
/// bit-identical with and without threads — for any thread count.
#[cfg(feature = "parallel")]
fn run_row_tasks<T: Send>(
    tasks: &mut [T],
    chunks: impl Iterator<Item = usize>,
    run: impl Fn(&mut T) + Sync,
) {
    if tasks.is_empty() {
        return;
    }
    let run = &run;
    std::thread::scope(|scope| {
        let mut rest = tasks;
        for len in chunks {
            let (group, tail) = rest.split_at_mut(len);
            rest = tail;
            if group.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for task in group {
                    run(task);
                }
            });
        }
        debug_assert!(rest.is_empty(), "row chunks must cover every staged task");
    });
}

#[cfg(not(feature = "parallel"))]
fn run_row_tasks<T>(tasks: &mut [T], _chunks: impl Iterator<Item = usize>, run: impl Fn(&mut T)) {
    for task in tasks {
        run(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::FailureSchedule;
    use crate::topology::LayoutConfig;
    use simkit::time::SimTime;

    fn datacenter() -> Datacenter {
        Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42)
    }

    #[test]
    fn idle_cluster_is_cool_and_uncapped() {
        let dc = datacenter();
        let outcome = dc.evaluate(&StepInput::idle(dc.layout(), Celsius::new(18.0)));
        assert!(outcome.max_gpu_temp().value() < 55.0);
        assert!(!outcome.power.any_over_budget());
        assert!(outcome.thermal_throttles.is_empty());
        assert!(!outcome.any_airflow_violation());
        assert_eq!(outcome.datacenter_load, 0.0);
        assert_eq!(outcome.inlet_temps.len(), 80);
        assert_eq!(outcome.gpu_temps.server_count(), 80);
        assert_eq!(outcome.gpu_temps.gpu_count(), 640);
        assert_eq!(outcome.gpu_temps.server(ServerId::new(0)).len(), 8);
    }

    #[test]
    fn load_raises_temperature_and_power_monotonically() {
        let dc = datacenter();
        let mut last_temp = 0.0;
        let mut last_power = 0.0;
        for load in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let outcome =
                dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(22.0), load));
            let t = outcome.max_gpu_temp().value();
            let p = outcome.peak_row_power().value();
            assert!(t >= last_temp, "temperature must be monotone in load");
            assert!(p >= last_power, "power must be monotone in load");
            last_temp = t;
            last_power = p;
        }
    }

    #[test]
    fn hot_day_full_load_produces_hot_gpus() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(35.0), 1.0));
        // Full load on a hot day should push the hottest GPUs near or past the limit.
        assert!(outcome.max_gpu_temp().value() > 70.0);
        // Memory runs hotter than the GPU under the default 0.5 boundedness? Not necessarily,
        // but it must be within a few degrees.
        assert!((outcome.max_mem_temp().value() - outcome.max_gpu_temp().value()).abs() < 6.0);
    }

    #[test]
    fn thermal_throttles_fire_above_limit() {
        let dc = datacenter();
        // Extreme outside temperature forces inlet (and thus GPU) temperatures over the limit.
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(45.0), 1.0));
        assert!(outcome.throttled_gpu_count() > 0);
        for directive in &outcome.thermal_throttles {
            assert!(directive.temperature.value() > 85.0);
            assert!(directive.frequency_scale >= 0.5 && directive.frequency_scale < 1.0);
        }
    }

    #[test]
    fn power_capping_triggers_when_row_budget_exceeded() {
        // Provision rows for only 60 % of TDP, then run at full load.
        let mut cfg = LayoutConfig::real_cluster_two_rows();
        cfg.row_power_provisioning = 0.6;
        let dc = Datacenter::new(cfg.build(), 1);
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 1.0));
        assert!(outcome.power.any_over_budget());
        assert!(!outcome.power.capping.is_empty());
    }

    #[test]
    fn power_cap_reduces_effective_budgets_and_triggers_capping() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 0.8);
        let uncapped = dc.evaluate(&input);
        assert!(!uncapped.power.any_over_budget());

        // Cap the site to 60 %: the same load now exceeds every row and UPS budget.
        input.power_cap = 0.6;
        let capped = dc.evaluate(&input);
        assert!(capped.power.any_over_budget());
        assert!(!capped.power.capping.is_empty());
        let row0 = dc.layout().rows()[0].id;
        assert!(
            (capped.power.rows[row0].budget.value()
                - uncapped.power.rows[row0].budget.value() * 0.6)
                .abs()
                < 1e-9,
            "effective row budget must be provisioned × cap"
        );
        // Physical draw is unchanged — the cap shifts budgets, not physics.
        assert_eq!(capped.server_power, uncapped.server_power);
        assert_eq!(capped.gpu_temps, uncapped.gpu_temps);

        // A 1.0 cap is byte-identical to the uncapped step.
        input.power_cap = 1.0;
        assert_eq!(dc.evaluate(&input), uncapped);
    }

    #[test]
    fn cooling_failure_raises_inlet_temperatures() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(28.0), 0.9);
        let healthy = dc.evaluate(&input);
        let schedule = FailureSchedule::none().with_thermal_emergency(
            SimTime::ZERO,
            SimTime::from_hours(2),
        );
        input.failures = schedule.state_at(SimTime::from_minutes(30));
        let degraded = dc.evaluate(&input);
        // Less airflow available -> higher (or equal) utilization and potentially recirculation.
        let healthy_util = healthy.aisle_airflow[AisleId::new(0)].utilization;
        let degraded_util = degraded.aisle_airflow[AisleId::new(0)].utilization;
        assert!(degraded_util > healthy_util);
        assert!(degraded.max_gpu_temp().value() >= healthy.max_gpu_temp().value());
    }

    #[test]
    fn power_emergency_caps_aggressively() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 0.7);
        let healthy = dc.evaluate(&input);
        assert!(!healthy.power.any_over_budget());
        let schedule = FailureSchedule::none()
            .with_power_emergency(SimTime::ZERO, SimTime::from_hours(1));
        input.failures = schedule.state_at(SimTime::from_minutes(10));
        let degraded = dc.evaluate(&input);
        assert!(degraded.power.any_over_budget());
        assert_eq!(degraded.power.capping.len(), dc.layout().server_count());
    }

    #[test]
    fn spatial_heterogeneity_shows_in_outcome() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(25.0), 0.8));
        let inlets: Vec<f64> = outcome.inlet_temps.iter().map(|t| t.value()).collect();
        let spread = simkit::stats::max(&inlets).unwrap() - simkit::stats::min(&inlets).unwrap();
        assert!(spread > 1.0, "inlet spread should reflect spatial heterogeneity: {spread}");
        // GPUs within one server differ because of layout/process variation.
        let first_server = outcome.gpu_temps.server(ServerId::new(0));
        let temps: Vec<f64> = first_server.iter().map(|t| t.gpu.value()).collect();
        let gpu_spread = simkit::stats::max(&temps).unwrap() - simkit::stats::min(&temps).unwrap();
        assert!(gpu_spread > 1.0);
    }

    /// The legacy per-server shape with one entry removed, rebuilt through the compat
    /// constructor (planes derive their offsets from the entries, so malformed shapes
    /// stay representable and the engine's validation still fires).
    fn legacy_activity(dc: &Datacenter) -> Vec<ServerActivity> {
        dc.layout()
            .servers()
            .iter()
            .map(|s| ServerActivity::idle(s.spec.gpus_per_server))
            .collect()
    }

    #[test]
    #[should_panic(expected = "activity must cover every server")]
    fn mismatched_activity_length_panics() {
        let dc = datacenter();
        let mut servers = legacy_activity(&dc);
        servers.pop();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity = ActivityPlanes::from_servers(&servers);
        let _ = dc.evaluate(&input);
    }

    #[test]
    #[should_panic(expected = "match the server spec")]
    fn mismatched_gpu_count_panics() {
        let dc = datacenter();
        let mut servers = legacy_activity(&dc);
        servers[0].gpu_utilization.pop();
        servers[0].frequency_scale.pop();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity = ActivityPlanes::from_servers(&servers);
        let _ = dc.evaluate(&input);
    }

    #[test]
    #[should_panic(expected = "activity frequency count must match")]
    fn ragged_legacy_activity_is_unrepresentable() {
        let mut servers = vec![ServerActivity::idle(8)];
        servers[0].frequency_scale.pop();
        let _ = ActivityPlanes::from_servers(&servers);
    }

    /// The planes' hand-written serde must reproduce the legacy `Vec<ServerActivity>`
    /// byte encoding exactly — golden artifacts that captured step inputs before the SoA
    /// conversion depend on it — and round-trip losslessly.
    #[test]
    fn activity_planes_serde_matches_legacy_encoding() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(25.0), 0.7);
        let mid = input.activity.server_mut(3);
        mid.gpu_utilization[1] = 0.123;
        mid.frequency_scale[5] = 0.88;
        *mid.memory_boundedness = 0.9;
        let legacy: Vec<ServerActivity> = (0..input.activity.server_count())
            .map(|i| {
                let s = input.activity.server(i);
                ServerActivity {
                    gpu_utilization: s.gpu_utilization.to_vec(),
                    frequency_scale: s.frequency_scale.to_vec(),
                    memory_boundedness: s.memory_boundedness,
                }
            })
            .collect();
        let planes_json =
            serde_json::to_string(&input.activity).expect("serialize planes");
        let legacy_json = serde_json::to_string(&legacy).expect("serialize legacy");
        assert_eq!(planes_json, legacy_json, "planes must keep the legacy encoding");

        let restored = ActivityPlanes::from_value(&input.activity.to_value())
            .expect("planes deserialize");
        assert_eq!(restored, input.activity);
        assert_eq!(ActivityPlanes::from_servers(&legacy), input.activity);
    }

    /// Per-server views and the allocation-free fill helpers agree with the legacy
    /// constructors.
    #[test]
    fn planes_views_match_legacy_constructors() {
        let dc = datacenter();
        let mut planes = ActivityPlanes::idle_for(dc.layout());
        assert_eq!(planes.server_count(), 80);
        assert_eq!(planes.gpu_count(), 640);
        assert_eq!(planes.offsets(), dc.topology().gpu_offsets());
        let idle = ServerActivity::idle(8);
        let s0 = planes.server(0);
        assert_eq!(s0.gpu_utilization, &idle.gpu_utilization[..]);
        assert_eq!(s0.frequency_scale, &idle.frequency_scale[..]);
        assert_eq!(s0.memory_boundedness, idle.memory_boundedness);
        planes.set_uniform(2, 1.7);
        let expected = ServerActivity::uniform(8, 1.7);
        let s2 = planes.server(2);
        assert_eq!(s2.gpu_utilization, &expected.gpu_utilization[..]);
        assert_eq!(s2.memory_boundedness, expected.memory_boundedness);
        planes.set_idle(2);
        assert_eq!(planes, ActivityPlanes::idle_for(dc.layout()));
    }
}
