//! The per-step evaluation pipeline.
//!
//! [`Datacenter`] owns the layout and the generative thermal/power models, and
//! [`Datacenter::evaluate`] turns one step's per-GPU activity into:
//!
//! 1. per-server airflow demand and per-aisle airflow assessment (Eq. 3), including the heat
//!    recirculation penalty when an aisle is over-subscribed or an AHU has failed;
//! 2. per-server inlet temperatures (Eq. 1) given outside temperature, datacenter load and
//!    the recirculation penalty;
//! 3. per-GPU and per-GPU-memory temperatures (Eq. 2);
//! 4. per-server power and the hierarchy assessment (Eq. 4) with power capping directives;
//! 5. thermal throttling directives for GPUs above their junction limit.
//!
//! The engine is stateless across steps apart from the models' static offsets: the caller
//! (the cluster simulator) owns all dynamic state (which VM runs where, what load it offers)
//! and applies the capping/throttling directives to the *next* step's activity, which mirrors
//! how real telemetry-driven control loops behave.

use crate::cooling::airflow::{AirflowModel, AisleAirflowAssessment};
use crate::cooling::gpu::{GpuTemperatures, GpuThermalCoefficients, GpuThermalModel, TempGrid};
use crate::cooling::inlet::{InletCurve, InletModel};
use crate::failures::FailureState;
use crate::ids::{AisleId, GpuId, RowId, ServerId};
use crate::index::{OrdinalMap, TopologyIndex};
use crate::power::hierarchy::{CapacityState, PowerAssessment, PowerHierarchy};
use crate::power::server::ServerPowerModel;
use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::sync::Arc;

/// Activity of one server during a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerActivity {
    /// Per-GPU utilization in `[0, 1]`.
    pub gpu_utilization: Vec<f64>,
    /// Per-GPU frequency scale in `(0, 1]` (1.0 = nominal clocks).
    pub frequency_scale: Vec<f64>,
    /// Memory-boundedness of the work in `[0, 1]` (0 = prefill-like, 1 = decode-like).
    pub memory_boundedness: f64,
}

impl ServerActivity {
    /// An idle server with the given GPU count.
    #[must_use]
    pub fn idle(gpu_count: usize) -> Self {
        Self {
            gpu_utilization: vec![0.0; gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.0,
        }
    }

    /// A server with every GPU at the same utilization and nominal frequency.
    #[must_use]
    pub fn uniform(gpu_count: usize, utilization: f64) -> Self {
        Self {
            gpu_utilization: vec![utilization.clamp(0.0, 1.0); gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.5,
        }
    }

    /// Mean GPU utilization of the server.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.gpu_utilization.is_empty() {
            0.0
        } else {
            self.gpu_utilization.iter().sum::<f64>() / self.gpu_utilization.len() as f64
        }
    }
}

/// Input to one evaluation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepInput {
    /// Outside air temperature.
    pub outside_temp: Celsius,
    /// Per-server activity, indexed by [`ServerId::index`].
    pub activity: Vec<ServerActivity>,
    /// Active infrastructure failures.
    pub failures: FailureState,
}

impl StepInput {
    /// An all-idle cluster at a given outside temperature (useful for tests and baselines).
    #[must_use]
    pub fn idle(layout: &Layout, outside_temp: Celsius) -> Self {
        Self {
            outside_temp,
            activity: layout
                .servers()
                .iter()
                .map(|s| ServerActivity::idle(s.spec.gpus_per_server))
                .collect(),
            failures: FailureState::healthy(),
        }
    }

    /// A uniformly loaded cluster.
    #[must_use]
    pub fn uniform_load(layout: &Layout, outside_temp: Celsius, utilization: f64) -> Self {
        Self {
            outside_temp,
            activity: layout
                .servers()
                .iter()
                .map(|s| ServerActivity::uniform(s.spec.gpus_per_server, utilization))
                .collect(),
            failures: FailureState::healthy(),
        }
    }
}

/// A GPU that crossed its thermal limit, and the frequency reduction the hardware applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalThrottleDirective {
    /// The throttled GPU.
    pub gpu: GpuId,
    /// Junction temperature that triggered the throttle.
    pub temperature: Celsius,
    /// Frequency scale the hardware enforces until the GPU cools (`< 1.0`).
    pub frequency_scale: f64,
}

/// Everything the engine derives for one step.
///
/// All fields are dense, topology-ordinal grids: per-server vectors indexed by
/// [`ServerId::index`], the flat server-major [`TempGrid`], and one [`OrdinalMap`] per
/// aggregation level. The shapes are frozen by the [`TopologyIndex`] of the datacenter that
/// produced the outcome, so fleet-level consumers can aggregate across datacenters with
/// O(1) per-cell access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Per-server inlet temperature.
    pub inlet_temps: Vec<Celsius>,
    /// Per-GPU temperatures: one contiguous server-major grid.
    pub gpu_temps: TempGrid,
    /// Per-server total power.
    pub server_power: Vec<Kilowatts>,
    /// Per-server airflow demand.
    pub server_airflow: Vec<CubicFeetPerMinute>,
    /// Per-aisle airflow assessment, indexed by [`AisleId`].
    pub aisle_airflow: OrdinalMap<AisleId, AisleAirflowAssessment>,
    /// Power-hierarchy assessment, including power capping directives.
    pub power: PowerAssessment,
    /// GPUs above their thermal limit and the throttle the hardware applies.
    pub thermal_throttles: Vec<ThermalThrottleDirective>,
    /// Normalized datacenter load in `[0, 1]` used for the inlet model.
    pub datacenter_load: f64,
}

impl StepOutcome {
    /// The hottest GPU temperature across the datacenter.
    #[must_use]
    pub fn max_gpu_temp(&self) -> Celsius {
        self.gpu_temps.max_gpu()
    }

    /// The hottest GPU-memory temperature across the datacenter.
    #[must_use]
    pub fn max_mem_temp(&self) -> Celsius {
        self.gpu_temps.max_mem()
    }

    /// The peak row power.
    #[must_use]
    pub fn peak_row_power(&self) -> Kilowatts {
        self.power.peak_row_power()
    }

    /// Per-row power draw, in row order (allocation-free compatibility accessor).
    pub fn row_power(&self) -> impl ExactSizeIterator<Item = (RowId, Kilowatts)> + '_ {
        self.power.row_power()
    }

    /// Number of GPUs currently thermally throttled.
    #[must_use]
    pub fn throttled_gpu_count(&self) -> usize {
        self.thermal_throttles.len()
    }

    /// Returns `true` if any aisle violates its airflow provisioning.
    #[must_use]
    pub fn any_airflow_violation(&self) -> bool {
        self.aisle_airflow.values().any(AisleAirflowAssessment::is_violated)
    }
}

/// Tunable model parameters for a [`Datacenter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct DatacenterModels {
    /// Inlet-temperature curve (Eq. 1).
    pub inlet_curve: InletCurve,
    /// GPU-temperature coefficients (Eq. 2).
    pub gpu_thermal: GpuThermalCoefficients,
    /// Airflow / recirculation model (Eq. 3).
    pub airflow: AirflowModel,
    /// Server power model (Eq. 4).
    pub power: ServerPowerModel,
}


/// The datacenter physics engine.
#[derive(Debug, Clone)]
pub struct Datacenter {
    layout: Layout,
    topology: Arc<TopologyIndex>,
    inlet_model: InletModel,
    gpu_model: GpuThermalModel,
    airflow_model: AirflowModel,
    power_model: ServerPowerModel,
    hierarchy: PowerHierarchy,
    fingerprint: u64,
}

impl Datacenter {
    /// Creates a datacenter with default model parameters and deterministic per-entity
    /// offsets derived from `seed`.
    #[must_use]
    pub fn new(layout: Layout, seed: u64) -> Self {
        Self::with_models(layout, DatacenterModels::default(), seed)
    }

    /// Creates a datacenter with explicit model parameters.
    #[must_use]
    pub fn with_models(layout: Layout, models: DatacenterModels, seed: u64) -> Self {
        let inlet_model = InletModel::for_layout(&layout, models.inlet_curve, seed);
        let gpu_model = GpuThermalModel::for_layout(&layout, models.gpu_thermal, seed);
        let hierarchy = PowerHierarchy::from_layout(&layout);
        let topology = Arc::new(TopologyIndex::from_layout(&layout));
        let fingerprint = Self::fingerprint_of(&layout, &models, seed);
        Self {
            layout,
            topology,
            inlet_model,
            gpu_model,
            airflow_model: models.airflow,
            power_model: models.power,
            hierarchy,
            fingerprint,
        }
    }

    /// A deterministic digest of `(layout, models, seed)` identifying this datacenter's
    /// generative models. Two datacenters with equal fingerprints produce identical physics,
    /// so derived artifacts (e.g. offline profiles) can be shared between them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn fingerprint_of(layout: &Layout, models: &DatacenterModels, seed: u64) -> u64 {
        // FNV-1a over the structural parameters; deterministic across processes.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(seed);
        mix(layout.server_count() as u64);
        mix(layout.rows().len() as u64);
        mix(layout.aisles().len() as u64);
        mix(layout.racks().len() as u64);
        mix(layout.pdus().len() as u64);
        mix(layout.upses().len() as u64);
        // Every server spec participates (mixed fleets must not collide).
        for server in layout.servers() {
            mix(server.spec.gpus_per_server as u64);
            mix(server.spec.max_power.value().to_bits());
            mix(server.spec.idle_power.value().to_bits());
            mix(server.spec.gpu_max_power.value().to_bits());
            mix(server.spec.idle_airflow.value().to_bits());
            mix(server.spec.max_airflow.value().to_bits());
            mix(server.spec.gpu_throttle_temp_c.to_bits());
            mix(server.spec.mem_throttle_temp_c.to_bits());
        }
        for row in layout.rows() {
            mix(row.power_budget.value().to_bits());
            mix(row.servers.len() as u64);
        }
        for aisle in layout.aisles() {
            mix(aisle.airflow_provisioned.value().to_bits());
            mix(aisle.ahu_count as u64);
        }
        // Every tunable of every model participates.
        mix(models.inlet_curve.floor_c.to_bits());
        mix(models.inlet_curve.floor_until_outside_c.to_bits());
        mix(models.inlet_curve.mid_slope.to_bits());
        mix(models.inlet_curve.hot_from_outside_c.to_bits());
        mix(models.inlet_curve.hot_slope.to_bits());
        mix(models.inlet_curve.load_sensitivity_c.to_bits());
        mix(models.gpu_thermal.inlet_coeff.to_bits());
        mix(models.gpu_thermal.power_coeff.to_bits());
        mix(models.gpu_thermal.intercept.to_bits());
        mix(models.gpu_thermal.layout_penalty_c.to_bits());
        mix(models.gpu_thermal.process_variation_std_c.to_bits());
        mix(models.gpu_thermal.mem_offset_membound_c.to_bits());
        mix(models.gpu_thermal.mem_offset_computebound_c.to_bits());
        mix(models.airflow.recirculation_penalty_c_per_10pct.to_bits());
        mix(models.power.linear_weight.to_bits());
        hash
    }

    /// The physical layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The frozen ordinal geometry of this datacenter. Clone the `Arc` to share the handle
    /// with workspaces or fleet-level aggregation.
    #[must_use]
    pub fn topology(&self) -> &Arc<TopologyIndex> {
        &self.topology
    }

    /// The inlet-temperature model.
    #[must_use]
    pub fn inlet_model(&self) -> &InletModel {
        &self.inlet_model
    }

    /// The GPU thermal model.
    #[must_use]
    pub fn gpu_model(&self) -> &GpuThermalModel {
        &self.gpu_model
    }

    /// The server power model.
    #[must_use]
    pub fn power_model(&self) -> &ServerPowerModel {
        &self.power_model
    }

    /// The airflow model.
    #[must_use]
    pub fn airflow_model(&self) -> &AirflowModel {
        &self.airflow_model
    }

    /// The power hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &PowerHierarchy {
        &self.hierarchy
    }

    /// Evaluates one step, allocating a fresh [`StepWorkspace`].
    ///
    /// Callers on the hot loop should hold a persistent workspace and use
    /// [`Self::evaluate_into`] instead, which reuses every intermediate and output buffer
    /// across steps.
    ///
    /// # Panics
    /// Panics if `input.activity` does not have exactly one entry per server, or if a
    /// server's activity has a different GPU count than its spec.
    #[must_use]
    pub fn evaluate(&self, input: &StepInput) -> StepOutcome {
        let mut workspace = StepWorkspace::for_topology(Arc::clone(&self.topology));
        self.evaluate_into(input, &mut workspace);
        workspace.outcome
    }

    /// Evaluates one step into a reusable workspace (allocation-free after the first step).
    ///
    /// Per-server physics (airflow, power split, GPU temperatures, throttle detection) runs
    /// on contiguous per-row slices; with the `parallel` feature enabled and a large enough
    /// cluster, rows are processed concurrently with identical results (all reductions happen
    /// in fixed row order).
    ///
    /// # Panics
    /// Panics if `input.activity` does not have exactly one entry per server, or if a
    /// server's activity has a different GPU count than its spec.
    pub fn evaluate_into(&self, input: &StepInput, workspace: &mut StepWorkspace) {
        assert_eq!(
            input.activity.len(),
            self.layout.server_count(),
            "activity must cover every server"
        );
        workspace.reset(&self.layout);
        let server_count = self.layout.server_count();
        let servers = self.layout.servers();
        let topology = Arc::clone(&workspace.topology);
        let row_ranges = topology.row_ranges();
        let gpu_offsets = topology.gpu_offsets();

        // 1. Per-server loads, airflow demand and power, processed per contiguous row slice.
        let parallel = parallel_active(server_count, row_ranges.len());
        {
            let outcome = &mut workspace.outcome;
            let mut airflow_rest = outcome.server_airflow.as_mut_slice();
            let mut power_rest = outcome.server_power.as_mut_slice();
            let mut gpu_power_rest = workspace.gpu_power_flat.as_mut_slice();
            let mut load_rest = workspace.row_load.as_mut_slice();
            let mut tasks: Vec<RowPowerTask<'_>> = Vec::new();
            if parallel {
                tasks.reserve(row_ranges.len());
            }
            for range in row_ranges {
                let row_len = range.end - range.start;
                let gpu_len =
                    (gpu_offsets[range.end] - gpu_offsets[range.start]) as usize;
                let (airflow, rest) = airflow_rest.split_at_mut(row_len);
                airflow_rest = rest;
                let (power, rest) = power_rest.split_at_mut(row_len);
                power_rest = rest;
                let (gpu_power, rest) = gpu_power_rest.split_at_mut(gpu_len);
                gpu_power_rest = rest;
                let (load, rest) = load_rest.split_at_mut(1);
                load_rest = rest;
                let mut task = RowPowerTask {
                    servers: &servers[range.clone()],
                    activity: &input.activity[range.clone()],
                    airflow,
                    power,
                    gpu_power,
                    row_load: &mut load[0],
                };
                if parallel {
                    tasks.push(task);
                } else {
                    task.run(&self.airflow_model, &self.power_model);
                }
            }
            run_row_tasks(&mut tasks, |task| {
                task.run(&self.airflow_model, &self.power_model);
            });
        }
        // Fixed-order reduction keeps the total identical with and without `parallel`.
        let total_load: f64 = workspace.row_load.iter().sum();
        let datacenter_load =
            if server_count > 0 { total_load / server_count as f64 } else { 0.0 };
        workspace.outcome.datacenter_load = datacenter_load;

        // 2. Aisle airflow assessment and recirculation penalties, written into the
        // pre-sized per-aisle grid.
        for aisle in self.layout.aisles() {
            let fraction = input
                .failures
                .aisle_airflow_fraction(aisle.id, aisle.ahu_count);
            let server_airflow = &workspace.outcome.server_airflow;
            let assessment = self.airflow_model.assess_aisle(
                aisle,
                |s: ServerId| server_airflow[s.index()],
                fraction,
            );
            workspace.aisle_penalty[aisle.id.index()] = assessment.recirculation_penalty_c;
            workspace.outcome.aisle_airflow[aisle.id] = assessment;
        }

        // 3./4. Inlet and GPU temperatures plus thermal throttles, per contiguous row slice
        // of the flat temperature grid.
        {
            let outcome = &mut workspace.outcome;
            let mut inlet_rest = outcome.inlet_temps.as_mut_slice();
            let mut temps_rest = outcome.gpu_temps.flat_mut();
            let mut throttles_rest = workspace.row_throttles.as_mut_slice();
            let mut tasks: Vec<RowThermalTask<'_>> = Vec::new();
            if parallel {
                tasks.reserve(row_ranges.len());
            }
            for range in row_ranges {
                let row_len = range.end - range.start;
                let gpu_start = gpu_offsets[range.start] as usize;
                let gpu_end = gpu_offsets[range.end] as usize;
                let (inlets, rest) = inlet_rest.split_at_mut(row_len);
                inlet_rest = rest;
                let (temps, rest) = temps_rest.split_at_mut(gpu_end - gpu_start);
                temps_rest = rest;
                let (throttles, rest) = throttles_rest.split_at_mut(1);
                throttles_rest = rest;
                let mut task = RowThermalTask {
                    servers: &servers[range.clone()],
                    activity: &input.activity[range.clone()],
                    gpu_power: &workspace.gpu_power_flat[gpu_start..gpu_end],
                    aisle_penalty: &workspace.aisle_penalty,
                    outside_temp: input.outside_temp,
                    datacenter_load,
                    inlets,
                    temps,
                    throttles: &mut throttles[0],
                };
                if parallel {
                    tasks.push(task);
                } else {
                    task.run(&self.inlet_model, &self.gpu_model);
                }
            }
            run_row_tasks(&mut tasks, |task| {
                task.run(&self.inlet_model, &self.gpu_model);
            });
        }
        workspace.outcome.thermal_throttles.clear();
        for row in &mut workspace.row_throttles {
            workspace.outcome.thermal_throttles.append(row);
        }

        // 5. Power hierarchy assessment and capping, written into the reusable dense grids.
        input
            .failures
            .capacity_state_into(&self.layout, &mut workspace.capacity);
        self.hierarchy.assess_into(
            &workspace.outcome.server_power,
            &workspace.capacity,
            &mut workspace.outcome.power,
            &mut workspace.hierarchy_scratch,
        );
    }
}

/// Reusable buffers for [`Datacenter::evaluate_into`], including the output
/// [`StepOutcome`] whose grids are overwritten in place each step.
///
/// The workspace is shaped by a [`TopologyIndex`] handle (shared with the engine via
/// `Arc`), which freezes the grid strides every buffer follows.
#[derive(Debug)]
pub struct StepWorkspace {
    /// The most recent step's outcome.
    pub outcome: StepOutcome,
    /// The frozen ordinal geometry the grids follow.
    topology: Arc<TopologyIndex>,
    /// Flat per-GPU power, server-major.
    gpu_power_flat: Vec<Watts>,
    /// Recirculation penalty per aisle index.
    aisle_penalty: Vec<f64>,
    /// Sum of mean server loads per row.
    row_load: Vec<f64>,
    /// Per-row throttle staging buffers (concatenated in row order for determinism).
    row_throttles: Vec<Vec<ThermalThrottleDirective>>,
    /// Reusable power-capacity state derived from the step's failures.
    capacity: CapacityState,
    hierarchy_scratch: crate::power::hierarchy::HierarchyScratch,
}

impl StepWorkspace {
    /// Creates a workspace sized for a layout (freezing a fresh [`TopologyIndex`]).
    ///
    /// Callers that already hold a datacenter should prefer [`Self::for_topology`] with
    /// [`Datacenter::topology`] so the handle is shared instead of rebuilt.
    ///
    /// # Panics
    /// Panics if the layout's rows are not contiguous server-index ranges (the builder
    /// always produces contiguous rows).
    #[must_use]
    pub fn new(layout: &Layout) -> Self {
        Self::for_topology(Arc::new(TopologyIndex::from_layout(layout)))
    }

    /// Creates a workspace over an existing topology handle.
    #[must_use]
    pub fn for_topology(topology: Arc<TopologyIndex>) -> Self {
        let server_count = topology.server_count();
        let empty_aisle = AisleAirflowAssessment {
            demand: CubicFeetPerMinute::ZERO,
            available: CubicFeetPerMinute::ZERO,
            utilization: 0.0,
            recirculation_penalty_c: 0.0,
        };
        let outcome = StepOutcome {
            inlet_temps: vec![Celsius::ZERO; server_count],
            gpu_temps: TempGrid::for_topology(&topology),
            server_power: vec![Kilowatts::ZERO; server_count],
            server_airflow: vec![CubicFeetPerMinute::ZERO; server_count],
            aisle_airflow: OrdinalMap::filled(topology.aisle_count(), empty_aisle),
            power: PowerAssessment::empty(),
            thermal_throttles: Vec::new(),
            datacenter_load: 0.0,
        };
        Self {
            outcome,
            gpu_power_flat: vec![Watts::ZERO; topology.gpu_count()],
            aisle_penalty: vec![0.0; topology.aisle_count()],
            row_load: vec![0.0; topology.row_count()],
            row_throttles: vec![Vec::new(); topology.row_count()],
            capacity: CapacityState::healthy(),
            hierarchy_scratch: crate::power::hierarchy::HierarchyScratch::default(),
            topology,
        }
    }

    /// The topology handle the workspace grids follow.
    #[must_use]
    pub fn topology(&self) -> &Arc<TopologyIndex> {
        &self.topology
    }

    fn reset(&mut self, layout: &Layout) {
        debug_assert_eq!(self.outcome.inlet_temps.len(), layout.server_count());
        for penalty in &mut self.aisle_penalty {
            *penalty = 0.0;
        }
    }
}

struct RowPowerTask<'a> {
    servers: &'a [crate::topology::Server],
    activity: &'a [ServerActivity],
    airflow: &'a mut [CubicFeetPerMinute],
    power: &'a mut [Kilowatts],
    gpu_power: &'a mut [Watts],
    row_load: &'a mut f64,
}

impl RowPowerTask<'_> {
    fn run(&mut self, airflow_model: &AirflowModel, power_model: &ServerPowerModel) {
        let mut load_sum = 0.0;
        let mut gpu_offset = 0usize;
        for (i, (server, activity)) in self.servers.iter().zip(self.activity).enumerate() {
            assert_eq!(
                activity.gpu_utilization.len(),
                server.spec.gpus_per_server,
                "activity GPU count must match the server spec"
            );
            // Fused per-server pass: one walk over the GPUs computes the utilization sum and
            // the per-GPU powers (`ServerPowerModel::gpu_power` with its terms hoisted), with
            // two accumulators so the float additions pipeline instead of forming one serial
            // dependency chain.
            let spec = &server.spec;
            let (static_power, dynamic_coeff) = power_model.gpu_power_terms(spec);
            let gpu_slice =
                &mut self.gpu_power[gpu_offset..gpu_offset + spec.gpus_per_server];
            let mut util_acc = [0.0f64; 2];
            let mut power_acc = [0.0f64; 2];
            for (slot, ((out, &u), &f)) in gpu_slice
                .iter_mut()
                .zip(&activity.gpu_utilization)
                .zip(&activity.frequency_scale)
                .enumerate()
            {
                let utilization = u.clamp(0.0, 1.0);
                let frequency = f.clamp(0.1, 1.0);
                let f3 = (frequency * frequency) * frequency;
                let power = static_power + dynamic_coeff * utilization * f3;
                util_acc[slot & 1] += u;
                power_acc[slot & 1] += power;
                *out = Watts::new(power);
            }
            let gpu_sum = power_acc[0] + power_acc[1];
            let mean_load = if spec.gpus_per_server == 0 {
                0.0
            } else {
                (util_acc[0] + util_acc[1]) / spec.gpus_per_server as f64
            };
            load_sum += mean_load;
            self.airflow[i] = airflow_model.server_airflow(spec, mean_load);
            // Total = Σ per-GPU + overhead, where overhead = max(f_power(mean) − Σ, 0); this
            // collapses to the larger of the two without re-walking the slice.
            let total = power_model
                .server_power(spec, mean_load)
                .to_watts()
                .value()
                .max(gpu_sum);
            self.power[i] = Watts::new(total).to_kilowatts();
            gpu_offset += spec.gpus_per_server;
        }
        *self.row_load = load_sum;
    }
}

struct RowThermalTask<'a> {
    servers: &'a [crate::topology::Server],
    activity: &'a [ServerActivity],
    gpu_power: &'a [Watts],
    aisle_penalty: &'a [f64],
    outside_temp: Celsius,
    datacenter_load: f64,
    inlets: &'a mut [Celsius],
    /// The row's window of the flat server-major temperature grid.
    temps: &'a mut [GpuTemperatures],
    throttles: &'a mut Vec<ThermalThrottleDirective>,
}

impl RowThermalTask<'_> {
    fn run(&mut self, inlet_model: &InletModel, gpu_model: &GpuThermalModel) {
        self.throttles.clear();
        let coeffs = *gpu_model.coefficients();
        let mut gpu_offset = 0usize;
        for (i, (server, activity)) in self.servers.iter().zip(self.activity).enumerate() {
            let penalty = self.aisle_penalty[server.aisle.index()];
            let inlet = inlet_model.inlet_temp(
                server.id,
                self.outside_temp,
                self.datacenter_load,
                penalty,
            );
            self.inlets[i] = inlet;
            let limit = server.spec.gpu_throttle_temp_c;
            // `GpuThermalModel::temperatures`, evaluated over the server's contiguous offset
            // slice with the per-server terms hoisted through the shared helpers.
            let base_common = coeffs.base_terms(inlet);
            let mem_offset = coeffs.memory_offset(activity.memory_boundedness);
            let offsets = gpu_model.server_offsets(server.id);
            let powers = &self.gpu_power[gpu_offset..gpu_offset + offsets.len()];
            let out = &mut self.temps[gpu_offset..gpu_offset + offsets.len()];
            for (slot, ((&offset, &power), out)) in
                offsets.iter().zip(powers).zip(out).enumerate()
            {
                let base = base_common + coeffs.power_coeff * power.value() + offset;
                let t = GpuTemperatures {
                    gpu: Celsius::new(base),
                    memory: Celsius::new(base + mem_offset),
                };
                if base > limit {
                    // The hardware reduces clocks proportionally to the overshoot, with a
                    // floor of 50 % of nominal frequency (matching observed DVFS behaviour).
                    let overshoot = base - limit;
                    let frequency_scale = (1.0 - 0.05 * overshoot).clamp(0.5, 0.95);
                    self.throttles.push(ThermalThrottleDirective {
                        gpu: GpuId::new(server.id, slot),
                        temperature: t.gpu,
                        frequency_scale,
                    });
                }
                *out = t;
            }
            gpu_offset += offsets.len();
        }
    }
}

/// Minimum cluster size below which per-row threading costs more than it saves.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_SERVERS: usize = 256;

/// Returns `true` when per-row tasks should be dispatched to threads. Always `false`
/// without the `parallel` feature; with it, requires a large enough cluster and available
/// cores. When this returns `false`, rows are processed inline in row order with no task
/// staging at all.
#[cfg(feature = "parallel")]
fn parallel_active(server_count: usize, row_count: usize) -> bool {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    server_count >= PARALLEL_MIN_SERVERS && threads >= 2 && row_count >= 2
}

#[cfg(not(feature = "parallel"))]
fn parallel_active(_server_count: usize, _row_count: usize) -> bool {
    false
}

/// Runs staged per-row tasks concurrently (only called with a non-empty task list when
/// [`parallel_active`] returned `true`). Each task owns disjoint output slices, and every
/// cross-row reduction downstream happens in fixed row order, so results are bit-identical
/// with and without threads.
#[cfg(feature = "parallel")]
fn run_row_tasks<T: Send>(tasks: &mut [T], run: impl Fn(&mut T) + Sync) {
    if tasks.is_empty() {
        return;
    }
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let chunk = tasks.len().div_ceil(threads.min(tasks.len()));
    std::thread::scope(|scope| {
        for group in tasks.chunks_mut(chunk) {
            scope.spawn(|| {
                for task in group {
                    run(task);
                }
            });
        }
    });
}

#[cfg(not(feature = "parallel"))]
fn run_row_tasks<T>(tasks: &mut [T], run: impl Fn(&mut T)) {
    for task in tasks {
        run(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::FailureSchedule;
    use crate::topology::LayoutConfig;
    use simkit::time::SimTime;

    fn datacenter() -> Datacenter {
        Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42)
    }

    #[test]
    fn idle_cluster_is_cool_and_uncapped() {
        let dc = datacenter();
        let outcome = dc.evaluate(&StepInput::idle(dc.layout(), Celsius::new(18.0)));
        assert!(outcome.max_gpu_temp().value() < 55.0);
        assert!(!outcome.power.any_over_budget());
        assert!(outcome.thermal_throttles.is_empty());
        assert!(!outcome.any_airflow_violation());
        assert_eq!(outcome.datacenter_load, 0.0);
        assert_eq!(outcome.inlet_temps.len(), 80);
        assert_eq!(outcome.gpu_temps.server_count(), 80);
        assert_eq!(outcome.gpu_temps.gpu_count(), 640);
        assert_eq!(outcome.gpu_temps.server(ServerId::new(0)).len(), 8);
    }

    #[test]
    fn load_raises_temperature_and_power_monotonically() {
        let dc = datacenter();
        let mut last_temp = 0.0;
        let mut last_power = 0.0;
        for load in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let outcome =
                dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(22.0), load));
            let t = outcome.max_gpu_temp().value();
            let p = outcome.peak_row_power().value();
            assert!(t >= last_temp, "temperature must be monotone in load");
            assert!(p >= last_power, "power must be monotone in load");
            last_temp = t;
            last_power = p;
        }
    }

    #[test]
    fn hot_day_full_load_produces_hot_gpus() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(35.0), 1.0));
        // Full load on a hot day should push the hottest GPUs near or past the limit.
        assert!(outcome.max_gpu_temp().value() > 70.0);
        // Memory runs hotter than the GPU under the default 0.5 boundedness? Not necessarily,
        // but it must be within a few degrees.
        assert!((outcome.max_mem_temp().value() - outcome.max_gpu_temp().value()).abs() < 6.0);
    }

    #[test]
    fn thermal_throttles_fire_above_limit() {
        let dc = datacenter();
        // Extreme outside temperature forces inlet (and thus GPU) temperatures over the limit.
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(45.0), 1.0));
        assert!(outcome.throttled_gpu_count() > 0);
        for directive in &outcome.thermal_throttles {
            assert!(directive.temperature.value() > 85.0);
            assert!(directive.frequency_scale >= 0.5 && directive.frequency_scale < 1.0);
        }
    }

    #[test]
    fn power_capping_triggers_when_row_budget_exceeded() {
        // Provision rows for only 60 % of TDP, then run at full load.
        let mut cfg = LayoutConfig::real_cluster_two_rows();
        cfg.row_power_provisioning = 0.6;
        let dc = Datacenter::new(cfg.build(), 1);
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 1.0));
        assert!(outcome.power.any_over_budget());
        assert!(!outcome.power.capping.is_empty());
    }

    #[test]
    fn cooling_failure_raises_inlet_temperatures() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(28.0), 0.9);
        let healthy = dc.evaluate(&input);
        let schedule = FailureSchedule::none().with_thermal_emergency(
            SimTime::ZERO,
            SimTime::from_hours(2),
        );
        input.failures = schedule.state_at(SimTime::from_minutes(30));
        let degraded = dc.evaluate(&input);
        // Less airflow available -> higher (or equal) utilization and potentially recirculation.
        let healthy_util = healthy.aisle_airflow[AisleId::new(0)].utilization;
        let degraded_util = degraded.aisle_airflow[AisleId::new(0)].utilization;
        assert!(degraded_util > healthy_util);
        assert!(degraded.max_gpu_temp().value() >= healthy.max_gpu_temp().value());
    }

    #[test]
    fn power_emergency_caps_aggressively() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 0.7);
        let healthy = dc.evaluate(&input);
        assert!(!healthy.power.any_over_budget());
        let schedule = FailureSchedule::none()
            .with_power_emergency(SimTime::ZERO, SimTime::from_hours(1));
        input.failures = schedule.state_at(SimTime::from_minutes(10));
        let degraded = dc.evaluate(&input);
        assert!(degraded.power.any_over_budget());
        assert_eq!(degraded.power.capping.len(), dc.layout().server_count());
    }

    #[test]
    fn spatial_heterogeneity_shows_in_outcome() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(25.0), 0.8));
        let inlets: Vec<f64> = outcome.inlet_temps.iter().map(|t| t.value()).collect();
        let spread = simkit::stats::max(&inlets).unwrap() - simkit::stats::min(&inlets).unwrap();
        assert!(spread > 1.0, "inlet spread should reflect spatial heterogeneity: {spread}");
        // GPUs within one server differ because of layout/process variation.
        let first_server = outcome.gpu_temps.server(ServerId::new(0));
        let temps: Vec<f64> = first_server.iter().map(|t| t.gpu.value()).collect();
        let gpu_spread = simkit::stats::max(&temps).unwrap() - simkit::stats::min(&temps).unwrap();
        assert!(gpu_spread > 1.0);
    }

    #[test]
    #[should_panic(expected = "activity must cover every server")]
    fn mismatched_activity_length_panics() {
        let dc = datacenter();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity.pop();
        let _ = dc.evaluate(&input);
    }

    #[test]
    #[should_panic(expected = "match the server spec")]
    fn mismatched_gpu_count_panics() {
        let dc = datacenter();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity[0].gpu_utilization.pop();
        let _ = dc.evaluate(&input);
    }
}
