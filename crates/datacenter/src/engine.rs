//! The per-step evaluation pipeline.
//!
//! [`Datacenter`] owns the layout and the generative thermal/power models, and
//! [`Datacenter::evaluate`] turns one step's per-GPU activity into:
//!
//! 1. per-server airflow demand and per-aisle airflow assessment (Eq. 3), including the heat
//!    recirculation penalty when an aisle is over-subscribed or an AHU has failed;
//! 2. per-server inlet temperatures (Eq. 1) given outside temperature, datacenter load and
//!    the recirculation penalty;
//! 3. per-GPU and per-GPU-memory temperatures (Eq. 2);
//! 4. per-server power and the hierarchy assessment (Eq. 4) with power capping directives;
//! 5. thermal throttling directives for GPUs above their junction limit.
//!
//! The engine is stateless across steps apart from the models' static offsets: the caller
//! (the cluster simulator) owns all dynamic state (which VM runs where, what load it offers)
//! and applies the capping/throttling directives to the *next* step's activity, which mirrors
//! how real telemetry-driven control loops behave.

use crate::cooling::airflow::{AirflowModel, AisleAirflowAssessment};
use crate::cooling::gpu::{GpuTemperatures, GpuThermalCoefficients, GpuThermalModel};
use crate::cooling::inlet::{InletCurve, InletModel};
use crate::failures::FailureState;
use crate::ids::{AisleId, GpuId, RowId, ServerId};
use crate::power::hierarchy::{PowerAssessment, PowerHierarchy};
use crate::power::server::ServerPowerModel;
use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::units::{Celsius, CubicFeetPerMinute, Kilowatts, Watts};
use std::collections::BTreeMap;

/// Activity of one server during a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerActivity {
    /// Per-GPU utilization in `[0, 1]`.
    pub gpu_utilization: Vec<f64>,
    /// Per-GPU frequency scale in `(0, 1]` (1.0 = nominal clocks).
    pub frequency_scale: Vec<f64>,
    /// Memory-boundedness of the work in `[0, 1]` (0 = prefill-like, 1 = decode-like).
    pub memory_boundedness: f64,
}

impl ServerActivity {
    /// An idle server with the given GPU count.
    #[must_use]
    pub fn idle(gpu_count: usize) -> Self {
        Self {
            gpu_utilization: vec![0.0; gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.0,
        }
    }

    /// A server with every GPU at the same utilization and nominal frequency.
    #[must_use]
    pub fn uniform(gpu_count: usize, utilization: f64) -> Self {
        Self {
            gpu_utilization: vec![utilization.clamp(0.0, 1.0); gpu_count],
            frequency_scale: vec![1.0; gpu_count],
            memory_boundedness: 0.5,
        }
    }

    /// Mean GPU utilization of the server.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.gpu_utilization.is_empty() {
            0.0
        } else {
            self.gpu_utilization.iter().sum::<f64>() / self.gpu_utilization.len() as f64
        }
    }
}

/// Input to one evaluation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepInput {
    /// Outside air temperature.
    pub outside_temp: Celsius,
    /// Per-server activity, indexed by [`ServerId::index`].
    pub activity: Vec<ServerActivity>,
    /// Active infrastructure failures.
    pub failures: FailureState,
}

impl StepInput {
    /// An all-idle cluster at a given outside temperature (useful for tests and baselines).
    #[must_use]
    pub fn idle(layout: &Layout, outside_temp: Celsius) -> Self {
        Self {
            outside_temp,
            activity: layout
                .servers()
                .iter()
                .map(|s| ServerActivity::idle(s.spec.gpus_per_server))
                .collect(),
            failures: FailureState::healthy(),
        }
    }

    /// A uniformly loaded cluster.
    #[must_use]
    pub fn uniform_load(layout: &Layout, outside_temp: Celsius, utilization: f64) -> Self {
        Self {
            outside_temp,
            activity: layout
                .servers()
                .iter()
                .map(|s| ServerActivity::uniform(s.spec.gpus_per_server, utilization))
                .collect(),
            failures: FailureState::healthy(),
        }
    }
}

/// A GPU that crossed its thermal limit, and the frequency reduction the hardware applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalThrottleDirective {
    /// The throttled GPU.
    pub gpu: GpuId,
    /// Junction temperature that triggered the throttle.
    pub temperature: Celsius,
    /// Frequency scale the hardware enforces until the GPU cools (`< 1.0`).
    pub frequency_scale: f64,
}

/// Everything the engine derives for one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Per-server inlet temperature.
    pub inlet_temps: Vec<Celsius>,
    /// Per-server, per-GPU temperatures.
    pub gpu_temps: Vec<Vec<GpuTemperatures>>,
    /// Per-server total power.
    pub server_power: Vec<Kilowatts>,
    /// Per-server airflow demand.
    pub server_airflow: Vec<CubicFeetPerMinute>,
    /// Per-aisle airflow assessment.
    pub aisle_airflow: BTreeMap<AisleId, AisleAirflowAssessment>,
    /// Power-hierarchy assessment, including power capping directives.
    pub power: PowerAssessment,
    /// GPUs above their thermal limit and the throttle the hardware applies.
    pub thermal_throttles: Vec<ThermalThrottleDirective>,
    /// Normalized datacenter load in `[0, 1]` used for the inlet model.
    pub datacenter_load: f64,
}

impl StepOutcome {
    /// The hottest GPU temperature across the datacenter.
    #[must_use]
    pub fn max_gpu_temp(&self) -> Celsius {
        self.gpu_temps
            .iter()
            .flatten()
            .map(|t| t.gpu)
            .fold(Celsius::new(f64::MIN), Celsius::max)
    }

    /// The hottest GPU-memory temperature across the datacenter.
    #[must_use]
    pub fn max_mem_temp(&self) -> Celsius {
        self.gpu_temps
            .iter()
            .flatten()
            .map(|t| t.memory)
            .fold(Celsius::new(f64::MIN), Celsius::max)
    }

    /// The peak row power.
    #[must_use]
    pub fn peak_row_power(&self) -> Kilowatts {
        self.power.peak_row_power()
    }

    /// Per-row power draw.
    #[must_use]
    pub fn row_power(&self) -> BTreeMap<RowId, Kilowatts> {
        self.power.rows.iter().map(|(&id, util)| (id, util.draw)).collect()
    }

    /// Number of GPUs currently thermally throttled.
    #[must_use]
    pub fn throttled_gpu_count(&self) -> usize {
        self.thermal_throttles.len()
    }

    /// Returns `true` if any aisle violates its airflow provisioning.
    #[must_use]
    pub fn any_airflow_violation(&self) -> bool {
        self.aisle_airflow.values().any(AisleAirflowAssessment::is_violated)
    }
}

/// Tunable model parameters for a [`Datacenter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterModels {
    /// Inlet-temperature curve (Eq. 1).
    pub inlet_curve: InletCurve,
    /// GPU-temperature coefficients (Eq. 2).
    pub gpu_thermal: GpuThermalCoefficients,
    /// Airflow / recirculation model (Eq. 3).
    pub airflow: AirflowModel,
    /// Server power model (Eq. 4).
    pub power: ServerPowerModel,
}

impl Default for DatacenterModels {
    fn default() -> Self {
        Self {
            inlet_curve: InletCurve::default(),
            gpu_thermal: GpuThermalCoefficients::default(),
            airflow: AirflowModel::default(),
            power: ServerPowerModel::default(),
        }
    }
}

/// The datacenter physics engine.
#[derive(Debug, Clone)]
pub struct Datacenter {
    layout: Layout,
    inlet_model: InletModel,
    gpu_model: GpuThermalModel,
    airflow_model: AirflowModel,
    power_model: ServerPowerModel,
    hierarchy: PowerHierarchy,
}

impl Datacenter {
    /// Creates a datacenter with default model parameters and deterministic per-entity
    /// offsets derived from `seed`.
    #[must_use]
    pub fn new(layout: Layout, seed: u64) -> Self {
        Self::with_models(layout, DatacenterModels::default(), seed)
    }

    /// Creates a datacenter with explicit model parameters.
    #[must_use]
    pub fn with_models(layout: Layout, models: DatacenterModels, seed: u64) -> Self {
        let inlet_model = InletModel::for_layout(&layout, models.inlet_curve, seed);
        let gpu_model = GpuThermalModel::for_layout(&layout, models.gpu_thermal, seed);
        let hierarchy = PowerHierarchy::from_layout(&layout);
        Self {
            layout,
            inlet_model,
            gpu_model,
            airflow_model: models.airflow,
            power_model: models.power,
            hierarchy,
        }
    }

    /// The physical layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The inlet-temperature model.
    #[must_use]
    pub fn inlet_model(&self) -> &InletModel {
        &self.inlet_model
    }

    /// The GPU thermal model.
    #[must_use]
    pub fn gpu_model(&self) -> &GpuThermalModel {
        &self.gpu_model
    }

    /// The server power model.
    #[must_use]
    pub fn power_model(&self) -> &ServerPowerModel {
        &self.power_model
    }

    /// The airflow model.
    #[must_use]
    pub fn airflow_model(&self) -> &AirflowModel {
        &self.airflow_model
    }

    /// The power hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &PowerHierarchy {
        &self.hierarchy
    }

    /// Evaluates one step.
    ///
    /// # Panics
    /// Panics if `input.activity` does not have exactly one entry per server, or if a
    /// server's activity has a different GPU count than its spec.
    #[must_use]
    pub fn evaluate(&self, input: &StepInput) -> StepOutcome {
        assert_eq!(
            input.activity.len(),
            self.layout.server_count(),
            "activity must cover every server"
        );

        // 1. Per-server loads, airflow demand and power.
        let mut server_airflow = Vec::with_capacity(self.layout.server_count());
        let mut server_power = Vec::with_capacity(self.layout.server_count());
        let mut per_gpu_power: Vec<Vec<Watts>> = Vec::with_capacity(self.layout.server_count());
        let mut total_load = 0.0;
        for (server, activity) in self.layout.servers().iter().zip(&input.activity) {
            assert_eq!(
                activity.gpu_utilization.len(),
                server.spec.gpus_per_server,
                "activity GPU count must match the server spec"
            );
            let mean_load = activity.mean_utilization();
            total_load += mean_load;
            server_airflow.push(self.airflow_model.server_airflow(&server.spec, mean_load));
            let (gpu_power, overhead) = self.power_model.split_server_power(
                &server.spec,
                &activity.gpu_utilization,
                &activity.frequency_scale,
            );
            let total: Watts = gpu_power.iter().copied().sum::<Watts>() + overhead;
            server_power.push(total.to_kilowatts());
            per_gpu_power.push(gpu_power);
        }
        let datacenter_load = if self.layout.server_count() > 0 {
            total_load / self.layout.server_count() as f64
        } else {
            0.0
        };

        // 2. Aisle airflow assessment and recirculation penalties.
        let mut aisle_airflow = BTreeMap::new();
        let mut aisle_penalty: BTreeMap<AisleId, f64> = BTreeMap::new();
        for aisle in self.layout.aisles() {
            let fraction = input
                .failures
                .aisle_airflow_fraction(aisle.id, aisle.ahu_count);
            let assessment = self.airflow_model.assess_aisle(
                aisle,
                |s: ServerId| server_airflow[s.index()],
                fraction,
            );
            aisle_penalty.insert(aisle.id, assessment.recirculation_penalty_c);
            aisle_airflow.insert(aisle.id, assessment);
        }

        // 3. Inlet temperatures.
        let inlet_temps: Vec<Celsius> = self
            .layout
            .servers()
            .iter()
            .map(|server| {
                let penalty = aisle_penalty.get(&server.aisle).copied().unwrap_or(0.0);
                self.inlet_model.inlet_temp(
                    server.id,
                    input.outside_temp,
                    datacenter_load,
                    penalty,
                )
            })
            .collect();

        // 4. GPU temperatures and thermal throttles.
        let mut gpu_temps = Vec::with_capacity(self.layout.server_count());
        let mut thermal_throttles = Vec::new();
        for (server, activity) in self.layout.servers().iter().zip(&input.activity) {
            let inlet = inlet_temps[server.id.index()];
            let mut temps = Vec::with_capacity(server.spec.gpus_per_server);
            for slot in 0..server.spec.gpus_per_server {
                let gpu_id = GpuId::new(server.id, slot);
                let t = self.gpu_model.temperatures(
                    gpu_id,
                    inlet,
                    per_gpu_power[server.id.index()][slot],
                    activity.memory_boundedness,
                );
                let limit = server.spec.gpu_throttle_temp_c;
                if t.gpu.value() > limit {
                    // The hardware reduces clocks proportionally to the overshoot, with a
                    // floor of 50 % of nominal frequency (matching observed DVFS behaviour).
                    let overshoot = t.gpu.value() - limit;
                    let frequency_scale = (1.0 - 0.05 * overshoot).clamp(0.5, 0.95);
                    thermal_throttles.push(ThermalThrottleDirective {
                        gpu: gpu_id,
                        temperature: t.gpu,
                        frequency_scale,
                    });
                }
                temps.push(t);
            }
            gpu_temps.push(temps);
        }

        // 5. Power hierarchy assessment and capping.
        let capacity = input.failures.capacity_state(&self.layout);
        let power = self.hierarchy.assess(&server_power, &capacity);

        StepOutcome {
            inlet_temps,
            gpu_temps,
            server_power,
            server_airflow,
            aisle_airflow,
            power,
            thermal_throttles,
            datacenter_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::FailureSchedule;
    use crate::topology::LayoutConfig;
    use simkit::time::SimTime;

    fn datacenter() -> Datacenter {
        Datacenter::new(LayoutConfig::real_cluster_two_rows().build(), 42)
    }

    #[test]
    fn idle_cluster_is_cool_and_uncapped() {
        let dc = datacenter();
        let outcome = dc.evaluate(&StepInput::idle(dc.layout(), Celsius::new(18.0)));
        assert!(outcome.max_gpu_temp().value() < 55.0);
        assert!(!outcome.power.any_over_budget());
        assert!(outcome.thermal_throttles.is_empty());
        assert!(!outcome.any_airflow_violation());
        assert_eq!(outcome.datacenter_load, 0.0);
        assert_eq!(outcome.inlet_temps.len(), 80);
        assert_eq!(outcome.gpu_temps.len(), 80);
        assert_eq!(outcome.gpu_temps[0].len(), 8);
    }

    #[test]
    fn load_raises_temperature_and_power_monotonically() {
        let dc = datacenter();
        let mut last_temp = 0.0;
        let mut last_power = 0.0;
        for load in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let outcome =
                dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(22.0), load));
            let t = outcome.max_gpu_temp().value();
            let p = outcome.peak_row_power().value();
            assert!(t >= last_temp, "temperature must be monotone in load");
            assert!(p >= last_power, "power must be monotone in load");
            last_temp = t;
            last_power = p;
        }
    }

    #[test]
    fn hot_day_full_load_produces_hot_gpus() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(35.0), 1.0));
        // Full load on a hot day should push the hottest GPUs near or past the limit.
        assert!(outcome.max_gpu_temp().value() > 70.0);
        // Memory runs hotter than the GPU under the default 0.5 boundedness? Not necessarily,
        // but it must be within a few degrees.
        assert!((outcome.max_mem_temp().value() - outcome.max_gpu_temp().value()).abs() < 6.0);
    }

    #[test]
    fn thermal_throttles_fire_above_limit() {
        let dc = datacenter();
        // Extreme outside temperature forces inlet (and thus GPU) temperatures over the limit.
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(45.0), 1.0));
        assert!(outcome.throttled_gpu_count() > 0);
        for directive in &outcome.thermal_throttles {
            assert!(directive.temperature.value() > 85.0);
            assert!(directive.frequency_scale >= 0.5 && directive.frequency_scale < 1.0);
        }
    }

    #[test]
    fn power_capping_triggers_when_row_budget_exceeded() {
        // Provision rows for only 60 % of TDP, then run at full load.
        let mut cfg = LayoutConfig::real_cluster_two_rows();
        cfg.row_power_provisioning = 0.6;
        let dc = Datacenter::new(cfg.build(), 1);
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 1.0));
        assert!(outcome.power.any_over_budget());
        assert!(!outcome.power.capping.is_empty());
    }

    #[test]
    fn cooling_failure_raises_inlet_temperatures() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(28.0), 0.9);
        let healthy = dc.evaluate(&input);
        let schedule = FailureSchedule::none().with_thermal_emergency(
            SimTime::ZERO,
            SimTime::from_hours(2),
        );
        input.failures = schedule.state_at(SimTime::from_minutes(30));
        let degraded = dc.evaluate(&input);
        // Less airflow available -> higher (or equal) utilization and potentially recirculation.
        let healthy_util = healthy.aisle_airflow[&AisleId::new(0)].utilization;
        let degraded_util = degraded.aisle_airflow[&AisleId::new(0)].utilization;
        assert!(degraded_util > healthy_util);
        assert!(degraded.max_gpu_temp().value() >= healthy.max_gpu_temp().value());
    }

    #[test]
    fn power_emergency_caps_aggressively() {
        let dc = datacenter();
        let mut input = StepInput::uniform_load(dc.layout(), Celsius::new(20.0), 0.7);
        let healthy = dc.evaluate(&input);
        assert!(!healthy.power.any_over_budget());
        let schedule = FailureSchedule::none()
            .with_power_emergency(SimTime::ZERO, SimTime::from_hours(1));
        input.failures = schedule.state_at(SimTime::from_minutes(10));
        let degraded = dc.evaluate(&input);
        assert!(degraded.power.any_over_budget());
        assert_eq!(degraded.power.capping.len(), dc.layout().server_count());
    }

    #[test]
    fn spatial_heterogeneity_shows_in_outcome() {
        let dc = datacenter();
        let outcome =
            dc.evaluate(&StepInput::uniform_load(dc.layout(), Celsius::new(25.0), 0.8));
        let inlets: Vec<f64> = outcome.inlet_temps.iter().map(|t| t.value()).collect();
        let spread = simkit::stats::max(&inlets).unwrap() - simkit::stats::min(&inlets).unwrap();
        assert!(spread > 1.0, "inlet spread should reflect spatial heterogeneity: {spread}");
        // GPUs within one server differ because of layout/process variation.
        let first_server = &outcome.gpu_temps[0];
        let temps: Vec<f64> = first_server.iter().map(|t| t.gpu.value()).collect();
        let gpu_spread = simkit::stats::max(&temps).unwrap() - simkit::stats::min(&temps).unwrap();
        assert!(gpu_spread > 1.0);
    }

    #[test]
    #[should_panic(expected = "activity must cover every server")]
    fn mismatched_activity_length_panics() {
        let dc = datacenter();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity.pop();
        let _ = dc.evaluate(&input);
    }

    #[test]
    #[should_panic(expected = "match the server spec")]
    fn mismatched_gpu_count_panics() {
        let dc = datacenter();
        let mut input = StepInput::idle(dc.layout(), Celsius::new(20.0));
        input.activity[0].gpu_utilization.pop();
        let _ = dc.evaluate(&input);
    }
}
