//! Server fan airflow and the aisle-level AHU provisioning constraint (Eq. 3).
//!
//! Server fans modulate with load; the paper measures a linear relationship between GPU load
//! and airflow that matches the manufacturer specs (840 CFM for a DGX A100 and 1105 CFM for a
//! DGX H100 at 80 % PWM). The AHUs of each cold aisle must supply at least as much airflow as
//! the servers in the aisle consume; otherwise hot exhaust air recirculates into the cold
//! aisle and every server's inlet temperature rises.

use crate::topology::{Aisle, ServerSpec};
use serde::{Deserialize, Serialize};
use simkit::units::CubicFeetPerMinute;

/// Linear server-airflow model plus the heat-recirculation penalty parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirflowModel {
    /// Inlet temperature penalty (°C) applied to the whole aisle per 10 % airflow deficit.
    pub recirculation_penalty_c_per_10pct: f64,
}

impl Default for AirflowModel {
    fn default() -> Self {
        Self { recirculation_penalty_c_per_10pct: 2.5 }
    }
}

/// Assessment of one aisle's airflow balance at one evaluation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AisleAirflowAssessment {
    /// Aggregate airflow demanded by the servers in the aisle.
    pub demand: CubicFeetPerMinute,
    /// Airflow the AHUs can currently provide (provisioned minus failures).
    pub available: CubicFeetPerMinute,
    /// `demand / available` (1.0 means exactly balanced).
    pub utilization: f64,
    /// Inlet-temperature penalty applied to every server in the aisle due to recirculation.
    pub recirculation_penalty_c: f64,
}

impl AisleAirflowAssessment {
    /// Returns `true` if the aisle demands more airflow than the AHUs provide.
    #[must_use]
    pub fn is_violated(&self) -> bool {
        self.utilization > 1.0
    }
}

impl AirflowModel {
    /// The `(idle, span)` terms of the linear server-airflow curve: one server draws
    /// `idle + span · clamp(load)`. Single source of the curve's constants for
    /// [`Self::server_airflow`] and the engine's once-per-row hoisting on homogeneous rows.
    #[inline]
    #[must_use]
    pub fn airflow_terms(&self, spec: &ServerSpec) -> (CubicFeetPerMinute, CubicFeetPerMinute) {
        (spec.idle_airflow, spec.max_airflow - spec.idle_airflow)
    }

    /// Airflow consumed by one server at the given normalized GPU load in `[0, 1]`.
    ///
    /// Linear interpolation between the idle and maximum airflow of the server spec, as
    /// measured in §2.1.
    #[inline]
    #[must_use]
    pub fn server_airflow(&self, spec: &ServerSpec, load: f64) -> CubicFeetPerMinute {
        let (idle, span) = self.airflow_terms(spec);
        idle + span * load.clamp(0.0, 1.0)
    }

    /// Assesses one aisle: aggregates the demand of its servers and computes the
    /// recirculation penalty if the demand exceeds the available airflow.
    ///
    /// `available_fraction` scales the provisioned airflow to model AHU or cooling-device
    /// failures (e.g. 0.75 when one of four AHUs has failed).
    #[must_use]
    pub fn assess_aisle(
        &self,
        aisle: &Aisle,
        per_server_airflow: impl Fn(crate::ids::ServerId) -> CubicFeetPerMinute,
        available_fraction: f64,
    ) -> AisleAirflowAssessment {
        let demand: CubicFeetPerMinute =
            aisle.servers.iter().map(|&s| per_server_airflow(s)).sum();
        self.assess_aisle_demand(aisle, demand, available_fraction)
    }

    /// [`Self::assess_aisle`] with the aggregate demand already reduced — the engine's
    /// hot path sums each aisle's contiguous window of the dense per-server airflow
    /// plane (same elements in the same order, so the sum is bit-identical to the
    /// id-keyed walk) and hands the total in.
    #[must_use]
    pub fn assess_aisle_demand(
        &self,
        aisle: &Aisle,
        demand: CubicFeetPerMinute,
        available_fraction: f64,
    ) -> AisleAirflowAssessment {
        let available = aisle.airflow_provisioned * available_fraction.clamp(0.0, 1.0);
        let utilization = if available.value() > 0.0 {
            demand / available
        } else {
            f64::INFINITY
        };
        let deficit_fraction = (utilization - 1.0).max(0.0);
        let recirculation_penalty_c =
            self.recirculation_penalty_c_per_10pct * deficit_fraction * 10.0;
        AisleAirflowAssessment { demand, available, utilization, recirculation_penalty_c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LayoutConfig, ServerSpec};
    use simkit::units::CubicFeetPerMinute;

    #[test]
    fn server_airflow_is_linear_between_idle_and_max() {
        let model = AirflowModel::default();
        let spec = ServerSpec::dgx_a100();
        assert_eq!(model.server_airflow(&spec, 0.0), spec.idle_airflow);
        assert_eq!(model.server_airflow(&spec, 1.0), spec.max_airflow);
        let half = model.server_airflow(&spec, 0.5);
        assert!((half.value() - (420.0 + 840.0) / 2.0).abs() < 1e-9);
        // Loads outside [0,1] clamp.
        assert_eq!(model.server_airflow(&spec, 2.0), spec.max_airflow);
        assert_eq!(model.server_airflow(&spec, -1.0), spec.idle_airflow);
    }

    #[test]
    fn h100_moves_more_air() {
        let model = AirflowModel::default();
        let a100 = model.server_airflow(&ServerSpec::dgx_a100(), 1.0);
        let h100 = model.server_airflow(&ServerSpec::dgx_h100(), 1.0);
        assert!(h100.value() > a100.value());
        assert_eq!(h100.value(), 1105.0);
    }

    #[test]
    fn balanced_aisle_has_no_penalty() {
        let layout = LayoutConfig::small_test_cluster().build();
        let aisle = &layout.aisles()[0];
        let model = AirflowModel::default();
        let assessment =
            model.assess_aisle(aisle, |_| CubicFeetPerMinute::new(500.0), 1.0);
        assert!(!assessment.is_violated());
        assert_eq!(assessment.recirculation_penalty_c, 0.0);
        assert!((assessment.demand.value() - 8.0 * 500.0).abs() < 1e-9);
        assert!(assessment.utilization < 1.0);
    }

    #[test]
    fn overloaded_aisle_gets_recirculation_penalty() {
        let layout = LayoutConfig::small_test_cluster().build();
        let aisle = &layout.aisles()[0];
        let model = AirflowModel::default();
        // Demand 10 % above provisioning -> penalty of one "per-10pct" unit.
        let per_server = aisle.airflow_provisioned * 1.1 / aisle.servers.len() as f64;
        let assessment = model.assess_aisle(aisle, |_| per_server, 1.0);
        assert!(assessment.is_violated());
        assert!((assessment.utilization - 1.1).abs() < 1e-9);
        assert!((assessment.recirculation_penalty_c - 2.5).abs() < 1e-6);
    }

    #[test]
    fn ahu_failure_shrinks_available_airflow() {
        let layout = LayoutConfig::small_test_cluster().build();
        let aisle = &layout.aisles()[0];
        let model = AirflowModel::default();
        let healthy = model.assess_aisle(aisle, |_| CubicFeetPerMinute::new(700.0), 1.0);
        let degraded = model.assess_aisle(aisle, |_| CubicFeetPerMinute::new(700.0), 0.75);
        assert!(degraded.available.value() < healthy.available.value());
        assert!(degraded.utilization > healthy.utilization);
        // Zero available airflow yields an infinite utilization, not a panic.
        let dead = model.assess_aisle(aisle, |_| CubicFeetPerMinute::new(700.0), 0.0);
        assert!(dead.utilization.is_infinite());
        assert!(dead.is_violated());
    }
}
