//! Air-cooling model.
//!
//! The cooling chain the paper describes (§2.1) is: outside air → datacenter cooling devices →
//! AHUs blow cold air into the contained cold aisle → server fans pull the air through the
//! chassis (over the GPUs) → hot air exhausts into the hot aisle → cooling devices recool it.
//!
//! Three sub-models cover the chain:
//!
//! * [`inlet`] — the server inlet temperature as a function of outside temperature, datacenter
//!   load and spatial position (Eq. 1, Fig. 3–5).
//! * [`gpu`] — the per-GPU (and GPU-memory) temperature as a function of inlet temperature and
//!   GPU power (Eq. 2, Fig. 7–9), including per-slot layout offsets and process variation.
//! * [`airflow`] — server fan airflow as a function of load and the aisle-level AHU
//!   provisioning constraint (Eq. 3), plus the heat-recirculation penalty when it is violated.

pub mod airflow;
pub mod gpu;
pub mod inlet;

pub use airflow::{AirflowModel, AisleAirflowAssessment};
pub use gpu::{GpuThermalModel, GpuTemperatures, ServerTemps, TempGrid};
pub use inlet::InletModel;
