//! Server inlet temperature model (Eq. 1 of the paper).
//!
//! The characterization in §2.1 finds that for every server `s`,
//! `T_inlet,s = f_inlet,s(T_outside, Load_DC)` with three regimes against the outside
//! temperature (Fig. 3):
//!
//! * below ≈15 °C outside, the cooling holds the inlet at a floor (≈18 °C) to avoid the
//!   humidity-related failures of over-cooling;
//! * between ≈15 °C and ≈25 °C the inlet rises roughly linearly with the outside temperature;
//! * above ≈25 °C the cooling works harder and the slope flattens.
//!
//! On top of that base curve, each server has a *spatial offset*: rows differ by up to ≈1 °C,
//! racks within a row by up to ≈2 °C (ends of rows are warmer), and height within a rack has a
//! minor effect (Fig. 4). Finally the aggregate datacenter load adds up to ≈2 °C between idle
//! and fully loaded (Fig. 5).

use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::units::Celsius;

/// Parameters of the piecewise inlet-temperature curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InletCurve {
    /// Inlet floor temperature maintained when it is cold outside.
    pub floor_c: f64,
    /// Outside temperature below which the floor applies.
    pub floor_until_outside_c: f64,
    /// Slope of inlet vs outside in the linear (mid) regime.
    pub mid_slope: f64,
    /// Outside temperature above which the cooling compresses the slope.
    pub hot_from_outside_c: f64,
    /// Slope of inlet vs outside in the hot regime.
    pub hot_slope: f64,
    /// Additional inlet temperature at 100 % datacenter load relative to idle.
    pub load_sensitivity_c: f64,
}

impl Default for InletCurve {
    fn default() -> Self {
        Self {
            floor_c: 18.0,
            floor_until_outside_c: 15.0,
            mid_slope: 0.8,
            hot_from_outside_c: 25.0,
            hot_slope: 0.3,
            load_sensitivity_c: 2.0,
        }
    }
}

impl InletCurve {
    /// Base inlet temperature (before spatial offsets and load) for an outside temperature.
    #[inline]
    #[must_use]
    pub fn base(&self, outside: Celsius) -> f64 {
        let t = outside.value();
        if t <= self.floor_until_outside_c {
            self.floor_c
        } else if t <= self.hot_from_outside_c {
            self.floor_c + self.mid_slope * (t - self.floor_until_outside_c)
        } else {
            let at_knee = self.floor_c
                + self.mid_slope * (self.hot_from_outside_c - self.floor_until_outside_c);
            at_knee + self.hot_slope * (t - self.hot_from_outside_c)
        }
    }

    /// The load-dependent inlet term: `load_sensitivity_c · clamp(dc_load)`.
    ///
    /// Together with [`Self::base`] this is the step-invariant part of Eq. 1 — the engine
    /// hoists both once per step so the per-server kernel only adds the spatial offset and
    /// the recirculation penalty (in the same floating-point order as
    /// [`InletModel::inlet_temp`], which routes through the same helpers).
    #[inline]
    #[must_use]
    pub fn load_term(&self, dc_load: f64) -> f64 {
        self.load_sensitivity_c * dc_load.clamp(0.0, 1.0)
    }
}

/// Per-server inlet-temperature model with spatial offsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InletModel {
    curve: InletCurve,
    /// One spatial offset per server (indexed by `ServerId::index`).
    spatial_offsets: Vec<f64>,
}

impl InletModel {
    /// Builds the model for a layout.
    ///
    /// Spatial offsets are deterministic given the seed: each row gets an offset in
    /// `[0, 1] °C`, racks get warmer toward the end of the row (up to 2 °C), height adds up to
    /// 0.3 °C and a small per-server jitter models construction differences.
    #[must_use]
    pub fn for_layout(layout: &Layout, curve: InletCurve, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).derive("inlet-spatial");
        let row_count = layout.rows().len();
        let row_offsets: Vec<f64> = (0..row_count).map(|_| rng.uniform(0.0, 1.0)).collect();
        let racks_per_row = layout
            .rows()
            .first()
            .map(|r| r.racks.len().max(1))
            .unwrap_or(1);
        let spatial_offsets = layout
            .servers()
            .iter()
            .map(|server| {
                let row_offset = row_offsets[server.row.index()];
                // Racks near the far end of the row (away from the AHU) run warmer.
                let rack_frac = if racks_per_row > 1 {
                    server.rack_position_in_row as f64 / (racks_per_row - 1) as f64
                } else {
                    0.0
                };
                let rack_offset = 2.0 * rack_frac;
                let height_offset = 0.3 * server.height_in_rack as f64
                    / server_height_denominator(layout, server.rack);
                let jitter = rng.normal(0.0, 0.15);
                row_offset + rack_offset + height_offset + jitter
            })
            .collect();
        Self { curve, spatial_offsets }
    }

    /// The base curve parameters.
    #[must_use]
    pub fn curve(&self) -> &InletCurve {
        &self.curve
    }

    /// The spatial offset of a server (°C added to the base curve).
    #[must_use]
    pub fn spatial_offset(&self, server: crate::ids::ServerId) -> f64 {
        self.spatial_offsets[server.index()]
    }

    /// All spatial offsets as one flat plane indexed by [`crate::ids::ServerId::index`].
    /// The engine's row kernels slice this per contiguous row range.
    #[must_use]
    pub fn spatial_offsets(&self) -> &[f64] {
        &self.spatial_offsets
    }

    /// Inlet temperature of a server given the outside temperature, the normalized datacenter
    /// load in `[0, 1]`, and an extra penalty (°C) from heat recirculation or cooling failures.
    ///
    /// This is the scalar form of Eq. 1; the engine's row kernels evaluate the identical
    /// sum `base + spatial + load_term + max(penalty, 0)` with `base` and `load_term`
    /// hoisted once per step (same values, same addition order, so results are bit-equal).
    #[must_use]
    pub fn inlet_temp(
        &self,
        server: crate::ids::ServerId,
        outside: Celsius,
        dc_load: f64,
        extra_penalty_c: f64,
    ) -> Celsius {
        let base = self.curve.base(outside);
        Celsius::new(
            base + self.spatial_offsets[server.index()]
                + self.curve.load_term(dc_load)
                + extra_penalty_c.max(0.0),
        )
    }

    /// Number of servers the model covers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.spatial_offsets.len()
    }
}

/// The number of height levels in a rack minus one (at least one, to avoid division by zero).
fn server_height_denominator(layout: &Layout, rack: crate::ids::RackId) -> f64 {
    (layout.racks()[rack.index()].servers.len().saturating_sub(1)).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;
    use crate::topology::LayoutConfig;
    use simkit::stats;

    fn model() -> (crate::topology::Layout, InletModel) {
        let layout = LayoutConfig::real_cluster_two_rows().build();
        let model = InletModel::for_layout(&layout, InletCurve::default(), 42);
        (layout, model)
    }

    #[test]
    fn base_curve_has_three_regimes() {
        let curve = InletCurve::default();
        // Floor regime.
        assert_eq!(curve.base(Celsius::new(-5.0)), 18.0);
        assert_eq!(curve.base(Celsius::new(15.0)), 18.0);
        // Linear regime.
        assert!((curve.base(Celsius::new(20.0)) - 22.0).abs() < 1e-12);
        // Hot regime has a flatter slope.
        let at_25 = curve.base(Celsius::new(25.0));
        let at_35 = curve.base(Celsius::new(35.0));
        assert!((at_25 - 26.0).abs() < 1e-12);
        assert!((at_35 - at_25 - 3.0).abs() < 1e-12);
        // Continuity at the knees.
        assert!((curve.base(Celsius::new(15.0001)) - 18.0).abs() < 1e-3);
        assert!((curve.base(Celsius::new(25.0001)) - at_25).abs() < 1e-3);
    }

    #[test]
    fn inlet_is_monotone_in_outside_temperature() {
        let (_, model) = model();
        let server = ServerId::new(0);
        let mut last = f64::MIN;
        for t in (-10..45).map(f64::from) {
            let inlet = model.inlet_temp(server, Celsius::new(t), 0.5, 0.0).value();
            assert!(inlet >= last - 1e-9, "inlet must be non-decreasing in outside temp");
            last = inlet;
        }
    }

    #[test]
    fn load_adds_up_to_sensitivity() {
        let (_, model) = model();
        let server = ServerId::new(3);
        let idle = model.inlet_temp(server, Celsius::new(20.0), 0.0, 0.0);
        let busy = model.inlet_temp(server, Celsius::new(20.0), 1.0, 0.0);
        assert!((busy.value() - idle.value() - 2.0).abs() < 1e-9);
        // Load outside [0,1] is clamped.
        let over = model.inlet_temp(server, Celsius::new(20.0), 3.0, 0.0);
        assert_eq!(over, busy);
    }

    #[test]
    fn recirculation_penalty_adds_directly() {
        let (_, model) = model();
        let server = ServerId::new(3);
        let normal = model.inlet_temp(server, Celsius::new(20.0), 0.5, 0.0);
        let penalized = model.inlet_temp(server, Celsius::new(20.0), 0.5, 4.0);
        assert!((penalized.value() - normal.value() - 4.0).abs() < 1e-9);
        // Negative penalties are ignored rather than cooling the aisle.
        let negative = model.inlet_temp(server, Celsius::new(20.0), 0.5, -3.0);
        assert_eq!(negative, normal);
    }

    #[test]
    fn spatial_offsets_match_paper_magnitudes() {
        let (layout, model) = model();
        let offsets: Vec<f64> = layout
            .servers()
            .iter()
            .map(|s| model.spatial_offset(s.id))
            .collect();
        let spread = stats::max(&offsets).unwrap() - stats::min(&offsets).unwrap();
        // Row (≤1 °C) + rack (≤2 °C) + height (≤0.3 °C) + jitter: spread of roughly 2–4 °C.
        assert!(spread > 1.5 && spread < 5.0, "spatial spread {spread}");
        // Far end of a row should on average be warmer than the AHU end.
        let near: Vec<f64> = layout
            .servers()
            .iter()
            .filter(|s| s.rack_position_in_row == 0)
            .map(|s| model.spatial_offset(s.id))
            .collect();
        let far: Vec<f64> = layout
            .servers()
            .iter()
            .filter(|s| s.rack_position_in_row == 9)
            .map(|s| model.spatial_offset(s.id))
            .collect();
        assert!(stats::mean(&far).unwrap() > stats::mean(&near).unwrap() + 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let layout = LayoutConfig::small_test_cluster().build();
        let a = InletModel::for_layout(&layout, InletCurve::default(), 7);
        let b = InletModel::for_layout(&layout, InletCurve::default(), 7);
        let c = InletModel::for_layout(&layout, InletCurve::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.server_count(), 8);
    }
}
