//! Per-GPU temperature model (Eq. 2 of the paper).
//!
//! The characterization finds that a linear regression of GPU temperature on the server inlet
//! temperature and the GPU power draw reaches a mean absolute error below 1 °C (Fig. 7):
//! `T_gpu = a · T_inlet + b · P_gpu + c + offset_gpu`.
//!
//! Within one server, GPUs with identical utilization differ by up to ≈10 °C because of the
//! chassis layout (GPUs closer to the inlet — the even-numbered slots — run cooler) and
//! process variation (Fig. 8–9). GPU memory tracks the GPU temperature, running slightly
//! hotter under memory-intensive (decode-dominated) load and slightly cooler otherwise.

use crate::ids::{GpuId, ServerId};
use crate::index::TopologyIndex;
use crate::topology::Layout;
use serde::{Deserialize, Error, Serialize, Value};
use simkit::rng::SimRng;
use simkit::units::{Celsius, Watts};

/// Coefficients of the linear GPU temperature model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuThermalCoefficients {
    /// Sensitivity to the server inlet temperature (°C per °C).
    pub inlet_coeff: f64,
    /// Sensitivity to the GPU power draw (°C per W).
    pub power_coeff: f64,
    /// Intercept (°C).
    pub intercept: f64,
    /// Extra temperature of the hotter (odd, obstructed) GPU slots relative to the cooler
    /// (even, inlet-adjacent) slots.
    pub layout_penalty_c: f64,
    /// Standard deviation of the per-GPU process-variation offset.
    pub process_variation_std_c: f64,
    /// Memory temperature offset relative to the GPU under memory-bound load.
    pub mem_offset_membound_c: f64,
    /// Memory temperature offset relative to the GPU under compute-bound load.
    pub mem_offset_computebound_c: f64,
}

impl GpuThermalCoefficients {
    /// The inlet-dependent part of the GPU temperature: `a · T_inlet + c`. Single source of
    /// the linear model shared by [`GpuThermalModel::temperatures`] and the engine's fused
    /// per-row pass (which adds `b · P_gpu + offset` per slot).
    #[inline]
    #[must_use]
    pub fn base_terms(&self, inlet: Celsius) -> f64 {
        self.inlet_coeff * inlet.value() + self.intercept
    }

    /// Memory temperature offset relative to the GPU for a given memory-boundedness.
    #[inline]
    #[must_use]
    pub fn memory_offset(&self, memory_boundedness: f64) -> f64 {
        let mem_frac = memory_boundedness.clamp(0.0, 1.0);
        self.mem_offset_computebound_c
            + (self.mem_offset_membound_c - self.mem_offset_computebound_c) * mem_frac
    }
}

impl Default for GpuThermalCoefficients {
    fn default() -> Self {
        Self {
            inlet_coeff: 0.9,
            power_coeff: 0.10,
            intercept: 5.0,
            layout_penalty_c: 4.0,
            process_variation_std_c: 1.8,
            mem_offset_membound_c: 3.0,
            mem_offset_computebound_c: -2.0,
        }
    }
}

/// Temperatures of one GPU at one evaluation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuTemperatures {
    /// GPU junction temperature.
    pub gpu: Celsius,
    /// GPU memory (HBM) temperature.
    pub memory: Celsius,
}

/// One step's GPU temperatures for a whole datacenter: a contiguous server-major
/// structure-of-arrays junction plane plus a derived memory plane.
///
/// Replaces the array-of-structs `Vec<GpuTemperatures>` storage with one flat `f64`
/// junction plane (`gpu_c`), stride-indexed through the server-major GPU offsets of a
/// [`TopologyIndex`]. The physics kernels write the plane with branch-free lane loops,
/// and datacenter-wide scans (hottest GPU, fleet aggregation) walk one dense `f64`
/// slice. Memory (HBM) temperatures track their GPU by a *per-server* offset
/// (Eq. 2's memory-boundedness term), so the grid stores that offset per server instead
/// of a second per-GPU plane — at 10k-server scale a full memory plane write is ~20 % of
/// the step's memory traffic — and materializes `mem = gpu + offset` on access, which is
/// bit-identical to what the old stored plane held (same addition, same operands).
/// Deserialized grids keep their explicit per-GPU memory values instead.
///
/// Id-keyed accessors ([`Self::get`], [`Self::server`]) are preserved, and the serde
/// encoding is bit-identical to the original array-of-structs shape, so digests and
/// golden artifacts are unchanged across the storage change.
#[derive(Debug, Clone)]
pub struct TempGrid {
    /// Flat per-GPU junction temperatures (°C), server-major.
    gpu_c: Vec<f64>,
    /// Memory-temperature storage (see the type docs).
    mem: MemPlane,
    /// Server-major GPU prefix sums (length `servers + 1`), copied from the topology index
    /// that shaped the grid.
    offsets: Vec<u32>,
}

/// Memory-temperature storage of a [`TempGrid`].
#[derive(Debug, Clone)]
enum MemPlane {
    /// One offset per server: `mem[g] = gpu_c[g] + offsets_c[server(g)]`. The kernels'
    /// output representation.
    Derived(Vec<f64>),
    /// One explicit value per GPU (server-major). The deserialized representation, kept
    /// verbatim so serde round trips are byte-stable.
    Materialized(Vec<f64>),
}

impl Default for TempGrid {
    fn default() -> Self {
        Self { gpu_c: Vec::new(), mem: MemPlane::Derived(Vec::new()), offsets: vec![0] }
    }
}

// Equality is semantic: two grids are equal when they cover the same shape and every
// GPU's junction and (materialized-on-demand) memory temperature is bit-equal, whichever
// representation the memory plane uses.
impl PartialEq for TempGrid {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.gpu_c == other.gpu_c
            && self
                .iter()
                .map(|t| t.memory)
                .eq(other.iter().map(|t| t.memory))
    }
}

/// The temperatures of one server's GPUs: a contiguous junction-plane window plus the
/// server's memory lane (derived offset or materialized values).
#[derive(Debug, Clone, Copy)]
pub struct ServerTemps<'a> {
    gpu_c: &'a [f64],
    mem: MemLane<'a>,
}

/// One server's memory-temperature lane.
#[derive(Debug, Clone, Copy)]
enum MemLane<'a> {
    Offset(f64),
    Slice(&'a [f64]),
}

impl<'a> ServerTemps<'a> {
    /// Number of GPUs in the server.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gpu_c.len()
    }

    /// Returns `true` if the server has no GPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpu_c.is_empty()
    }

    /// The memory temperature of one slot (°C).
    fn mem_at(&self, slot: usize) -> f64 {
        match self.mem {
            MemLane::Offset(offset) => self.gpu_c[slot] + offset,
            MemLane::Slice(values) => values[slot],
        }
    }

    /// The temperatures of one GPU slot.
    ///
    /// # Panics
    /// Panics if the slot is out of range.
    #[must_use]
    pub fn get(&self, slot: usize) -> GpuTemperatures {
        GpuTemperatures {
            gpu: Celsius::new(self.gpu_c[slot]),
            memory: Celsius::new(self.mem_at(slot)),
        }
    }

    /// The server's junction-temperature plane window (°C).
    #[must_use]
    pub fn gpu_c(&self) -> &'a [f64] {
        self.gpu_c
    }

    /// Iterates the server's GPU temperatures in slot order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = GpuTemperatures> + '_ {
        (0..self.gpu_c.len()).map(|slot| self.get(slot))
    }
}

impl TempGrid {
    /// A zeroed grid shaped for one datacenter's topology.
    #[must_use]
    pub fn for_topology(topology: &TopologyIndex) -> Self {
        Self {
            gpu_c: vec![0.0; topology.gpu_count()],
            mem: MemPlane::Derived(vec![0.0; topology.server_count()]),
            offsets: topology.gpu_offsets().to_vec(),
        }
    }

    /// Number of servers covered.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of GPUs covered.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.gpu_c.len()
    }

    /// Returns `true` if the grid covers no GPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpu_c.is_empty()
    }

    /// The memory lane of one server ordinal.
    fn mem_lane(&self, ordinal: usize, start: usize, end: usize) -> MemLane<'_> {
        match &self.mem {
            MemPlane::Derived(offsets) => MemLane::Offset(offsets[ordinal]),
            MemPlane::Materialized(values) => MemLane::Slice(&values[start..end]),
        }
    }

    /// The temperatures of every GPU in one server.
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    #[must_use]
    pub fn server(&self, server: ServerId) -> ServerTemps<'_> {
        let start = self.offsets[server.index()] as usize;
        let end = self.offsets[server.index() + 1] as usize;
        ServerTemps {
            gpu_c: &self.gpu_c[start..end],
            mem: self.mem_lane(server.index(), start, end),
        }
    }

    /// The temperatures of one GPU.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn get(&self, gpu: GpuId) -> GpuTemperatures {
        self.server(gpu.server).get(gpu.slot)
    }

    /// Iterates every GPU's temperatures in server-major order.
    pub fn iter(&self) -> impl Iterator<Item = GpuTemperatures> + '_ {
        self.iter_servers()
            .flat_map(|(_, server)| (0..server.len()).map(move |slot| server.get(slot)))
    }

    /// Iterates `(server, per-GPU view)` pairs in server order.
    pub fn iter_servers(&self) -> impl Iterator<Item = (ServerId, ServerTemps<'_>)> + '_ {
        self.offsets.windows(2).enumerate().map(|(i, w)| {
            let (start, end) = (w[0] as usize, w[1] as usize);
            (
                ServerId::new(i),
                ServerTemps {
                    gpu_c: &self.gpu_c[start..end],
                    mem: self.mem_lane(i, start, end),
                },
            )
        })
    }

    /// The flat server-major junction-temperature plane (°C).
    #[must_use]
    pub fn gpu_plane(&self) -> &[f64] {
        &self.gpu_c
    }

    /// Mutable kernel access: the flat junction plane plus the per-server memory-offset
    /// plane (converting a deserialized grid back to the derived representation).
    ///
    /// The junction plane doubles as the kernels' per-GPU power staging area: the power
    /// pass writes per-GPU watts into it and the thermal pass transforms them to
    /// temperatures in place, which avoids streaming a separate power plane through the
    /// cache on every step.
    #[must_use]
    pub fn kernel_planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        let server_count = self.offsets.len() - 1;
        if !matches!(self.mem, MemPlane::Derived(_)) {
            self.mem = MemPlane::Derived(vec![0.0; server_count]);
        }
        let MemPlane::Derived(offsets_c) = &mut self.mem else {
            unreachable!("just converted to the derived representation")
        };
        offsets_c.resize(server_count, 0.0);
        (&mut self.gpu_c, offsets_c)
    }

    /// The hottest GPU junction temperature in the grid.
    #[must_use]
    pub fn max_gpu(&self) -> Celsius {
        Celsius::new(self.gpu_c.iter().copied().fold(f64::MIN, f64::max))
    }

    /// The hottest GPU-memory temperature in the grid.
    #[must_use]
    pub fn max_mem(&self) -> Celsius {
        self.iter()
            .map(|t| t.memory)
            .fold(Celsius::new(f64::MIN), Celsius::max)
    }
}

// Serde compatibility: the grid serializes exactly as the pre-SoA array-of-structs shape
// (`temps`: a sequence of `{gpu, memory}` maps, `offsets`: the prefix sums), with memory
// values materialized on the fly, so the determinism digests over serialized
// `StepOutcome`s and the golden artifacts are byte-identical across the storage change.
impl Serialize for TempGrid {
    fn to_value(&self) -> Value {
        let mut temps = Vec::with_capacity(self.gpu_c.len());
        for t in self.iter() {
            temps.push(Value::Map(vec![
                (String::from("gpu"), Value::F64(t.gpu.value())),
                (String::from("memory"), Value::F64(t.memory.value())),
            ]));
        }
        Value::Map(vec![
            (String::from("temps"), Value::Seq(temps)),
            (String::from("offsets"), self.offsets.to_value()),
        ])
    }
}

impl Deserialize for TempGrid {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let temps = Vec::<GpuTemperatures>::from_value(value.get("temps")?)?;
        let offsets = Vec::<u32>::from_value(value.get("offsets")?)?;
        let (gpu_c, mem_c): (Vec<f64>, Vec<f64>) = temps
            .iter()
            .map(|t| (t.gpu.value(), t.memory.value()))
            .unzip();
        Ok(Self { gpu_c, mem: MemPlane::Materialized(mem_c), offsets })
    }
}

/// Per-GPU thermal model with layout and process-variation offsets.
///
/// Offsets are stored flat (server-major) so per-row physics can walk contiguous slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuThermalModel {
    coeffs: GpuThermalCoefficients,
    /// Per-GPU offsets, server-major.
    offsets: Vec<f64>,
    /// Start of each server's offset run in `offsets` (length `servers + 1`).
    starts: Vec<u32>,
}

impl GpuThermalModel {
    /// Builds the model for a layout with deterministic per-GPU offsets.
    #[must_use]
    pub fn for_layout(layout: &Layout, coeffs: GpuThermalCoefficients, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).derive("gpu-thermal");
        let mut offsets = Vec::with_capacity(layout.gpu_count());
        let mut starts = Vec::with_capacity(layout.server_count() + 1);
        starts.push(0);
        for server in layout.servers() {
            for slot in 0..server.spec.gpus_per_server {
                let layout_offset = if slot % 2 == 0 {
                    0.0
                } else {
                    coeffs.layout_penalty_c
                };
                offsets.push(layout_offset + rng.normal(0.0, coeffs.process_variation_std_c));
            }
            starts.push(offsets.len() as u32);
        }
        Self { coeffs, offsets, starts }
    }

    /// The model coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &GpuThermalCoefficients {
        &self.coeffs
    }

    /// The static offset of a GPU (layout + process variation).
    ///
    /// # Panics
    /// Panics if the GPU id is out of range.
    #[must_use]
    pub fn offset(&self, gpu: GpuId) -> f64 {
        self.server_offsets(gpu.server)[gpu.slot]
    }

    /// The static offsets of every GPU in a server, as a contiguous slice.
    ///
    /// # Panics
    /// Panics if the server id is out of range.
    #[must_use]
    pub fn server_offsets(&self, server: crate::ids::ServerId) -> &[f64] {
        let start = self.starts[server.index()] as usize;
        let end = self.starts[server.index() + 1] as usize;
        &self.offsets[start..end]
    }

    /// All per-GPU offsets as one flat server-major plane, indexed by the same prefix sums
    /// as [`crate::index::TopologyIndex::gpu_offsets`] (both are built from the layout's
    /// server-order GPU counts). The engine's row kernels slice this plane per row.
    #[must_use]
    pub fn offsets_flat(&self) -> &[f64] {
        &self.offsets
    }

    /// GPU and memory temperatures given the server inlet temperature, this GPU's power draw
    /// and the memory-boundedness of its current work (0 = fully compute-bound prefill,
    /// 1 = fully memory-bound decode).
    #[must_use]
    pub fn temperatures(
        &self,
        gpu: GpuId,
        inlet: Celsius,
        gpu_power: Watts,
        memory_boundedness: f64,
    ) -> GpuTemperatures {
        let c = &self.coeffs;
        let base = c.base_terms(inlet) + c.power_coeff * gpu_power.value() + self.offset(gpu);
        let mem_offset = c.memory_offset(memory_boundedness);
        GpuTemperatures {
            gpu: Celsius::new(base),
            memory: Celsius::new(base + mem_offset),
        }
    }

    /// Inverse model: the maximum GPU power that keeps the *hottest* GPU of a server at or
    /// below `limit`, for a given inlet temperature.
    ///
    /// TAPAS's instance configurator uses this to turn a temperature headroom into a power
    /// budget when selecting configurations.
    #[must_use]
    pub fn power_for_temp_limit(
        &self,
        server: crate::ids::ServerId,
        inlet: Celsius,
        limit: Celsius,
    ) -> Watts {
        let c = &self.coeffs;
        let worst_offset = self
            .server_offsets(server)
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        let available =
            limit.value() - c.inlet_coeff * inlet.value() - c.intercept - worst_offset;
        Watts::new((available / c.power_coeff).max(0.0))
    }

    /// Number of servers covered.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.starts.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;
    use crate::topology::LayoutConfig;
    use simkit::stats;

    fn model() -> GpuThermalModel {
        let layout = LayoutConfig::real_cluster_two_rows().build();
        GpuThermalModel::for_layout(&layout, GpuThermalCoefficients::default(), 42)
    }

    #[test]
    fn temperature_is_linear_in_inlet_and_power() {
        let m = model();
        let gpu = GpuId::new(ServerId::new(0), 0);
        let base = m.temperatures(gpu, Celsius::new(20.0), Watts::new(300.0), 0.5);
        let hotter_inlet = m.temperatures(gpu, Celsius::new(25.0), Watts::new(300.0), 0.5);
        let more_power = m.temperatures(gpu, Celsius::new(20.0), Watts::new(400.0), 0.5);
        assert!((hotter_inlet.gpu.value() - base.gpu.value() - 0.9 * 5.0).abs() < 1e-9);
        assert!((more_power.gpu.value() - base.gpu.value() - 0.10 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn realistic_operating_point_matches_paper_range() {
        // At ~22 °C inlet and 400 W per GPU the paper's Fig. 6/7 shows roughly 55–70 °C.
        let m = model();
        let temps: Vec<f64> = (0..8)
            .map(|slot| {
                m.temperatures(
                    GpuId::new(ServerId::new(0), slot),
                    Celsius::new(22.0),
                    Watts::new(400.0),
                    0.5,
                )
                .gpu
                .value()
            })
            .collect();
        for t in &temps {
            assert!((45.0..80.0).contains(t), "unexpected GPU temperature {t}");
        }
    }

    #[test]
    fn even_slots_are_cooler_on_average() {
        let layout = LayoutConfig::production_datacenter().build();
        let m = GpuThermalModel::for_layout(&layout, GpuThermalCoefficients::default(), 1);
        let mut even = Vec::new();
        let mut odd = Vec::new();
        for server in layout.servers() {
            for slot in 0..8 {
                let off = m.offset(GpuId::new(server.id, slot));
                if slot % 2 == 0 {
                    even.push(off);
                } else {
                    odd.push(off);
                }
            }
        }
        let diff = stats::mean(&odd).unwrap() - stats::mean(&even).unwrap();
        assert!((diff - 4.0).abs() < 0.5, "layout penalty should be ≈4 °C, got {diff}");
    }

    #[test]
    fn within_server_spread_is_up_to_ten_degrees() {
        let layout = LayoutConfig::production_datacenter().build();
        let m = GpuThermalModel::for_layout(&layout, GpuThermalCoefficients::default(), 3);
        let mut spreads = Vec::new();
        for server in layout.servers() {
            let temps: Vec<f64> = (0..8)
                .map(|slot| {
                    m.temperatures(
                        GpuId::new(server.id, slot),
                        Celsius::new(22.0),
                        Watts::new(400.0),
                        0.5,
                    )
                    .gpu
                    .value()
                })
                .collect();
            spreads.push(stats::max(&temps).unwrap() - stats::min(&temps).unwrap());
        }
        let typical = stats::mean(&spreads).unwrap();
        let worst = stats::max(&spreads).unwrap();
        assert!(typical > 3.0, "typical within-server spread too small: {typical}");
        assert!(worst < 20.0, "worst within-server spread implausibly large: {worst}");
        assert!(worst > 7.0, "worst within-server spread should approach 10 °C: {worst}");
    }

    #[test]
    fn memory_temperature_tracks_boundedness() {
        let m = model();
        let gpu = GpuId::new(ServerId::new(5), 2);
        let decode = m.temperatures(gpu, Celsius::new(22.0), Watts::new(300.0), 1.0);
        let prefill = m.temperatures(gpu, Celsius::new(22.0), Watts::new(300.0), 0.0);
        assert!(decode.memory.value() > decode.gpu.value());
        assert!(prefill.memory.value() < prefill.gpu.value());
        // Same GPU power => same GPU temperature regardless of boundedness.
        assert_eq!(decode.gpu, prefill.gpu);
    }

    #[test]
    fn power_for_temp_limit_inverts_the_model() {
        let m = model();
        let server = ServerId::new(7);
        let inlet = Celsius::new(24.0);
        let limit = Celsius::new(85.0);
        let power = m.power_for_temp_limit(server, inlet, limit);
        assert!(power.value() > 0.0);
        // Running every GPU at that power must keep all of them at or below the limit.
        for slot in 0..8 {
            let t = m.temperatures(GpuId::new(server, slot), inlet, power, 0.5);
            assert!(t.gpu.value() <= limit.value() + 1e-6);
        }
        // An unreachable limit yields zero power rather than a negative one.
        let impossible = m.power_for_temp_limit(server, Celsius::new(90.0), Celsius::new(20.0));
        assert_eq!(impossible.value(), 0.0);
    }

    #[test]
    fn temp_grid_views_agree_with_flat_storage() {
        let layout = LayoutConfig::small_test_cluster().build();
        let topology = TopologyIndex::from_layout(&layout);
        let mut grid = TempGrid::for_topology(&topology);
        assert_eq!(grid.server_count(), 8);
        assert_eq!(grid.gpu_count(), 64);
        assert!(!grid.is_empty());
        {
            let (gpu_c, mem_offsets) = grid.kernel_planes_mut();
            for (i, g) in gpu_c.iter_mut().enumerate() {
                *g = i as f64;
            }
            mem_offsets.fill(0.5);
        }
        // Per-server views are the right windows of the flat planes, with memory derived
        // as `gpu + offset`.
        let second = grid.server(ServerId::new(1));
        assert_eq!(second.len(), 8);
        assert!(!second.is_empty());
        assert_eq!(second.get(3).gpu.value(), 11.0);
        assert_eq!(second.gpu_c()[3], 11.0);
        assert_eq!(second.get(3).memory.value(), 11.5);
        assert_eq!(second.iter().count(), 8);
        assert_eq!(grid.get(GpuId::new(ServerId::new(1), 3)).memory.value(), 11.5);
        assert_eq!(grid.iter().count(), 64);
        assert_eq!(grid.gpu_plane().len(), 64);
        let servers: Vec<ServerId> = grid.iter_servers().map(|(s, _)| s).collect();
        assert_eq!(servers.len(), 8);
        assert_eq!(servers[7], ServerId::new(7));
        assert_eq!(grid.max_gpu().value(), 63.0);
        assert_eq!(grid.max_mem().value(), 63.5);
        // Serde round trip preserves shape and values across representations: the
        // deserialized grid materializes per-GPU memory values yet compares (and
        // re-serializes) identically to the derived-offset original.
        use serde::{Deserialize as _, Serialize as _};
        let back = TempGrid::from_value(&grid.to_value()).unwrap();
        assert_eq!(back, grid);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&grid).unwrap()
        );
        // A deserialized grid handed back to the kernels reverts to derived offsets.
        let mut reused = back.clone();
        let (gpu_c, mem_offsets) = reused.kernel_planes_mut();
        assert_eq!(gpu_c.len(), 64);
        mem_offsets.fill(0.5);
        gpu_c.copy_from_slice(grid.gpu_plane());
        assert_eq!(reused, grid);
        assert!(TempGrid::default().is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let layout = LayoutConfig::small_test_cluster().build();
        let a = GpuThermalModel::for_layout(&layout, GpuThermalCoefficients::default(), 9);
        let b = GpuThermalModel::for_layout(&layout, GpuThermalCoefficients::default(), 9);
        assert_eq!(a, b);
        assert_eq!(a.server_count(), 8);
    }
}
