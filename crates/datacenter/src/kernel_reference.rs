//! Retained scalar reference implementation of the physics step.
//!
//! [`evaluate_scalar`] recomputes a full [`StepOutcome`] one server and one GPU at a time
//! through the public model entry points ([`InletModel::inlet_temp`],
//! [`GpuThermalModel::temperatures`], [`ServerPowerModel::gpu_power`], …), with none of
//! the engine's row batching, plan hoisting or branch-free scratch lanes. It is the
//! executable form of the engine's **FP-order contract**: the structure-of-arrays,
//! row-batched kernels in [`crate::engine`] must produce bit-identical results to this
//! scalar walk for *any* layout — homogeneous rows (the fast path), mixed-spec and ragged
//! rows (the general path), any climate, any load, with and without threads.
//!
//! The contract pins three accumulation orders that are easy to break silently:
//!
//! 1. per-server GPU sums (utilization, power) use **two alternating accumulator lanes**
//!    (`acc[slot & 1]`), combined as `acc[0] + acc[1]`;
//! 2. the datacenter load reduces **per row first** (server order within the row), then
//!    across rows in row order;
//! 3. the inlet sum is evaluated as `((base + spatial) + load_term) + max(penalty, 0)`.
//!
//! `tests/soa_physics.rs` pins the batched engine to this reference across randomized
//! layouts; it is deliberately simple and allocation-heavy — never call it on a hot path.

use crate::cooling::gpu::TempGrid;
use crate::engine::{Datacenter, StepInput, StepOutcome, ThermalThrottleDirective};
use crate::ids::GpuId;
use crate::index::OrdinalMap;
use simkit::units::Watts;

#[allow(unused_imports)] // doc links
use crate::cooling::{gpu::GpuThermalModel, inlet::InletModel};
#[allow(unused_imports)] // doc links
use crate::power::server::ServerPowerModel;

/// Evaluates one step with the scalar reference kernels (see the module docs).
///
/// # Panics
/// Panics under the same conditions as [`Datacenter::evaluate`]: the activity must cover
/// every server with per-GPU vectors matching each server's spec.
#[must_use]
pub fn evaluate_scalar(dc: &Datacenter, input: &StepInput) -> StepOutcome {
    let layout = dc.layout();
    let topology = dc.topology();
    let server_count = layout.server_count();
    assert_eq!(
        input.activity.server_count(),
        server_count,
        "activity must cover every server"
    );

    // 1. Per-server loads, airflow demand and power — one server at a time.
    let mut server_airflow = Vec::with_capacity(server_count);
    let mut server_power = Vec::with_capacity(server_count);
    let mut gpu_power_flat: Vec<Watts> = Vec::with_capacity(topology.gpu_count());
    let mut mean_loads = Vec::with_capacity(server_count);
    for (i, server) in layout.servers().iter().enumerate() {
        let spec = &server.spec;
        let activity = input.activity.server(i);
        assert_eq!(
            activity.gpu_utilization.len(),
            spec.gpus_per_server,
            "activity GPU count must match the server spec"
        );
        // Contract order #1: two alternating accumulator lanes, combined low + high.
        let mut util_acc = [0.0f64; 2];
        let mut power_acc = [0.0f64; 2];
        for (slot, (&u, &f)) in activity
            .gpu_utilization
            .iter()
            .zip(activity.frequency_scale)
            .enumerate()
        {
            let power = dc.power_model().gpu_power(spec, u, f);
            util_acc[slot & 1] += u;
            power_acc[slot & 1] += power.value();
            gpu_power_flat.push(power);
        }
        let gpu_sum = power_acc[0] + power_acc[1];
        let mean_load = if spec.gpus_per_server == 0 {
            0.0
        } else {
            (util_acc[0] + util_acc[1]) / spec.gpus_per_server as f64
        };
        mean_loads.push(mean_load);
        server_airflow.push(dc.airflow_model().server_airflow(spec, mean_load));
        let total = dc
            .power_model()
            .server_power(spec, mean_load)
            .to_watts()
            .value()
            .max(gpu_sum);
        server_power.push(Watts::new(total).to_kilowatts());
    }
    // Contract order #2: reduce per row first, then across rows in row order.
    let mut total_load = 0.0;
    for row in layout.rows() {
        let row_range = topology.row_range(row.id);
        let row_load: f64 = mean_loads[row_range].iter().sum();
        total_load += row_load;
    }
    let datacenter_load = if server_count > 0 { total_load / server_count as f64 } else { 0.0 };

    // 2. Aisle airflow assessment and recirculation penalties.
    let mut aisle_penalty = vec![0.0; layout.aisles().len()];
    let mut assessments = Vec::with_capacity(layout.aisles().len());
    for aisle in layout.aisles() {
        let fraction = input.failures.aisle_airflow_fraction(aisle.id, aisle.ahu_count);
        let assessment = dc.airflow_model().assess_aisle(
            aisle,
            |s| server_airflow[s.index()],
            fraction,
        );
        aisle_penalty[aisle.id.index()] = assessment.recirculation_penalty_c;
        assessments.push(assessment);
    }
    let aisle_airflow = OrdinalMap::from_ordered(assessments);

    // 3./4. Inlet and GPU temperatures plus thermal throttles — one GPU at a time.
    let mut inlet_temps = Vec::with_capacity(server_count);
    let mut gpu_temps = TempGrid::for_topology(topology);
    let mut thermal_throttles: Vec<ThermalThrottleDirective> = Vec::new();
    {
        let (gpu_plane, mem_offsets) = gpu_temps.kernel_planes_mut();
        let mut flat = 0usize;
        for (i, server) in layout.servers().iter().enumerate() {
            let activity = input.activity.server(i);
            let penalty = aisle_penalty[server.aisle.index()];
            // Contract order #3 lives inside `inlet_temp`.
            let inlet = dc.inlet_model().inlet_temp(
                server.id,
                input.outside_temp,
                datacenter_load,
                penalty,
            );
            inlet_temps.push(inlet);
            let limit = server.spec.gpu_throttle_temp_c;
            // The grid stores the per-server memory offset; the derived per-GPU memory
            // value (`gpu + offset`) is bit-identical to the model's `temperatures`
            // output, which the property tests assert through `TempGrid::get`.
            mem_offsets[i] = dc
                .gpu_model()
                .coefficients()
                .memory_offset(activity.memory_boundedness);
            for slot in 0..server.spec.gpus_per_server {
                let t = dc.gpu_model().temperatures(
                    GpuId::new(server.id, slot),
                    inlet,
                    gpu_power_flat[flat],
                    activity.memory_boundedness,
                );
                gpu_plane[flat] = t.gpu.value();
                if t.gpu.value() > limit {
                    let overshoot = t.gpu.value() - limit;
                    let frequency_scale = (1.0 - 0.05 * overshoot).clamp(0.5, 0.95);
                    thermal_throttles.push(ThermalThrottleDirective {
                        gpu: GpuId::new(server.id, slot),
                        temperature: t.gpu,
                        frequency_scale,
                    });
                }
                flat += 1;
            }
        }
    }

    // 5. Power hierarchy assessment and capping. An operator power cap clamps row/UPS
    // budgets on top of the failure-derived fractions, exactly as the engine does.
    let mut capacity = input.failures.capacity_state(layout);
    if input.power_cap < 1.0 {
        capacity.apply_power_cap(input.power_cap, layout.upses().len(), layout.rows().len());
    }
    let power = dc.hierarchy().assess(&server_power, &capacity);

    StepOutcome {
        inlet_temps,
        gpu_temps,
        server_power,
        server_airflow,
        aisle_airflow,
        power,
        thermal_throttles,
        datacenter_load,
    }
}
