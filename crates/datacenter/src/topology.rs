//! Physical topology: servers, racks, rows, cold aisles and the hardware specifications of
//! the GPU servers they host.
//!
//! The paper studies datacenters arranged in cold aisles of two rows each, fed by AHUs
//! (Fig. 1). GPU racks are power-dense, so rows host fewer servers than in general-purpose
//! datacenters. [`LayoutConfig`] builds a [`Layout`] with the full parent/child structure and
//! the provisioned airflow/power budgets that Eq. (3) and Eq. (4) constrain.

use crate::ids::{AisleId, PduId, RackId, RowId, ServerId, UpsId};
use serde::{Deserialize, Serialize};
use simkit::units::{CubicFeetPerMinute, Kilowatts};

/// The GPU generation a server is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA DGX A100 class server (8 × A100).
    A100,
    /// NVIDIA DGX H100 class server (8 × H100).
    H100,
}

impl GpuModel {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GpuModel::A100 => "DGX-A100",
            GpuModel::H100 => "DGX-H100",
        }
    }
}

/// Hardware specification of a GPU server.
///
/// The defaults follow the figures the paper quotes: a DGX A100 has a server-level TDP of
/// 6.5 kW and moves ≈840 CFM at 80 % fan PWM; a DGX H100 has a TDP of 10.2 kW and ≈1105 CFM.
/// GPUs throttle at 85 °C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// GPU generation.
    pub model: GpuModel,
    /// Number of GPUs per server (8 in both DGX variants).
    pub gpus_per_server: usize,
    /// Power drawn by an idle server (fans, CPUs, memory, storage still draw significant
    /// power, §2.2).
    pub idle_power: Kilowatts,
    /// Maximum (TDP) server power at full load.
    pub max_power: Kilowatts,
    /// Per-GPU maximum power draw.
    pub gpu_max_power: Kilowatts,
    /// Airflow consumed by an idle server.
    pub idle_airflow: CubicFeetPerMinute,
    /// Airflow consumed at full load (80 % PWM figure from the manufacturer specs).
    pub max_airflow: CubicFeetPerMinute,
    /// GPU junction temperature at which the hardware throttles.
    pub gpu_throttle_temp_c: f64,
    /// GPU memory temperature at which the hardware throttles.
    pub mem_throttle_temp_c: f64,
}

impl ServerSpec {
    /// Specification of a DGX A100 class server.
    #[must_use]
    pub fn dgx_a100() -> Self {
        Self {
            model: GpuModel::A100,
            gpus_per_server: 8,
            idle_power: Kilowatts::new(1.6),
            max_power: Kilowatts::new(6.5),
            gpu_max_power: Kilowatts::new(0.4),
            idle_airflow: CubicFeetPerMinute::new(420.0),
            max_airflow: CubicFeetPerMinute::new(840.0),
            gpu_throttle_temp_c: 85.0,
            mem_throttle_temp_c: 95.0,
        }
    }

    /// Specification of a DGX H100 class server.
    #[must_use]
    pub fn dgx_h100() -> Self {
        Self {
            model: GpuModel::H100,
            gpus_per_server: 8,
            idle_power: Kilowatts::new(2.2),
            max_power: Kilowatts::new(10.2),
            gpu_max_power: Kilowatts::new(0.7),
            idle_airflow: CubicFeetPerMinute::new(520.0),
            max_airflow: CubicFeetPerMinute::new(1105.0),
            gpu_throttle_temp_c: 85.0,
            mem_throttle_temp_c: 95.0,
        }
    }
}

/// One GPU server and its position in the physical hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// Server id (global index).
    pub id: ServerId,
    /// Containing rack.
    pub rack: RackId,
    /// Containing row.
    pub row: RowId,
    /// Containing cold aisle.
    pub aisle: AisleId,
    /// Vertical position in the rack (0 = bottom).
    pub height_in_rack: usize,
    /// Position of the rack within the row (0 = closest to the AHU end).
    pub rack_position_in_row: usize,
    /// Hardware specification.
    pub spec: ServerSpec,
}

/// One rack of servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    /// Rack id (global index).
    pub id: RackId,
    /// Containing row.
    pub row: RowId,
    /// Position within the row.
    pub position_in_row: usize,
    /// Servers hosted in this rack, bottom to top.
    pub servers: Vec<ServerId>,
}

/// One row of racks. A row is the unit of power budgeting (Eq. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row id.
    pub id: RowId,
    /// Containing aisle.
    pub aisle: AisleId,
    /// Racks in the row.
    pub racks: Vec<RackId>,
    /// Servers in the row.
    pub servers: Vec<ServerId>,
    /// Provisioned power budget for the row.
    pub power_budget: Kilowatts,
    /// PDU pair feeding this row.
    pub pdu: PduId,
}

/// One cold aisle: two rows sharing AHUs. An aisle is the unit of airflow budgeting (Eq. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aisle {
    /// Aisle id.
    pub id: AisleId,
    /// The rows (normally two) served by this aisle's AHUs.
    pub rows: Vec<RowId>,
    /// Servers drawing air from this aisle.
    pub servers: Vec<ServerId>,
    /// Provisioned AHU airflow for the aisle.
    pub airflow_provisioned: CubicFeetPerMinute,
    /// Number of AHUs serving the aisle (used for failure modelling: one AHU failing removes
    /// `1/ahu_count` of the provisioned airflow).
    pub ahu_count: usize,
}

/// A PDU pair in the power hierarchy, feeding one or more rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pdu {
    /// PDU id.
    pub id: PduId,
    /// Rows fed by this PDU pair.
    pub rows: Vec<RowId>,
    /// Parent UPS.
    pub ups: UpsId,
    /// Power budget of the PDU pair.
    pub power_budget: Kilowatts,
}

/// A UPS in the power hierarchy, feeding one or more PDU pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ups {
    /// UPS id.
    pub id: UpsId,
    /// PDU pairs fed by this UPS.
    pub pdus: Vec<PduId>,
    /// Power budget of the UPS.
    pub power_budget: Kilowatts,
}

/// The complete physical layout of a datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    servers: Vec<Server>,
    racks: Vec<Rack>,
    rows: Vec<Row>,
    aisles: Vec<Aisle>,
    pdus: Vec<Pdu>,
    upses: Vec<Ups>,
    /// Datacenter-level power budget (at the ATS).
    datacenter_power_budget: Kilowatts,
}

impl Layout {
    /// All servers, indexed by [`ServerId::index`].
    #[must_use]
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// All racks.
    #[must_use]
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// All aisles.
    #[must_use]
    pub fn aisles(&self) -> &[Aisle] {
        &self.aisles
    }

    /// All PDU pairs.
    #[must_use]
    pub fn pdus(&self) -> &[Pdu] {
        &self.pdus
    }

    /// All UPSes.
    #[must_use]
    pub fn upses(&self) -> &[Ups] {
        &self.upses
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Looks up a server.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Looks up a row.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.index()]
    }

    /// Looks up an aisle.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn aisle(&self, id: AisleId) -> &Aisle {
        &self.aisles[id.index()]
    }

    /// Datacenter-level power budget.
    #[must_use]
    pub fn datacenter_power_budget(&self) -> Kilowatts {
        self.datacenter_power_budget
    }

    /// Total GPU count across all servers.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.servers.iter().map(|s| s.spec.gpus_per_server).sum()
    }

    /// Maximum possible aggregate server power (all servers at TDP).
    #[must_use]
    pub fn total_max_power(&self) -> Kilowatts {
        self.servers.iter().map(|s| s.spec.max_power).sum()
    }

    /// Returns the layout with every server's spec replaced by `f(server)` — the entry
    /// point for mixed fleets (e.g. H100 rows inside an A100 site) and for differential
    /// tests that need ragged GPU counts or mixed-spec rows, which exercise the physics
    /// engine's general (non-row-uniform) kernels.
    ///
    /// Structure (rows, aisles, power hierarchy) and the provisioned budgets are left as
    /// built; callers that change TDPs materially should build with matching provisioning
    /// fractions instead.
    #[must_use]
    pub fn map_server_specs(mut self, mut f: impl FnMut(&Server) -> ServerSpec) -> Self {
        for server in &mut self.servers {
            server.spec = f(server);
        }
        self
    }
}

/// Configuration used to construct a [`Layout`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Number of cold aisles (each aisle has two rows).
    pub aisles: usize,
    /// Racks per row.
    pub racks_per_row: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Server hardware specification.
    pub server_spec: ServerSpec,
    /// Row power budget as a fraction of the row's aggregate server TDP. `1.0` means the row
    /// can sustain every server at TDP simultaneously (no oversubscription).
    pub row_power_provisioning: f64,
    /// Aisle airflow budget as a fraction of the aisle's aggregate maximum server airflow.
    pub aisle_airflow_provisioning: f64,
    /// PDU power budget as a fraction of the aggregate budget of its rows.
    pub pdu_power_provisioning: f64,
    /// UPS power budget as a fraction of the aggregate budget of its PDUs.
    pub ups_power_provisioning: f64,
    /// Number of PDU pairs fed by each UPS.
    pub pdus_per_ups: usize,
    /// AHUs per aisle (for failure granularity).
    pub ahus_per_aisle: usize,
}

impl LayoutConfig {
    /// A small A100 layout suitable for unit tests: 1 aisle × 2 rows × 2 racks × 2 servers.
    #[must_use]
    pub fn small_test_cluster() -> Self {
        Self {
            aisles: 1,
            racks_per_row: 2,
            servers_per_rack: 2,
            server_spec: ServerSpec::dgx_a100(),
            row_power_provisioning: 1.0,
            aisle_airflow_provisioning: 1.0,
            pdu_power_provisioning: 1.0,
            ups_power_provisioning: 1.0,
            pdus_per_ups: 2,
            ahus_per_aisle: 4,
        }
    }

    /// The two-row, 80-server A100 configuration of the paper's real-cluster experiment
    /// (§5.1, Fig. 18): one aisle, two rows, ten racks per row, four servers per rack.
    #[must_use]
    pub fn real_cluster_two_rows() -> Self {
        Self {
            aisles: 1,
            racks_per_row: 10,
            servers_per_rack: 4,
            server_spec: ServerSpec::dgx_a100(),
            row_power_provisioning: 0.85,
            aisle_airflow_provisioning: 0.9,
            pdu_power_provisioning: 1.0,
            ups_power_provisioning: 1.0,
            pdus_per_ups: 1,
            ahus_per_aisle: 4,
        }
    }

    /// A ~1000-server A100 datacenter comparable to the large-scale simulation of Fig. 19:
    /// 13 aisles × 2 rows × 10 racks × 4 servers = 1040 servers.
    #[must_use]
    pub fn production_datacenter() -> Self {
        Self {
            aisles: 13,
            racks_per_row: 10,
            servers_per_rack: 4,
            server_spec: ServerSpec::dgx_a100(),
            row_power_provisioning: 0.85,
            aisle_airflow_provisioning: 0.9,
            pdu_power_provisioning: 0.95,
            ups_power_provisioning: 0.95,
            pdus_per_ups: 3,
            ahus_per_aisle: 4,
        }
    }

    /// Total number of servers this configuration will produce.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.aisles * 2 * self.racks_per_row * self.servers_per_rack
    }

    /// Builds the layout.
    ///
    /// # Panics
    /// Panics if any dimension is zero or any provisioning fraction is non-positive.
    #[must_use]
    pub fn build(&self) -> Layout {
        assert!(
            self.aisles > 0 && self.racks_per_row > 0 && self.servers_per_rack > 0,
            "layout dimensions must be non-zero"
        );
        assert!(
            self.row_power_provisioning > 0.0
                && self.aisle_airflow_provisioning > 0.0
                && self.pdu_power_provisioning > 0.0
                && self.ups_power_provisioning > 0.0,
            "provisioning fractions must be positive"
        );
        assert!(self.pdus_per_ups > 0, "pdus_per_ups must be non-zero");
        assert!(self.ahus_per_aisle > 0, "ahus_per_aisle must be non-zero");

        let mut servers = Vec::new();
        let mut racks = Vec::new();
        let mut rows = Vec::new();
        let mut aisles = Vec::new();
        let spec = self.server_spec;

        for aisle_idx in 0..self.aisles {
            let aisle_id = AisleId::new(aisle_idx);
            let mut aisle_rows = Vec::new();
            let mut aisle_servers = Vec::new();
            for row_in_aisle in 0..2 {
                let row_idx = aisle_idx * 2 + row_in_aisle;
                let row_id = RowId::new(row_idx);
                let mut row_racks = Vec::new();
                let mut row_servers = Vec::new();
                for rack_pos in 0..self.racks_per_row {
                    let rack_idx = row_idx * self.racks_per_row + rack_pos;
                    let rack_id = RackId::new(rack_idx);
                    let mut rack_servers = Vec::new();
                    for height in 0..self.servers_per_rack {
                        let server_id = ServerId::new(servers.len());
                        servers.push(Server {
                            id: server_id,
                            rack: rack_id,
                            row: row_id,
                            aisle: aisle_id,
                            height_in_rack: height,
                            rack_position_in_row: rack_pos,
                            spec,
                        });
                        rack_servers.push(server_id);
                        row_servers.push(server_id);
                        aisle_servers.push(server_id);
                    }
                    racks.push(Rack {
                        id: rack_id,
                        row: row_id,
                        position_in_row: rack_pos,
                        servers: rack_servers,
                    });
                    row_racks.push(rack_id);
                }
                let row_max_power: Kilowatts =
                    row_servers.iter().map(|_| spec.max_power).sum();
                rows.push(Row {
                    id: row_id,
                    aisle: aisle_id,
                    racks: row_racks,
                    servers: row_servers,
                    power_budget: row_max_power * self.row_power_provisioning,
                    pdu: PduId::new(0), // patched below once PDUs are laid out
                });
                aisle_rows.push(row_id);
            }
            let aisle_max_airflow: CubicFeetPerMinute =
                aisle_servers.iter().map(|_| spec.max_airflow).sum();
            aisles.push(Aisle {
                id: aisle_id,
                rows: aisle_rows,
                servers: aisle_servers,
                airflow_provisioned: aisle_max_airflow * self.aisle_airflow_provisioning,
                ahu_count: self.ahus_per_aisle,
            });
        }

        // Power hierarchy: one PDU pair per aisle (i.e. per two rows), grouped under UPSes.
        let mut pdus = Vec::new();
        for aisle in &aisles {
            let pdu_id = PduId::new(pdus.len());
            let budget: Kilowatts = aisle
                .rows
                .iter()
                .map(|r| rows[r.index()].power_budget)
                .sum::<Kilowatts>()
                * self.pdu_power_provisioning;
            for row_id in &aisle.rows {
                rows[row_id.index()].pdu = pdu_id;
            }
            pdus.push(Pdu {
                id: pdu_id,
                rows: aisle.rows.clone(),
                ups: UpsId::new(0), // patched below
                power_budget: budget,
            });
        }

        let mut upses = Vec::new();
        for chunk in pdus.chunks_mut(self.pdus_per_ups) {
            let ups_id = UpsId::new(upses.len());
            let budget: Kilowatts =
                chunk.iter().map(|p| p.power_budget).sum::<Kilowatts>() * self.ups_power_provisioning;
            let mut members = Vec::new();
            for pdu in chunk.iter_mut() {
                pdu.ups = ups_id;
                members.push(pdu.id);
            }
            upses.push(Ups { id: ups_id, pdus: members, power_budget: budget });
        }

        let datacenter_power_budget: Kilowatts = upses.iter().map(|u| u.power_budget).sum();

        Layout {
            servers,
            racks,
            rows,
            aisles,
            pdus,
            upses,
            datacenter_power_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_figures() {
        let a100 = ServerSpec::dgx_a100();
        assert_eq!(a100.gpus_per_server, 8);
        assert_eq!(a100.max_power.value(), 6.5);
        assert_eq!(a100.max_airflow.value(), 840.0);
        assert_eq!(a100.gpu_throttle_temp_c, 85.0);
        let h100 = ServerSpec::dgx_h100();
        assert_eq!(h100.max_power.value(), 10.2);
        assert_eq!(h100.max_airflow.value(), 1105.0);
        assert_eq!(GpuModel::A100.name(), "DGX-A100");
        assert_eq!(GpuModel::H100.name(), "DGX-H100");
    }

    #[test]
    fn small_layout_has_consistent_structure() {
        let cfg = LayoutConfig::small_test_cluster();
        let layout = cfg.build();
        assert_eq!(layout.server_count(), cfg.server_count());
        assert_eq!(layout.server_count(), 8);
        assert_eq!(layout.rows().len(), 2);
        assert_eq!(layout.aisles().len(), 1);
        assert_eq!(layout.racks().len(), 4);
        assert_eq!(layout.gpu_count(), 64);
        // Every server is listed exactly once in its row, rack and aisle.
        for server in layout.servers() {
            assert!(layout.row(server.row).servers.contains(&server.id));
            assert!(layout.aisle(server.aisle).servers.contains(&server.id));
            assert!(layout.racks()[server.rack.index()].servers.contains(&server.id));
        }
        // Row -> PDU -> UPS chains are consistent.
        for row in layout.rows() {
            let pdu = &layout.pdus()[row.pdu.index()];
            assert!(pdu.rows.contains(&row.id));
            let ups = &layout.upses()[pdu.ups.index()];
            assert!(ups.pdus.contains(&pdu.id));
        }
    }

    #[test]
    fn real_cluster_matches_paper_scale() {
        let layout = LayoutConfig::real_cluster_two_rows().build();
        assert_eq!(layout.server_count(), 80);
        assert_eq!(layout.rows().len(), 2);
        assert_eq!(layout.rows()[0].servers.len(), 40);
    }

    #[test]
    fn production_datacenter_is_about_a_thousand_servers() {
        let cfg = LayoutConfig::production_datacenter();
        assert_eq!(cfg.server_count(), 1040);
        let layout = cfg.build();
        assert_eq!(layout.server_count(), 1040);
        assert_eq!(layout.aisles().len(), 13);
        assert_eq!(layout.upses().len(), 5); // 13 PDUs in groups of 3 -> 5 UPSes
    }

    #[test]
    fn budgets_scale_with_provisioning_fractions() {
        let mut cfg = LayoutConfig::small_test_cluster();
        cfg.row_power_provisioning = 0.5;
        let layout = cfg.build();
        let row = &layout.rows()[0];
        let expected = Kilowatts::new(4.0 * 6.5 * 0.5);
        assert!((row.power_budget.value() - expected.value()).abs() < 1e-9);
        let aisle = &layout.aisles()[0];
        assert!((aisle.airflow_provisioned.value() - 8.0 * 840.0).abs() < 1e-9);
    }

    #[test]
    fn total_max_power_is_sum_of_tdps() {
        let layout = LayoutConfig::small_test_cluster().build();
        assert!((layout.total_max_power().value() - 8.0 * 6.5).abs() < 1e-9);
        assert!(layout.datacenter_power_budget().value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dimension_panics() {
        let mut cfg = LayoutConfig::small_test_cluster();
        cfg.racks_per_row = 0;
        let _ = cfg.build();
    }

    #[test]
    #[should_panic(expected = "provisioning fractions must be positive")]
    fn zero_provisioning_panics() {
        let mut cfg = LayoutConfig::small_test_cluster();
        cfg.row_power_provisioning = 0.0;
        let _ = cfg.build();
    }

    #[test]
    fn spatial_positions_are_recorded() {
        let layout = LayoutConfig::small_test_cluster().build();
        let last = layout.server(ServerId::new(7));
        assert_eq!(last.height_in_rack, 1);
        assert_eq!(last.rack_position_in_row, 1);
        assert_eq!(last.row.index(), 1);
        assert_eq!(last.aisle.index(), 0);
    }
}
