//! Frozen topology ordinals and dense, id-keyed telemetry containers.
//!
//! Every physical entity already carries a dense index in its id newtype
//! ([`ServerId::index`] and friends). A [`TopologyIndex`] freezes those ordinals for one
//! datacenter — entity counts, the server-major GPU offset table and the contiguous
//! per-row server ranges — so per-step telemetry can live in flat vectors instead of tree
//! maps. [`OrdinalMap`] is the id-keyed dense container those telemetry types use: an
//! ordinal-indexed `Vec` with map-like (`get`/`iter`) accessors so call sites read like
//! the `BTreeMap`s they replace while costing an array index.
//!
//! The index is a *handle*, not a global: a future fleet layer holds one per datacenter
//! and telemetry types stay valid against the index that shaped them.

use crate::ids::{AisleId, GpuId, PduId, RackId, RowId, ServerId, UpsId};
use crate::topology::Layout;
use serde::{Deserialize, Error, Serialize, Value};
use std::marker::PhantomData;
use std::ops::{Index, IndexMut, Range};

/// An id newtype that is a dense ordinal: convertible to and from its raw index.
///
/// Implemented by every physical id in [`crate::ids`]; [`OrdinalMap`] uses it to key
/// flat vectors by typed ids.
pub trait TopologyOrdinal: Copy {
    /// The raw ordinal of this id.
    fn ordinal(self) -> usize;
    /// Reconstructs the id from a raw ordinal.
    fn from_ordinal(ordinal: usize) -> Self;
}

macro_rules! ordinal_impl {
    ($($ty:ty),*) => {$(
        impl TopologyOrdinal for $ty {
            fn ordinal(self) -> usize {
                self.index()
            }
            fn from_ordinal(ordinal: usize) -> Self {
                Self::new(ordinal)
            }
        }
    )*};
}

ordinal_impl!(ServerId, RowId, AisleId, RackId, PduId, UpsId);

/// A dense map keyed by a [`TopologyOrdinal`] id: a flat `Vec<V>` whose slot `i` belongs
/// to the id with ordinal `i`.
///
/// This is the telemetry-grid building block: `get`/`iter` keep call sites id-keyed and
/// readable, while storage stays contiguous and lookups are O(1) array indexing. Unlike a
/// `BTreeMap`, the key set is always the full ordinal range `0..len` — exactly right for
/// per-row/per-aisle/per-PDU grids that cover every entity each step.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdinalMap<K, V> {
    values: Vec<V>,
    _key: PhantomData<K>,
}

impl<K, V> Default for OrdinalMap<K, V> {
    fn default() -> Self {
        Self { values: Vec::new(), _key: PhantomData }
    }
}

impl<K: TopologyOrdinal, V> OrdinalMap<K, V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A map of `len` slots, every slot holding a clone of `value`.
    #[must_use]
    pub fn filled(len: usize, value: V) -> Self
    where
        V: Clone,
    {
        Self { values: vec![value; len], _key: PhantomData }
    }

    /// Wraps an ordinal-ordered vector (slot `i` belongs to the id with ordinal `i`).
    #[must_use]
    pub fn from_ordered(values: Vec<V>) -> Self {
        Self { values, _key: PhantomData }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the map has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value for `key`, or `None` if the ordinal is out of range.
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        self.values.get(key.ordinal())
    }

    /// Mutable access to the value for `key`.
    #[must_use]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.values.get_mut(key.ordinal())
    }

    /// Iterates `(id, value)` pairs in ordinal order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (K, &V)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_ordinal(i), v))
    }

    /// Iterates the values in ordinal order.
    pub fn values(&self) -> std::slice::Iter<'_, V> {
        self.values.iter()
    }

    /// Mutably iterates the values in ordinal order.
    pub fn values_mut(&mut self) -> std::slice::IterMut<'_, V> {
        self.values.iter_mut()
    }

    /// Iterates the keys in ordinal order.
    pub fn keys(&self) -> impl ExactSizeIterator<Item = K> + '_ {
        (0..self.values.len()).map(K::from_ordinal)
    }

    /// The values as an ordinal-ordered slice.
    #[must_use]
    pub fn as_slice(&self) -> &[V] {
        &self.values
    }

    /// Resizes to `len` slots, filling new slots with clones of `value`. Existing slots
    /// keep their contents; shrinking truncates. Reuses the allocation across steps.
    pub fn resize(&mut self, len: usize, value: V)
    where
        V: Clone,
    {
        self.values.resize(len, value);
    }

    /// Overwrites every slot with clones of `value` (allocation-free).
    pub fn fill(&mut self, value: V)
    where
        V: Clone,
    {
        self.values.fill(value);
    }

    /// Removes all slots, keeping the allocation.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl<K: TopologyOrdinal, V> Index<K> for OrdinalMap<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.values[key.ordinal()]
    }
}

impl<K: TopologyOrdinal, V> IndexMut<K> for OrdinalMap<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.values[key.ordinal()]
    }
}

impl<K: TopologyOrdinal, V> FromIterator<V> for OrdinalMap<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Self::from_ordered(iter.into_iter().collect())
    }
}

// The vendored serde derive rejects generics, so the impls are written out: an
// `OrdinalMap` serializes as the plain sequence of its values in ordinal order (the
// ordinals are implicit), which also keeps the encoding deterministic.
impl<K, V: Serialize> Serialize for OrdinalMap<K, V> {
    fn to_value(&self) -> Value {
        self.values.to_value()
    }
}

impl<K, V: Deserialize> Deserialize for OrdinalMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self { values: Vec::from_value(value)?, _key: PhantomData })
    }
}

/// Returns `true` when `ids` is an ascending, contiguous ordinal run — the layout
/// builder's invariant for row and aisle member lists. The dense-slice fast paths
/// (hierarchy row draws, aisle demand) reduce over `[first, first + len)` windows only
/// when this holds, which keeps their sums bit-identical to the id-list walks.
#[must_use]
pub fn is_contiguous_run<K: TopologyOrdinal>(ids: &[K]) -> bool {
    ids.windows(2).all(|w| w[1].ordinal() == w[0].ordinal() + 1)
}

/// Frozen ordinal geometry of one datacenter, built once from its [`Layout`].
///
/// Holds the entity counts and the stride tables (server-major GPU offsets, contiguous
/// per-row server ranges) that shape every dense telemetry grid. Cheap to clone behind an
/// `Arc`; the engine, its workspaces and any fleet-level aggregation share one handle per
/// datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyIndex {
    server_count: usize,
    row_count: usize,
    aisle_count: usize,
    rack_count: usize,
    pdu_count: usize,
    ups_count: usize,
    /// Server-major GPU prefix sums (length `server_count + 1`).
    gpu_offsets: Vec<u32>,
    /// Contiguous `[start, end)` server-index range per row, in row-ordinal order.
    row_ranges: Vec<Range<usize>>,
}

impl TopologyIndex {
    /// Freezes the ordinal geometry of a layout.
    ///
    /// # Panics
    /// Panics if the layout's rows are not contiguous server-index ranges (the builder
    /// always produces contiguous rows).
    #[must_use]
    pub fn from_layout(layout: &Layout) -> Self {
        let server_count = layout.server_count();
        let mut gpu_offsets = Vec::with_capacity(server_count + 1);
        let mut total_gpus = 0u32;
        gpu_offsets.push(0);
        for server in layout.servers() {
            total_gpus += u32::try_from(server.spec.gpus_per_server)
                .expect("per-server GPU count fits in u32");
            gpu_offsets.push(total_gpus);
        }
        let row_ranges: Vec<Range<usize>> = layout
            .rows()
            .iter()
            .map(|row| {
                let start = row.servers.iter().map(|s| s.index()).min().unwrap_or(0);
                let end = row.servers.iter().map(|s| s.index() + 1).max().unwrap_or(0);
                assert_eq!(
                    end - start,
                    row.servers.len(),
                    "rows must cover contiguous server-index ranges"
                );
                start..end
            })
            .collect();
        Self {
            server_count,
            row_count: layout.rows().len(),
            aisle_count: layout.aisles().len(),
            rack_count: layout.racks().len(),
            pdu_count: layout.pdus().len(),
            ups_count: layout.upses().len(),
            gpu_offsets,
            row_ranges,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.server_count
    }

    /// Number of rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of cold aisles.
    #[must_use]
    pub fn aisle_count(&self) -> usize {
        self.aisle_count
    }

    /// Number of racks.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.rack_count
    }

    /// Number of PDU pairs.
    #[must_use]
    pub fn pdu_count(&self) -> usize {
        self.pdu_count
    }

    /// Number of UPSes.
    #[must_use]
    pub fn ups_count(&self) -> usize {
        self.ups_count
    }

    /// Total GPU count.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        *self.gpu_offsets.last().expect("offsets non-empty") as usize
    }

    /// The server-major GPU prefix sums (length `server_count + 1`).
    #[must_use]
    pub fn gpu_offsets(&self) -> &[u32] {
        &self.gpu_offsets
    }

    /// The flat GPU range of one server.
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    #[must_use]
    pub fn gpu_range(&self, server: ServerId) -> Range<usize> {
        let start = self.gpu_offsets[server.index()] as usize;
        let end = self.gpu_offsets[server.index() + 1] as usize;
        start..end
    }

    /// Number of GPUs in one server.
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range.
    #[must_use]
    pub fn gpus_of(&self, server: ServerId) -> usize {
        let range = self.gpu_range(server);
        range.end - range.start
    }

    /// The flat (server-major) ordinal of one GPU.
    ///
    /// # Panics
    /// Panics if the server ordinal is out of range or the slot exceeds the server's GPU
    /// count.
    #[must_use]
    pub fn gpu_flat_index(&self, gpu: GpuId) -> usize {
        let range = self.gpu_range(gpu.server);
        assert!(gpu.slot < range.end - range.start, "GPU slot out of range");
        range.start + gpu.slot
    }

    /// The contiguous server-index ranges of every row, in row-ordinal order.
    #[must_use]
    pub fn row_ranges(&self) -> &[Range<usize>] {
        &self.row_ranges
    }

    /// The contiguous server-index range of one row.
    ///
    /// # Panics
    /// Panics if the row ordinal is out of range.
    #[must_use]
    pub fn row_range(&self, row: RowId) -> Range<usize> {
        self.row_ranges[row.index()].clone()
    }

    /// The contiguous window of one row in the flat server-major GPU planes: because rows
    /// cover contiguous server ranges, every row also covers one contiguous GPU range. The
    /// engine's row kernels split every per-GPU plane (power, temperatures, throttle
    /// scratch) along these windows.
    ///
    /// # Panics
    /// Panics if the row ordinal is out of range.
    #[must_use]
    pub fn row_gpu_range(&self, row: RowId) -> Range<usize> {
        let servers = &self.row_ranges[row.index()];
        self.gpu_offsets[servers.start] as usize..self.gpu_offsets[servers.end] as usize
    }

    /// Partition the row sweep into at most `parts` chunks of *contiguous* rows, balanced
    /// by server count (rows can be ragged, so balancing on row count alone would skew
    /// the work). `out` receives the per-chunk row counts in row-ordinal order; the counts
    /// are all non-zero and sum to `row_count`. Intra-site parallel streaming shards on
    /// these chunks: because each chunk is a contiguous row range and directives are
    /// merged back in row order, the sharded sweep is bit-identical to the serial one.
    pub fn balanced_row_chunks_into(&self, parts: usize, out: &mut Vec<usize>) {
        out.clear();
        let rows = self.row_ranges.len();
        if rows == 0 {
            return;
        }
        let parts = parts.clamp(1, rows);
        let total_servers = self.server_count;
        let mut row = 0usize;
        let mut remaining = total_servers;
        for part in 0..parts {
            let start = row;
            if part + 1 == parts {
                row = rows;
            } else {
                let target = remaining.div_ceil(parts - part);
                let mut taken = 0usize;
                while row < rows && (taken < target || row == start) {
                    taken += self.row_ranges[row].len();
                    row += 1;
                }
                remaining -= taken;
            }
            if row > start {
                out.push(row - start);
            }
        }
        debug_assert_eq!(
            out.iter().sum::<usize>(),
            rows,
            "row chunks must cover every row exactly once"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LayoutConfig;

    #[test]
    fn index_matches_layout_geometry() {
        let layout = LayoutConfig::production_datacenter().build();
        let index = TopologyIndex::from_layout(&layout);
        assert_eq!(index.server_count(), layout.server_count());
        assert_eq!(index.row_count(), layout.rows().len());
        assert_eq!(index.aisle_count(), layout.aisles().len());
        assert_eq!(index.rack_count(), layout.racks().len());
        assert_eq!(index.pdu_count(), layout.pdus().len());
        assert_eq!(index.ups_count(), layout.upses().len());
        assert_eq!(index.gpu_count(), layout.gpu_count());
        for row in layout.rows() {
            let range = index.row_range(row.id);
            assert_eq!(range.end - range.start, row.servers.len());
            for server in &row.servers {
                assert!(range.contains(&server.index()));
            }
        }
    }

    #[test]
    fn gpu_offsets_are_server_major_prefix_sums() {
        let layout = LayoutConfig::small_test_cluster().build();
        let index = TopologyIndex::from_layout(&layout);
        assert_eq!(index.gpu_offsets().len(), layout.server_count() + 1);
        for server in layout.servers() {
            assert_eq!(index.gpus_of(server.id), server.spec.gpus_per_server);
            let flat = index.gpu_flat_index(GpuId::new(server.id, 0));
            assert_eq!(flat, index.gpu_range(server.id).start);
        }
        assert_eq!(
            index.gpu_flat_index(GpuId::new(ServerId::new(1), 3)),
            8 + 3,
            "second server's slot 3 sits after the first server's 8 GPUs"
        );
        // Row GPU windows line up with the per-server prefix sums.
        for row in layout.rows() {
            let servers = index.row_range(row.id);
            let gpus = index.row_gpu_range(row.id);
            let expected: usize =
                servers.clone().map(|s| index.gpus_of(ServerId::new(s))).sum();
            assert_eq!(gpus.end - gpus.start, expected);
            assert_eq!(gpus.start, index.gpu_range(ServerId::new(servers.start)).start);
        }
    }

    #[test]
    #[should_panic(expected = "GPU slot out of range")]
    fn out_of_range_slot_panics() {
        let layout = LayoutConfig::small_test_cluster().build();
        let index = TopologyIndex::from_layout(&layout);
        let _ = index.gpu_flat_index(GpuId::new(ServerId::new(0), 8));
    }

    #[test]
    fn contiguous_run_predicate() {
        assert!(is_contiguous_run::<ServerId>(&[]));
        assert!(is_contiguous_run(&[ServerId::new(3)]));
        assert!(is_contiguous_run(&[ServerId::new(3), ServerId::new(4), ServerId::new(5)]));
        assert!(!is_contiguous_run(&[ServerId::new(3), ServerId::new(5)]));
        assert!(!is_contiguous_run(&[ServerId::new(4), ServerId::new(3)]));
    }

    #[test]
    fn balanced_row_chunks_cover_rows_and_balance_servers() {
        let layout = LayoutConfig::production_datacenter().build();
        let index = TopologyIndex::from_layout(&layout);
        let rows = index.row_ranges().len();
        let mut chunks = Vec::new();
        for parts in [1, 2, 3, rows, rows + 5, 64] {
            index.balanced_row_chunks_into(parts, &mut chunks);
            assert!(!chunks.is_empty());
            assert!(chunks.len() <= parts.min(rows));
            assert!(chunks.iter().all(|&len| len > 0));
            assert_eq!(chunks.iter().sum::<usize>(), rows);
        }
        // Two-way split of a uniform layout lands within one row of even.
        index.balanced_row_chunks_into(2, &mut chunks);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].abs_diff(chunks[1]) <= 1);
        // parts = 0 behaves like 1 (single serial chunk).
        index.balanced_row_chunks_into(0, &mut chunks);
        assert_eq!(chunks, vec![rows]);
    }

    #[test]
    fn ordinal_map_reads_like_a_map() {
        let mut map: OrdinalMap<RowId, f64> = OrdinalMap::filled(3, 0.0);
        map[RowId::new(1)] = 2.5;
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(RowId::new(1)), Some(&2.5));
        assert_eq!(map.get(RowId::new(9)), None);
        assert_eq!(map[RowId::new(0)], 0.0);
        let pairs: Vec<(usize, f64)> = map.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(pairs, vec![(0, 0.0), (1, 2.5), (2, 0.0)]);
        let keys: Vec<usize> = map.keys().map(RowId::index).collect();
        assert_eq!(keys, vec![0, 1, 2]);
        map.fill(1.0);
        assert!(map.values().all(|&v| (v - 1.0).abs() < f64::EPSILON));
        map.resize(5, 7.0);
        assert_eq!(map[RowId::new(4)], 7.0);
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn ordinal_map_round_trips_through_serde() {
        let map: OrdinalMap<AisleId, f64> = [1.0, 2.0, 3.0].into_iter().collect();
        let back = OrdinalMap::<AisleId, f64>::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
