//! Outside air temperature model.
//!
//! Free-cooled and adiabatically-cooled datacenters couple their cold-aisle inlet temperature
//! to the outside air temperature (§2.1, Fig. 2–3). The paper's three regions span different
//! climates; we model the outside temperature as the sum of a climate-specific base, a
//! seasonal drift, a diurnal cycle and a small autocorrelated noise term, which reproduces
//! the week-scale traces in Fig. 2.

use serde::{Deserialize, Serialize};
use simkit::rng::SimRng;
use simkit::time::SimTime;
use simkit::units::Celsius;

/// A regional climate parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Climate {
    /// Mean temperature over the modelled period.
    pub mean_temp_c: f64,
    /// Peak-to-trough amplitude of the diurnal cycle.
    pub diurnal_amplitude_c: f64,
    /// Peak-to-trough amplitude of the slow (multi-week) seasonal drift.
    pub seasonal_amplitude_c: f64,
    /// Period of the seasonal drift in days.
    pub seasonal_period_days: f64,
    /// Standard deviation of the day-to-day weather noise.
    pub noise_std_c: f64,
    /// Hour of day (0–24) at which the diurnal cycle peaks.
    pub hottest_hour: f64,
}

impl Climate {
    /// A temperate region (e.g. northern Europe): mild with a pronounced diurnal cycle.
    #[must_use]
    pub fn temperate() -> Self {
        Self {
            mean_temp_c: 16.0,
            diurnal_amplitude_c: 8.0,
            seasonal_amplitude_c: 8.0,
            seasonal_period_days: 90.0,
            noise_std_c: 2.0,
            hottest_hour: 15.0,
        }
    }

    /// A hot region (e.g. the southwestern US in summer).
    #[must_use]
    pub fn hot() -> Self {
        Self {
            mean_temp_c: 30.0,
            diurnal_amplitude_c: 10.0,
            seasonal_amplitude_c: 6.0,
            seasonal_period_days: 90.0,
            noise_std_c: 1.5,
            hottest_hour: 16.0,
        }
    }

    /// A cold region (e.g. the Nordics) where free cooling dominates.
    #[must_use]
    pub fn cold() -> Self {
        Self {
            mean_temp_c: 8.0,
            diurnal_amplitude_c: 6.0,
            seasonal_amplitude_c: 10.0,
            seasonal_period_days: 90.0,
            noise_std_c: 2.5,
            hottest_hour: 14.0,
        }
    }
}

/// Deterministic-plus-noise outside temperature generator.
///
/// The generator is deterministic for a given `(climate, seed)` pair: the noise term is a
/// slowly-varying autoregressive process sampled per simulated hour, so repeated queries at
/// the same time return the same temperature.
#[derive(Debug, Clone)]
pub struct WeatherModel {
    climate: Climate,
    /// Hourly noise samples, generated lazily and cached so queries are pure.
    hourly_noise: Vec<f64>,
    rng: SimRng,
}

impl WeatherModel {
    /// Creates a weather model for a climate with a deterministic seed.
    #[must_use]
    pub fn new(climate: Climate, seed: u64) -> Self {
        Self {
            climate,
            hourly_noise: Vec::new(),
            rng: SimRng::seed_from(seed).derive("weather"),
        }
    }

    /// The climate parameters.
    #[must_use]
    pub fn climate(&self) -> &Climate {
        &self.climate
    }

    /// Outside temperature at a point in simulated time.
    pub fn outside_temp(&mut self, time: SimTime) -> Celsius {
        let c = self.climate;
        let hour_of_day = time.hour_of_day();
        let day = time.as_days();
        let diurnal = 0.5
            * c.diurnal_amplitude_c
            * ((hour_of_day - c.hottest_hour) / 24.0 * std::f64::consts::TAU).cos();
        let seasonal = 0.5
            * c.seasonal_amplitude_c
            * (day / c.seasonal_period_days * std::f64::consts::TAU).sin();
        let noise = self.noise_for_hour(time.as_minutes() / 60);
        Celsius::new(c.mean_temp_c + diurnal + seasonal + noise)
    }

    /// Autoregressive hourly noise, cached so the same hour always returns the same value.
    fn noise_for_hour(&mut self, hour: u64) -> f64 {
        let needed = (hour + 1) as usize;
        while self.hourly_noise.len() < needed {
            let prev = self.hourly_noise.last().copied().unwrap_or(0.0);
            // AR(1) with coefficient 0.9: weather anomalies persist for hours, not minutes.
            let innovation = self.rng.normal(0.0, self.climate.noise_std_c * 0.2);
            self.hourly_noise.push(0.9 * prev + innovation);
        }
        self.hourly_noise[hour as usize]
    }

    /// Generates a `(time, temperature)` trace sampled every `step_minutes` for `days` days.
    pub fn trace(&mut self, days: u64, step_minutes: u64) -> Vec<(SimTime, Celsius)> {
        assert!(step_minutes > 0, "step must be non-zero");
        let total_minutes = days * 24 * 60;
        (0..total_minutes)
            .step_by(step_minutes as usize)
            .map(|m| {
                let t = SimTime::from_minutes(m);
                (t, self.outside_temp(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats;

    #[test]
    fn same_seed_same_trace() {
        let mut a = WeatherModel::new(Climate::temperate(), 7);
        let mut b = WeatherModel::new(Climate::temperate(), 7);
        for m in (0..1440).step_by(10) {
            let t = SimTime::from_minutes(m);
            assert_eq!(a.outside_temp(t), b.outside_temp(t));
        }
    }

    #[test]
    fn queries_are_pure_given_cache() {
        let mut w = WeatherModel::new(Climate::hot(), 3);
        let t = SimTime::from_hours(30);
        let first = w.outside_temp(t);
        // Query later time (extends cache), then re-query the original time.
        let _ = w.outside_temp(SimTime::from_hours(100));
        assert_eq!(w.outside_temp(t), first);
    }

    #[test]
    fn mean_tracks_climate() {
        for climate in [Climate::temperate(), Climate::hot(), Climate::cold()] {
            let mut w = WeatherModel::new(climate, 11);
            // Average over a full seasonal period so the seasonal term cancels out.
            let temps: Vec<f64> = w
                .trace(90, 60)
                .into_iter()
                .map(|(_, t)| t.value())
                .collect();
            let mean = stats::mean(&temps).unwrap();
            assert!(
                (mean - climate.mean_temp_c).abs() < 3.0,
                "mean {mean} too far from climate mean {}",
                climate.mean_temp_c
            );
        }
    }

    #[test]
    fn diurnal_cycle_peaks_in_the_afternoon() {
        let mut w = WeatherModel::new(Climate::hot(), 5);
        // Average over many days to wash out noise: afternoon should be warmer than night.
        let mut afternoon = Vec::new();
        let mut night = Vec::new();
        for day in 0..20 {
            let t_pm = SimTime::from_minutes(day * 1440 + 16 * 60);
            let t_am = SimTime::from_minutes(day * 1440 + 4 * 60);
            afternoon.push(w.outside_temp(t_pm).value());
            night.push(w.outside_temp(t_am).value());
        }
        let diff = stats::mean(&afternoon).unwrap() - stats::mean(&night).unwrap();
        assert!(diff > 5.0, "afternoon should be much warmer than night, diff {diff}");
    }

    #[test]
    fn hot_climate_is_warmer_than_cold() {
        let mut hot = WeatherModel::new(Climate::hot(), 9);
        let mut cold = WeatherModel::new(Climate::cold(), 9);
        let hot_mean = stats::mean(
            &hot.trace(14, 60).into_iter().map(|(_, t)| t.value()).collect::<Vec<_>>(),
        )
        .unwrap();
        let cold_mean = stats::mean(
            &cold.trace(14, 60).into_iter().map(|(_, t)| t.value()).collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(hot_mean > cold_mean + 10.0);
    }

    #[test]
    fn trace_has_expected_length_and_ordering() {
        let mut w = WeatherModel::new(Climate::temperate(), 2);
        let trace = w.trace(2, 30);
        assert_eq!(trace.len(), 2 * 48);
        assert!(trace.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_trace_panics() {
        let mut w = WeatherModel::new(Climate::temperate(), 2);
        let _ = w.trace(1, 0);
    }
}
