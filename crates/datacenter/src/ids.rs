//! Identifier newtypes for physical entities.
//!
//! Every physical entity in the layout — aisle, row, rack, server, GPU — is referred to by a
//! compact index newtype so the rest of the workspace cannot accidentally index a row vector
//! with a server id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a raw index.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The raw index, usable to index per-entity vectors.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}-{}", $prefix, self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a cold aisle (two rows sharing AHUs).
    AisleId,
    "aisle"
);
id_type!(
    /// Identifies a row of racks.
    RowId,
    "row"
);
id_type!(
    /// Identifies a rack within the datacenter (global index).
    RackId,
    "rack"
);
id_type!(
    /// Identifies a GPU server (global index).
    ServerId,
    "server"
);
id_type!(
    /// Identifies a UPS in the power hierarchy.
    UpsId,
    "ups"
);
id_type!(
    /// Identifies a PDU pair in the power hierarchy.
    PduId,
    "pdu"
);

/// Identifies a single GPU: the server it lives in plus its slot index (0–7 in a DGX).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GpuId {
    /// The hosting server.
    pub server: ServerId,
    /// GPU slot within the server.
    pub slot: usize,
}

impl GpuId {
    /// Creates a GPU id from a server and a slot index.
    #[must_use]
    pub const fn new(server: ServerId, slot: usize) -> Self {
        Self { server, slot }
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/gpu-{}", self.server, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_display() {
        let s = ServerId::new(42);
        assert_eq!(s.index(), 42);
        assert_eq!(usize::from(s), 42);
        assert_eq!(ServerId::from(42), s);
        assert_eq!(s.to_string(), "server-42");
        assert_eq!(RowId::new(3).to_string(), "row-3");
        assert_eq!(AisleId::new(1).to_string(), "aisle-1");
        assert_eq!(RackId::new(9).to_string(), "rack-9");
        assert_eq!(UpsId::new(0).to_string(), "ups-0");
        assert_eq!(PduId::new(2).to_string(), "pdu-2");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ServerId> = [2, 0, 1].into_iter().map(ServerId::new).collect();
        let ordered: Vec<usize> = set.into_iter().map(ServerId::index).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }

    #[test]
    fn gpu_id_display_and_equality() {
        let g = GpuId::new(ServerId::new(7), 3);
        assert_eq!(g.to_string(), "server-7/gpu-3");
        assert_eq!(g, GpuId { server: ServerId::new(7), slot: 3 });
        assert_ne!(g, GpuId::new(ServerId::new(7), 4));
    }
}
