//! Server power as a function of GPU load.
//!
//! The paper fits a polynomial regression `f_power(Load_GPU)` per server that accounts for
//! the GPUs themselves plus the load-dependent draw of fans and other components (§2.2).
//! We model the total server power as
//!
//! ```text
//! P_server = P_idle + (P_max − P_idle) · (w1 · load + w2 · load²)    with w1 + w2 = 1
//! ```
//!
//! which is monotone, convex-ish at high load (fan power grows super-linearly) and hits the
//! idle and TDP endpoints exactly. Per-GPU power is attributed proportionally to each GPU's
//! utilization on top of an even share of the non-GPU overhead.

use crate::topology::ServerSpec;
use serde::{Deserialize, Serialize};
use simkit::units::{Kilowatts, Watts};

/// Polynomial server power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    /// Weight of the linear term (the quadratic term gets `1 - linear_weight`).
    pub linear_weight: f64,
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        Self { linear_weight: 0.8 }
    }
}

/// The hoisted constants of the polynomial server power curve for one spec: the total
/// power at a mean load is `idle + span · (w1 · load + w2 · load²)`.
///
/// [`ServerPowerModel::server_power`] and the engine's once-per-row hoisting on
/// homogeneous rows both evaluate the curve through [`Self::at_load`], so results are
/// bit-identical whichever path computed them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerTerms {
    /// Weight of the linear term.
    pub w1: f64,
    /// Weight of the quadratic term (`1 - w1`).
    pub w2: f64,
    /// Idle power of the server.
    pub idle: Kilowatts,
    /// `max_power - idle_power`.
    pub span: Kilowatts,
}

impl ServerPowerTerms {
    /// Total server power at a normalized GPU load in `[0, 1]`.
    #[inline]
    #[must_use]
    pub fn at_load(&self, load: f64) -> Kilowatts {
        let load = load.clamp(0.0, 1.0);
        let dynamic = self.w1 * load + self.w2 * load * load;
        self.idle + self.span * dynamic
    }
}

impl ServerPowerModel {
    /// The hoisted constants of the server power curve for one spec.
    #[inline]
    #[must_use]
    pub fn server_power_terms(&self, spec: &ServerSpec) -> ServerPowerTerms {
        let w1 = self.linear_weight.clamp(0.0, 1.0);
        ServerPowerTerms {
            w1,
            w2: 1.0 - w1,
            idle: spec.idle_power,
            span: spec.max_power - spec.idle_power,
        }
    }

    /// Total server power at a normalized GPU load in `[0, 1]` (mean across the GPUs).
    #[inline]
    #[must_use]
    pub fn server_power(&self, spec: &ServerSpec, load: f64) -> Kilowatts {
        self.server_power_terms(spec).at_load(load)
    }

    /// The `(static floor, dynamic coefficient)` of the per-GPU power formula in watts: one
    /// GPU draws `static + dynamic · clamp(u) · clamp(f)³`. Single source of the formula's
    /// constants for [`Self::gpu_power`] and the engine's fused per-row pass.
    #[inline]
    #[must_use]
    pub fn gpu_power_terms(&self, spec: &ServerSpec) -> (f64, f64) {
        let max = spec.gpu_max_power.to_watts().value();
        (0.15 * max, 0.85 * max)
    }

    /// Power drawn by a single GPU running at the given utilization and frequency scale.
    ///
    /// `frequency_scale` in `(0, 1]` models DVFS: power scales roughly with `f³` for the
    /// dynamic part (voltage tracks frequency) on top of a static floor.
    #[inline]
    #[must_use]
    pub fn gpu_power(&self, spec: &ServerSpec, utilization: f64, frequency_scale: f64) -> Watts {
        let (static_power, dynamic_coeff) = self.gpu_power_terms(spec);
        let utilization = utilization.clamp(0.0, 1.0);
        let f = frequency_scale.clamp(0.1, 1.0);
        let f3 = (f * f) * f;
        Watts::new(static_power + dynamic_coeff * utilization * f3)
    }

    /// Splits a server's total power into per-GPU draws plus the shared overhead, given each
    /// GPU's utilization and frequency scale.
    ///
    /// Returns `(per_gpu_power, overhead_power)` where the overhead covers fans, CPUs, memory
    /// and storage. The sum of the parts equals [`Self::server_power`] evaluated at the mean
    /// utilization, so aggregation at row level is consistent whichever representation is
    /// used.
    #[must_use]
    pub fn split_server_power(
        &self,
        spec: &ServerSpec,
        gpu_utilization: &[f64],
        frequency_scale: &[f64],
    ) -> (Vec<Watts>, Watts) {
        let mut per_gpu = vec![Watts::ZERO; gpu_utilization.len()];
        let overhead =
            self.split_server_power_into(spec, gpu_utilization, frequency_scale, &mut per_gpu);
        (per_gpu, overhead)
    }

    /// Allocation-free variant of [`Self::split_server_power`]: writes the per-GPU draws into
    /// `per_gpu` and returns the shared overhead power.
    ///
    /// # Panics
    /// Panics if the three slices do not have equal length.
    #[must_use]
    pub fn split_server_power_into(
        &self,
        spec: &ServerSpec,
        gpu_utilization: &[f64],
        frequency_scale: &[f64],
        per_gpu: &mut [Watts],
    ) -> Watts {
        assert_eq!(
            gpu_utilization.len(),
            frequency_scale.len(),
            "utilization and frequency slices must have equal length"
        );
        assert_eq!(
            gpu_utilization.len(),
            per_gpu.len(),
            "utilization and frequency slices must have equal length"
        );
        // `Self::gpu_power` with the per-spec constants hoisted so the loop vectorizes.
        let (static_power, dynamic_coeff) = self.gpu_power_terms(spec);
        let mut gpu_sum = 0.0;
        let mut load_sum = 0.0;
        for ((out, &u), &f) in per_gpu.iter_mut().zip(gpu_utilization).zip(frequency_scale) {
            let utilization = u.clamp(0.0, 1.0);
            let frequency = f.clamp(0.1, 1.0);
            let f3 = (frequency * frequency) * frequency;
            let power = static_power + dynamic_coeff * utilization * f3;
            gpu_sum += power;
            load_sum += u;
            *out = Watts::new(power);
        }
        let mean_load = if gpu_utilization.is_empty() {
            0.0
        } else {
            load_sum / gpu_utilization.len() as f64
        };
        let total = self.server_power(spec, mean_load).to_watts();
        Watts::new((total.value() - gpu_sum).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ServerSpec;

    #[test]
    fn endpoints_match_spec() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        assert_eq!(model.server_power(&spec, 0.0), spec.idle_power);
        assert_eq!(model.server_power(&spec, 1.0), spec.max_power);
        // Clamping outside [0, 1].
        assert_eq!(model.server_power(&spec, -0.5), spec.idle_power);
        assert_eq!(model.server_power(&spec, 1.5), spec.max_power);
    }

    #[test]
    fn power_is_monotone_in_load() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_h100();
        let mut last = 0.0;
        for i in 0..=20 {
            let p = model.server_power(&spec, f64::from(i) / 20.0).value();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn idle_power_is_a_significant_fraction() {
        // §2.2: "Even when idle, servers consume significant power".
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let idle = model.server_power(&spec, 0.0).value();
        let max = model.server_power(&spec, 1.0).value();
        assert!(idle / max > 0.15, "idle fraction {}", idle / max);
    }

    #[test]
    fn gpu_power_scales_with_frequency_cubed() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let full = model.gpu_power(&spec, 1.0, 1.0).value();
        let half_freq = model.gpu_power(&spec, 1.0, 0.5).value();
        let static_part = 0.15 * spec.gpu_max_power.to_watts().value();
        let expected = static_part + (full - static_part) * 0.125;
        assert!((half_freq - expected).abs() < 1e-9);
        assert!(half_freq < full);
    }

    #[test]
    fn gpu_power_at_full_load_full_freq_equals_gpu_tdp() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let p = model.gpu_power(&spec, 1.0, 1.0);
        assert!((p.value() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn split_conserves_total_power() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let utils = vec![0.9, 0.8, 0.0, 0.5, 1.0, 0.2, 0.6, 0.7];
        let freqs = vec![1.0; 8];
        let (per_gpu, overhead) = model.split_server_power(&spec, &utils, &freqs);
        assert_eq!(per_gpu.len(), 8);
        let mean_load: f64 = utils.iter().sum::<f64>() / 8.0;
        let total_expected = model.server_power(&spec, mean_load).to_watts().value();
        let total_actual: f64 =
            per_gpu.iter().map(|p| p.value()).sum::<f64>() + overhead.value();
        assert!((total_actual - total_expected).abs() < 1e-6);
        assert!(overhead.value() > 0.0, "non-GPU components draw power");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn split_rejects_mismatched_slices() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let _ = model.split_server_power(&spec, &[0.5, 0.5], &[1.0]);
    }

    #[test]
    fn split_handles_empty_server() {
        let model = ServerPowerModel::default();
        let spec = ServerSpec::dgx_a100();
        let (per_gpu, overhead) = model.split_server_power(&spec, &[], &[]);
        assert!(per_gpu.is_empty());
        assert_eq!(overhead, spec.idle_power.to_watts());
    }
}
