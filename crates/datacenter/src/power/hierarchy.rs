//! The three-level power delivery hierarchy and power capping (Eq. 4).
//!
//! Power flows ATS → UPS → PDU pairs → rows of racks → servers. Each level has a provisioned
//! budget; if the aggregate draw of a level exceeds its budget, the servers below that level
//! are power-capped to bring the draw back within limits (§2.2). Redundancy failures (e.g. a
//! UPS in a 4N/3 group failing) reduce the effective budget of the affected levels, which is
//! how §5.4's "75 % power capacity" emergency is modelled.
//!
//! All per-step shapes are dense and ordinal-indexed ([`OrdinalMap`] per level): the
//! assessment writes into reusable grids instead of rebuilding tree maps, so the steady-state
//! control loop performs no per-step map allocation.

use crate::ids::{PduId, RowId, ServerId, UpsId};
use crate::index::{is_contiguous_run, OrdinalMap};
use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::units::Kilowatts;

/// A per-server power cap produced when some level of the hierarchy is over budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappingDirective {
    /// The capped server.
    pub server: ServerId,
    /// Fraction of its current power the server is allowed to keep (`0 < fraction <= 1`).
    pub power_fraction: f64,
}

/// Utilization of one level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelUtilization {
    /// Aggregate draw of the level.
    pub draw: Kilowatts,
    /// Effective budget (provisioned budget × capacity fraction after failures).
    pub budget: Kilowatts,
    /// `draw / budget`.
    pub utilization: f64,
}

impl LevelUtilization {
    /// A zero-draw, zero-budget placeholder (used to pre-size reusable outcomes).
    #[must_use]
    pub fn empty() -> Self {
        Self { draw: Kilowatts::ZERO, budget: Kilowatts::ZERO, utilization: 0.0 }
    }

    fn new(draw: Kilowatts, budget: Kilowatts) -> Self {
        let utilization = if budget.value() > 0.0 {
            draw / budget
        } else {
            f64::INFINITY
        };
        Self { draw, budget, utilization }
    }

    /// Returns `true` if the level draws more than its budget.
    #[must_use]
    pub fn is_over_budget(&self) -> bool {
        self.utilization > 1.0
    }

    /// Remaining headroom (zero when over budget).
    #[must_use]
    pub fn headroom(&self) -> Kilowatts {
        Kilowatts::new((self.budget.value() - self.draw.value()).max(0.0))
    }
}

/// The result of assessing the hierarchy for one step: one dense utilization grid per
/// hierarchy level, each indexed by the level's ordinal ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerAssessment {
    /// Per-row utilization, indexed by [`RowId`].
    pub rows: OrdinalMap<RowId, LevelUtilization>,
    /// Per-PDU utilization, indexed by [`PduId`].
    pub pdus: OrdinalMap<PduId, LevelUtilization>,
    /// Per-UPS utilization, indexed by [`UpsId`].
    pub upses: OrdinalMap<UpsId, LevelUtilization>,
    /// Datacenter-level utilization.
    pub datacenter: LevelUtilization,
    /// Capping directives for servers under over-budget levels (empty when all levels fit).
    pub capping: Vec<CappingDirective>,
}

impl Default for PowerAssessment {
    fn default() -> Self {
        Self::empty()
    }
}

impl PowerAssessment {
    /// An empty assessment (used to pre-size reusable outcomes; [`PowerHierarchy::assess_into`]
    /// resizes the grids to the hierarchy it assesses).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            rows: OrdinalMap::new(),
            pdus: OrdinalMap::new(),
            upses: OrdinalMap::new(),
            datacenter: LevelUtilization::empty(),
            capping: Vec::new(),
        }
    }

    /// Returns `true` if any level is over budget.
    #[must_use]
    pub fn any_over_budget(&self) -> bool {
        !self.capping.is_empty()
    }

    /// The utilization of one row.
    ///
    /// # Panics
    /// Panics if the row ordinal is out of range.
    #[must_use]
    pub fn row(&self, row: RowId) -> &LevelUtilization {
        &self.rows[row]
    }

    /// The peak row utilization (0 if there are no rows).
    #[must_use]
    pub fn peak_row_utilization(&self) -> f64 {
        self.rows
            .values()
            .map(|u| u.utilization)
            .fold(0.0, f64::max)
    }

    /// The peak row draw in kilowatts.
    #[must_use]
    pub fn peak_row_power(&self) -> Kilowatts {
        self.rows
            .values()
            .map(|u| u.draw)
            .fold(Kilowatts::ZERO, Kilowatts::max)
    }

    /// Per-row power draw, in row order (allocation-free compatibility accessor).
    pub fn row_power(&self) -> impl ExactSizeIterator<Item = (RowId, Kilowatts)> + '_ {
        self.rows.iter().map(|(id, util)| (id, util.draw))
    }

    /// The rows that are over budget, in row order.
    pub fn over_budget_rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows
            .iter()
            .filter(|(_, u)| u.is_over_budget())
            .map(|(id, _)| id)
    }

    /// Aggregate unused row budget (over-budget rows contribute zero). This is the
    /// power-slack signal a fleet layer steers arrivals by.
    #[must_use]
    pub fn total_row_headroom(&self) -> Kilowatts {
        self.rows
            .values()
            .map(LevelUtilization::headroom)
            .fold(Kilowatts::ZERO, |a, b| a + b)
    }

    /// The worst utilization across every level of the hierarchy (rows, PDU pairs, UPSes
    /// and the datacenter feed). `> 1.0` means some level is capping.
    #[must_use]
    pub fn worst_level_utilization(&self) -> f64 {
        self.rows
            .values()
            .chain(self.pdus.values())
            .chain(self.upses.values())
            .map(|u| u.utilization)
            .fold(self.datacenter.utilization, f64::max)
    }
}

/// Capacity scaling applied to hierarchy levels, typically due to failures.
///
/// Stored as dense per-ordinal fraction grids; an empty grid (or an out-of-range ordinal)
/// reads as full capacity, so `healthy()` needs no layout knowledge and allocates nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityState {
    /// Fraction of each UPS budget that is available (missing ordinals read as 1.0).
    ups_capacity: OrdinalMap<UpsId, f64>,
    /// Fraction of each row budget that is available (missing ordinals read as 1.0).
    row_capacity: OrdinalMap<RowId, f64>,
    /// Fraction of the datacenter budget that is available.
    pub datacenter_capacity: f64,
}

impl Default for CapacityState {
    fn default() -> Self {
        Self {
            ups_capacity: OrdinalMap::new(),
            row_capacity: OrdinalMap::new(),
            datacenter_capacity: 1.0,
        }
    }
}

impl CapacityState {
    /// Full capacity everywhere.
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Resets to full capacity, keeping the grid allocations for reuse across steps.
    pub fn reset(&mut self) {
        self.ups_capacity.fill(1.0);
        self.row_capacity.fill(1.0);
        self.datacenter_capacity = 1.0;
    }

    /// Sets the available fraction of one UPS budget, growing the grid as needed.
    pub fn set_ups_capacity(&mut self, ups: UpsId, fraction: f64) {
        if self.ups_capacity.len() <= ups.index() {
            self.ups_capacity.resize(ups.index() + 1, 1.0);
        }
        self.ups_capacity[ups] = fraction;
    }

    /// Sets the available fraction of one row budget, growing the grid as needed.
    pub fn set_row_capacity(&mut self, row: RowId, fraction: f64) {
        if self.row_capacity.len() <= row.index() {
            self.row_capacity.resize(row.index() + 1, 1.0);
        }
        self.row_capacity[row] = fraction;
    }

    /// The available fraction of a UPS budget (1.0 when never reduced).
    #[must_use]
    pub fn ups(&self, id: UpsId) -> f64 {
        self.ups_capacity.get(id).copied().unwrap_or(1.0)
    }

    /// The available fraction of a row budget (1.0 when never reduced).
    #[must_use]
    pub fn row(&self, id: RowId) -> f64 {
        self.row_capacity.get(id).copied().unwrap_or(1.0)
    }

    /// Clamps every row and UPS budget to `fraction` of provisioned capacity — an
    /// operator power-cap directive rather than a failure. The cap *multiplies* any
    /// failure-derived reductions already present, so a UPS failure under a cap is
    /// strictly worse than either alone. The grids grow to the layout's counts on first
    /// use and are then reused across steps ([`Self::reset`] keeps the allocations), so
    /// the steady-state step loop stays allocation-free.
    pub fn apply_power_cap(&mut self, fraction: f64, ups_count: usize, row_count: usize) {
        if self.ups_capacity.len() < ups_count {
            self.ups_capacity.resize(ups_count, 1.0);
        }
        if self.row_capacity.len() < row_count {
            self.row_capacity.resize(row_count, 1.0);
        }
        for slot in self.ups_capacity.values_mut() {
            *slot *= fraction;
        }
        for slot in self.row_capacity.values_mut() {
            *slot *= fraction;
        }
    }

    /// Returns `true` if every level is at full capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        (self.datacenter_capacity - 1.0).abs() < f64::EPSILON
            && self.ups_capacity.values().all(|&f| (f - 1.0).abs() < f64::EPSILON)
            && self.row_capacity.values().all(|&f| (f - 1.0).abs() < f64::EPSILON)
    }
}

/// The power hierarchy of a datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerHierarchy {
    layout_rows: Vec<(RowId, Vec<ServerId>, Kilowatts, PduId)>,
    layout_pdus: Vec<(PduId, Vec<RowId>, Kilowatts, UpsId)>,
    layout_upses: Vec<(UpsId, Vec<PduId>, Kilowatts)>,
    datacenter_budget: Kilowatts,
    /// Per-row `[start, end)` server-index spans, populated only when every row's member
    /// list is an ascending contiguous index run (the layout builder's invariant). Row
    /// draws then reduce over dense `server_power` slices — same elements in the same
    /// order, so sums are bit-identical to the id-list walk — instead of gathering
    /// through the id vectors. Empty when any row is irregular (the general walk is the
    /// fallback).
    row_span_start: Vec<u32>,
    row_span_end: Vec<u32>,
}


impl PowerHierarchy {
    /// Builds the hierarchy view from a layout.
    #[must_use]
    pub fn from_layout(layout: &Layout) -> Self {
        let contiguous = layout.rows().iter().all(|r| is_contiguous_run(&r.servers));
        let (row_span_start, row_span_end) = if contiguous {
            layout
                .rows()
                .iter()
                .map(|r| {
                    let start = r.servers.first().map_or(0, |s| s.index() as u32);
                    (start, start + r.servers.len() as u32)
                })
                .unzip()
        } else {
            (Vec::new(), Vec::new())
        };
        let hierarchy = Self {
            layout_rows: layout
                .rows()
                .iter()
                .map(|r| (r.id, r.servers.clone(), r.power_budget, r.pdu))
                .collect(),
            layout_pdus: layout
                .pdus()
                .iter()
                .map(|p| (p.id, p.rows.clone(), p.power_budget, p.ups))
                .collect(),
            layout_upses: layout
                .upses()
                .iter()
                .map(|u| (u.id, u.pdus.clone(), u.power_budget))
                .collect(),
            datacenter_budget: layout.datacenter_power_budget(),
            row_span_start,
            row_span_end,
        };
        // Ordinal indexing throughout (`row_budget`, `assess_into`) relies on each level
        // being stored in id order; pin the invariant here, once, at construction.
        debug_assert!(
            hierarchy.layout_rows.iter().enumerate().all(|(i, r)| r.0.index() == i),
            "rows stored in id order"
        );
        debug_assert!(
            hierarchy.layout_pdus.iter().enumerate().all(|(i, p)| p.0.index() == i),
            "pdus stored in id order"
        );
        debug_assert!(
            hierarchy.layout_upses.iter().enumerate().all(|(i, u)| u.0.index() == i),
            "upses stored in id order"
        );
        hierarchy
    }

    /// Number of rows in the hierarchy.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.layout_rows.len()
    }

    /// Provisioned budget of a row (rows are stored in ordinal order, so this is O(1)).
    ///
    /// # Panics
    /// Panics if the row id is unknown.
    #[must_use]
    pub fn row_budget(&self, row: RowId) -> Kilowatts {
        assert!(row.index() < self.layout_rows.len(), "unknown row id");
        self.layout_rows[row.index()].2
    }

    /// Assesses every level of the hierarchy for the given per-server power draws and
    /// produces capping directives for servers under over-budget levels.
    ///
    /// The cap applied to a server is the *most restrictive* fraction across all of the
    /// levels above it (row, PDU, UPS, datacenter).
    ///
    /// # Panics
    /// Panics if `server_power` has fewer entries than the layout has servers.
    #[must_use]
    pub fn assess(
        &self,
        server_power: &[Kilowatts],
        capacity: &CapacityState,
    ) -> PowerAssessment {
        let mut assessment = PowerAssessment::empty();
        self.assess_into(
            server_power,
            capacity,
            &mut assessment,
            &mut HierarchyScratch::default(),
        );
        assessment
    }

    /// [`Self::assess`] writing into a reusable assessment and caller-provided scratch,
    /// making the steady-state loop allocation-free. All bookkeeping is index-based: rows,
    /// PDUs and UPSes are stored in id order, so member references resolve by `id.index()`
    /// instead of a linear search, and the per-level grids are written by ordinal.
    ///
    /// # Panics
    /// Panics if `server_power` has fewer entries than the layout has servers.
    pub fn assess_into(
        &self,
        server_power: &[Kilowatts],
        capacity: &CapacityState,
        out: &mut PowerAssessment,
        scratch: &mut HierarchyScratch,
    ) {
        out.rows.resize(self.layout_rows.len(), LevelUtilization::empty());
        out.pdus.resize(self.layout_pdus.len(), LevelUtilization::empty());
        out.upses.resize(self.layout_upses.len(), LevelUtilization::empty());
        out.capping.clear();
        scratch.caps.clear();
        scratch.caps.resize(server_power.len(), 1.0);

        if self.row_span_start.is_empty() && !self.layout_rows.is_empty() {
            for (row_id, servers, budget, _) in &self.layout_rows {
                let draw: Kilowatts =
                    servers.iter().map(|s| server_power[s.index()]).sum();
                out.rows[*row_id] =
                    LevelUtilization::new(draw, *budget * capacity.row(*row_id));
            }
        } else {
            // Contiguous fast path: one dense slice reduction per row (same elements,
            // same order, bit-identical sums).
            for (i, (row_id, _, budget, _)) in self.layout_rows.iter().enumerate() {
                let span =
                    self.row_span_start[i] as usize..self.row_span_end[i] as usize;
                let draw: Kilowatts = server_power[span].iter().copied().sum();
                out.rows[*row_id] =
                    LevelUtilization::new(draw, *budget * capacity.row(*row_id));
            }
        }

        for (pdu_id, member_rows, budget, _) in &self.layout_pdus {
            let draw: Kilowatts =
                member_rows.iter().map(|r| out.rows[*r].draw).sum();
            out.pdus[*pdu_id] = LevelUtilization::new(draw, *budget);
        }

        let mut dc_draw = Kilowatts::ZERO;
        for (ups_id, member_pdus, budget) in &self.layout_upses {
            let draw: Kilowatts =
                member_pdus.iter().map(|p| out.pdus[*p].draw).sum();
            dc_draw += draw;
            out.upses[*ups_id] =
                LevelUtilization::new(draw, *budget * capacity.ups(*ups_id));
        }

        out.datacenter = LevelUtilization::new(
            dc_draw,
            self.datacenter_budget * capacity.datacenter_capacity,
        );

        // Compute the most restrictive cap per server in the dense scratch vector.
        let caps = &mut scratch.caps;
        let mut apply_cap = |servers: &[ServerId], fraction: f64| {
            for &s in servers {
                let entry = &mut caps[s.index()];
                *entry = entry.min(fraction);
            }
        };

        for (row_id, servers, _, _) in &self.layout_rows {
            let util = &out.rows[*row_id];
            if util.is_over_budget() {
                apply_cap(servers, 1.0 / util.utilization);
            }
        }
        for (pdu_id, member_rows, _, _) in &self.layout_pdus {
            let util = &out.pdus[*pdu_id];
            if util.is_over_budget() {
                let fraction = 1.0 / util.utilization;
                for row in member_rows {
                    apply_cap(&self.layout_rows[row.index()].1, fraction);
                }
            }
        }
        for (ups_id, member_pdus, _) in &self.layout_upses {
            let util = &out.upses[*ups_id];
            if util.is_over_budget() {
                let fraction = 1.0 / util.utilization;
                for pdu in member_pdus {
                    for row in &self.layout_pdus[pdu.index()].1 {
                        apply_cap(&self.layout_rows[row.index()].1, fraction);
                    }
                }
            }
        }
        if out.datacenter.is_over_budget() {
            let fraction = 1.0 / out.datacenter.utilization;
            for (_, servers, _, _) in &self.layout_rows {
                apply_cap(servers, fraction);
            }
        }

        out.capping.extend(
            scratch
                .caps
                .iter()
                .enumerate()
                .filter(|(_, &fraction)| fraction < 1.0)
                .map(|(index, &power_fraction)| CappingDirective {
                    server: ServerId::new(index),
                    power_fraction,
                }),
        );
    }
}

/// Reusable dense intermediates for [`PowerHierarchy::assess_into`].
#[derive(Debug, Default, Clone)]
pub struct HierarchyScratch {
    caps: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LayoutConfig;

    fn hierarchy_and_layout() -> (PowerHierarchy, crate::topology::Layout) {
        let layout = LayoutConfig::small_test_cluster().build();
        (PowerHierarchy::from_layout(&layout), layout)
    }

    #[test]
    fn idle_cluster_is_within_all_budgets() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let power = vec![Kilowatts::new(1.6); layout.server_count()];
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(!assessment.any_over_budget());
        assert!(assessment.capping.is_empty());
        assert!(assessment.peak_row_utilization() < 0.5);
        assert_eq!(assessment.rows.len(), 2);
        assert!(assessment.datacenter.headroom().value() > 0.0);
    }

    #[test]
    fn row_draw_aggregates_member_servers() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let mut power = vec![Kilowatts::new(2.0); layout.server_count()];
        power[0] = Kilowatts::new(5.0);
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        let row0 = layout.servers()[0].row;
        let expected: f64 = layout.rows()[row0.index()]
            .servers
            .iter()
            .map(|s| power[s.index()].value())
            .sum();
        assert!((assessment.rows[row0].draw.value() - expected).abs() < 1e-9);
        assert!((assessment.peak_row_power().value() - expected).abs() < 1e-9);
        let per_row: Vec<f64> = assessment.row_power().map(|(_, kw)| kw.value()).collect();
        assert!((per_row[row0.index()] - expected).abs() < 1e-9);
    }

    #[test]
    fn fleet_signal_helpers_aggregate_headroom_and_worst_level() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let power = vec![Kilowatts::new(2.0); layout.server_count()];
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        // Total row headroom = Σ per-row headroom, and matches the per-row accessors.
        let expected: f64 =
            assessment.rows.values().map(|u| u.headroom().value()).sum();
        assert!((assessment.total_row_headroom().value() - expected).abs() < 1e-9);
        assert!(expected > 0.0);
        // Worst level is at least the peak row utilization and under budget here.
        let worst = assessment.worst_level_utilization();
        assert!(worst >= assessment.peak_row_utilization());
        assert!(worst < 1.0);
        // An over-budget row drives both: zero headroom contribution, worst > 1.
        let hot = vec![Kilowatts::new(6.5); layout.server_count()];
        let stressed_layout = {
            let mut cfg = LayoutConfig::small_test_cluster();
            cfg.row_power_provisioning = 0.5;
            cfg.build()
        };
        let stressed = PowerHierarchy::from_layout(&stressed_layout)
            .assess(&hot, &CapacityState::healthy());
        assert!(stressed.worst_level_utilization() > 1.0);
        assert_eq!(stressed.total_row_headroom().value(), 0.0);
    }

    #[test]
    fn over_budget_row_caps_only_its_servers() {
        let (hierarchy, layout) = hierarchy_and_layout();
        // Row budget is 4 × 6.5 = 26 kW; drive row 0 to 32 kW and keep row 1 idle.
        let mut power = vec![Kilowatts::new(1.6); layout.server_count()];
        for &s in &layout.rows()[0].servers {
            power[s.index()] = Kilowatts::new(8.0);
        }
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(assessment.any_over_budget());
        assert_eq!(
            assessment.over_budget_rows().collect::<Vec<_>>(),
            vec![RowId::new(0)]
        );
        let capped: Vec<ServerId> = assessment.capping.iter().map(|c| c.server).collect();
        for &s in &layout.rows()[0].servers {
            assert!(capped.contains(&s), "row-0 servers must be capped");
        }
        for &s in &layout.rows()[1].servers {
            assert!(!capped.contains(&s), "row-1 servers must not be capped");
        }
        // The cap fraction restores the row to its budget.
        let fraction = assessment.capping[0].power_fraction;
        let row_util = assessment.rows[RowId::new(0)].utilization;
        assert!((fraction - 1.0 / row_util).abs() < 1e-9);
        assert!(fraction < 1.0 && fraction > 0.0);
    }

    #[test]
    fn ups_failure_reduces_capacity_and_triggers_capping() {
        let (hierarchy, layout) = hierarchy_and_layout();
        // Load everything at 80 % of TDP: fine at full capacity, over budget at 60 %.
        let power = vec![Kilowatts::new(5.2); layout.server_count()];
        let healthy = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(!healthy.any_over_budget());
        let mut degraded_state = CapacityState::healthy();
        degraded_state.set_ups_capacity(UpsId::new(0), 0.6);
        assert!(!degraded_state.is_full());
        let degraded = hierarchy.assess(&power, &degraded_state);
        assert!(degraded.any_over_budget());
        // All servers under that UPS (which covers the whole small cluster) are capped.
        assert_eq!(degraded.capping.len(), layout.server_count());
    }

    #[test]
    fn most_restrictive_cap_wins() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let power = vec![Kilowatts::new(6.0); layout.server_count()];
        let mut state = CapacityState::healthy();
        // Row 0 capacity cut hard, datacenter capacity cut mildly.
        state.set_row_capacity(RowId::new(0), 0.5);
        state.datacenter_capacity = 0.9;
        let assessment = hierarchy.assess(&power, &state);
        let row0_cap = assessment
            .capping
            .iter()
            .find(|c| c.server == layout.rows()[0].servers[0])
            .expect("row-0 server capped");
        let row1_cap = assessment
            .capping
            .iter()
            .find(|c| c.server == layout.rows()[1].servers[0])
            .expect("row-1 server capped by datacenter level");
        assert!(row0_cap.power_fraction < row1_cap.power_fraction);
    }

    #[test]
    fn reused_assessment_matches_fresh_one() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let mut reused = PowerAssessment::empty();
        let mut scratch = HierarchyScratch::default();
        // Alternate between an over-budget and an idle step: the reused grids must track
        // the fresh result exactly, including shrinking the capping list back to empty.
        let hot = vec![Kilowatts::new(8.0); layout.server_count()];
        let idle = vec![Kilowatts::new(1.6); layout.server_count()];
        for power in [&hot, &idle, &hot, &idle] {
            hierarchy.assess_into(power, &CapacityState::healthy(), &mut reused, &mut scratch);
            let fresh = hierarchy.assess(power, &CapacityState::healthy());
            assert_eq!(reused, fresh);
        }
        assert!(reused.capping.is_empty());
    }

    #[test]
    fn capacity_state_reset_restores_full_capacity() {
        let mut state = CapacityState::healthy();
        state.set_ups_capacity(UpsId::new(1), 0.5);
        state.set_row_capacity(RowId::new(0), 0.7);
        state.datacenter_capacity = 0.75;
        assert!((state.ups(UpsId::new(1)) - 0.5).abs() < 1e-12);
        assert!((state.ups(UpsId::new(0)) - 1.0).abs() < 1e-12, "untouched ordinal is full");
        assert!((state.row(RowId::new(0)) - 0.7).abs() < 1e-12);
        state.reset();
        assert!(state.is_full());
        assert!((state.ups(UpsId::new(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_cap_clamps_rows_and_upses_and_composes_with_failures() {
        let (hierarchy, layout) = hierarchy_and_layout();
        // 80 % of TDP: fine at full capacity, over budget once capped to 60 %.
        let power = vec![Kilowatts::new(5.2); layout.server_count()];
        let mut state = CapacityState::healthy();
        state.apply_power_cap(0.6, layout.upses().len(), layout.rows().len());
        assert!(!state.is_full());
        assert!((state.row(RowId::new(0)) - 0.6).abs() < 1e-12);
        assert!((state.ups(UpsId::new(0)) - 0.6).abs() < 1e-12);
        let capped = hierarchy.assess(&power, &state);
        assert!(capped.any_over_budget());
        assert_eq!(capped.capping.len(), layout.server_count());

        // The cap multiplies failure-derived reductions: 0.8 failure × 0.75 cap = 0.6.
        let mut composed = CapacityState::healthy();
        composed.set_ups_capacity(UpsId::new(0), 0.8);
        composed.apply_power_cap(0.75, layout.upses().len(), layout.rows().len());
        assert!((composed.ups(UpsId::new(0)) - 0.6).abs() < 1e-12);
        assert!((composed.row(RowId::new(0)) - 0.75).abs() < 1e-12);

        // A 1.0 cap leaves the state bit-identical (reset grids read as full).
        let mut neutral = CapacityState::healthy();
        neutral.apply_power_cap(1.0, layout.upses().len(), layout.rows().len());
        assert!(neutral.is_full());
        assert_eq!(hierarchy.assess(&power, &neutral), hierarchy.assess(&power, &CapacityState::healthy()));
    }

    #[test]
    fn row_budget_lookup() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let budget = hierarchy.row_budget(RowId::new(0));
        assert_eq!(budget, layout.rows()[0].power_budget);
        assert_eq!(hierarchy.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown row id")]
    fn unknown_row_budget_panics() {
        let (hierarchy, _) = hierarchy_and_layout();
        let _ = hierarchy.row_budget(RowId::new(99));
    }
}
