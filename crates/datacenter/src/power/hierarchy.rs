//! The three-level power delivery hierarchy and power capping (Eq. 4).
//!
//! Power flows ATS → UPS → PDU pairs → rows of racks → servers. Each level has a provisioned
//! budget; if the aggregate draw of a level exceeds its budget, the servers below that level
//! are power-capped to bring the draw back within limits (§2.2). Redundancy failures (e.g. a
//! UPS in a 4N/3 group failing) reduce the effective budget of the affected levels, which is
//! how §5.4's "75 % power capacity" emergency is modelled.

use crate::ids::{PduId, RowId, ServerId, UpsId};
use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::units::Kilowatts;
use std::collections::BTreeMap;

/// A per-server power cap produced when some level of the hierarchy is over budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappingDirective {
    /// The capped server.
    pub server: ServerId,
    /// Fraction of its current power the server is allowed to keep (`0 < fraction <= 1`).
    pub power_fraction: f64,
}

/// Utilization of one level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelUtilization {
    /// Aggregate draw of the level.
    pub draw: Kilowatts,
    /// Effective budget (provisioned budget × capacity fraction after failures).
    pub budget: Kilowatts,
    /// `draw / budget`.
    pub utilization: f64,
}

impl LevelUtilization {
    /// A zero-draw, zero-budget placeholder (used to pre-size reusable outcomes).
    #[must_use]
    pub fn empty() -> Self {
        Self { draw: Kilowatts::ZERO, budget: Kilowatts::ZERO, utilization: 0.0 }
    }

    fn new(draw: Kilowatts, budget: Kilowatts) -> Self {
        let utilization = if budget.value() > 0.0 {
            draw / budget
        } else {
            f64::INFINITY
        };
        Self { draw, budget, utilization }
    }

    /// Returns `true` if the level draws more than its budget.
    #[must_use]
    pub fn is_over_budget(&self) -> bool {
        self.utilization > 1.0
    }

    /// Remaining headroom (zero when over budget).
    #[must_use]
    pub fn headroom(&self) -> Kilowatts {
        Kilowatts::new((self.budget.value() - self.draw.value()).max(0.0))
    }
}

/// The result of assessing the hierarchy for one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerAssessment {
    /// Per-row utilization.
    pub rows: BTreeMap<RowId, LevelUtilization>,
    /// Per-PDU utilization.
    pub pdus: BTreeMap<PduId, LevelUtilization>,
    /// Per-UPS utilization.
    pub upses: BTreeMap<UpsId, LevelUtilization>,
    /// Datacenter-level utilization.
    pub datacenter: LevelUtilization,
    /// Capping directives for servers under over-budget levels (empty when all levels fit).
    pub capping: Vec<CappingDirective>,
}

impl PowerAssessment {
    /// Returns `true` if any level is over budget.
    #[must_use]
    pub fn any_over_budget(&self) -> bool {
        !self.capping.is_empty()
    }

    /// The peak row utilization (0 if there are no rows).
    #[must_use]
    pub fn peak_row_utilization(&self) -> f64 {
        self.rows
            .values()
            .map(|u| u.utilization)
            .fold(0.0, f64::max)
    }

    /// The peak row draw in kilowatts.
    #[must_use]
    pub fn peak_row_power(&self) -> Kilowatts {
        self.rows
            .values()
            .map(|u| u.draw)
            .fold(Kilowatts::ZERO, Kilowatts::max)
    }

    /// The rows that are over budget.
    #[must_use]
    pub fn over_budget_rows(&self) -> Vec<RowId> {
        self.rows
            .iter()
            .filter(|(_, u)| u.is_over_budget())
            .map(|(&id, _)| id)
            .collect()
    }
}

/// Capacity scaling applied to hierarchy levels, typically due to failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityState {
    /// Fraction of each UPS budget that is available (default 1.0).
    pub ups_capacity: BTreeMap<UpsId, f64>,
    /// Fraction of each row budget that is available (default 1.0).
    pub row_capacity: BTreeMap<RowId, f64>,
    /// Fraction of the datacenter budget that is available.
    pub datacenter_capacity: f64,
}

impl Default for CapacityState {
    fn default() -> Self {
        Self {
            ups_capacity: BTreeMap::new(),
            row_capacity: BTreeMap::new(),
            datacenter_capacity: 1.0,
        }
    }
}

impl CapacityState {
    /// Full capacity everywhere.
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    fn ups(&self, id: UpsId) -> f64 {
        *self.ups_capacity.get(&id).unwrap_or(&1.0)
    }

    fn row(&self, id: RowId) -> f64 {
        *self.row_capacity.get(&id).unwrap_or(&1.0)
    }
}

/// The power hierarchy of a datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerHierarchy {
    layout_rows: Vec<(RowId, Vec<ServerId>, Kilowatts, PduId)>,
    layout_pdus: Vec<(PduId, Vec<RowId>, Kilowatts, UpsId)>,
    layout_upses: Vec<(UpsId, Vec<PduId>, Kilowatts)>,
    datacenter_budget: Kilowatts,
}

impl PowerHierarchy {
    /// Builds the hierarchy view from a layout.
    #[must_use]
    pub fn from_layout(layout: &Layout) -> Self {
        Self {
            layout_rows: layout
                .rows()
                .iter()
                .map(|r| (r.id, r.servers.clone(), r.power_budget, r.pdu))
                .collect(),
            layout_pdus: layout
                .pdus()
                .iter()
                .map(|p| (p.id, p.rows.clone(), p.power_budget, p.ups))
                .collect(),
            layout_upses: layout
                .upses()
                .iter()
                .map(|u| (u.id, u.pdus.clone(), u.power_budget))
                .collect(),
            datacenter_budget: layout.datacenter_power_budget(),
        }
    }

    /// Provisioned budget of a row.
    ///
    /// # Panics
    /// Panics if the row id is unknown.
    #[must_use]
    pub fn row_budget(&self, row: RowId) -> Kilowatts {
        self.layout_rows
            .iter()
            .find(|(id, ..)| *id == row)
            .map(|(_, _, budget, _)| *budget)
            .expect("unknown row id")
    }

    /// Assesses every level of the hierarchy for the given per-server power draws and
    /// produces capping directives for servers under over-budget levels.
    ///
    /// The cap applied to a server is the *most restrictive* fraction across all of the
    /// levels above it (row, PDU, UPS, datacenter).
    ///
    /// # Panics
    /// Panics if `server_power` has fewer entries than the layout has servers.
    #[must_use]
    pub fn assess(
        &self,
        server_power: &[Kilowatts],
        capacity: &CapacityState,
    ) -> PowerAssessment {
        self.assess_with_scratch(server_power, capacity, &mut HierarchyScratch::default())
    }

    /// [`Self::assess`] with caller-provided scratch buffers, avoiding per-step allocation
    /// of the dense intermediates. All bookkeeping is index-based: rows, PDUs and UPSes are
    /// stored in id order, so member references resolve by `id.index()` instead of a linear
    /// search.
    ///
    /// # Panics
    /// Panics if `server_power` has fewer entries than the layout has servers.
    #[must_use]
    pub fn assess_with_scratch(
        &self,
        server_power: &[Kilowatts],
        capacity: &CapacityState,
        scratch: &mut HierarchyScratch,
    ) -> PowerAssessment {
        scratch.row_draw.clear();
        scratch.pdu_draw.clear();
        scratch.caps.clear();
        scratch.caps.resize(server_power.len(), 1.0);

        let mut rows = BTreeMap::new();
        for (row_id, servers, budget, _) in &self.layout_rows {
            debug_assert_eq!(row_id.index(), scratch.row_draw.len(), "rows stored in id order");
            let draw: Kilowatts = servers.iter().map(|s| server_power[s.index()]).sum();
            scratch.row_draw.push(draw);
            rows.insert(
                *row_id,
                LevelUtilization::new(draw, *budget * capacity.row(*row_id)),
            );
        }

        let mut pdus = BTreeMap::new();
        for (pdu_id, member_rows, budget, _) in &self.layout_pdus {
            debug_assert_eq!(pdu_id.index(), scratch.pdu_draw.len(), "pdus stored in id order");
            let draw: Kilowatts =
                member_rows.iter().map(|r| scratch.row_draw[r.index()]).sum();
            scratch.pdu_draw.push(draw);
            pdus.insert(*pdu_id, LevelUtilization::new(draw, *budget));
        }

        let mut upses = BTreeMap::new();
        let mut dc_draw = Kilowatts::ZERO;
        for (ups_id, member_pdus, budget) in &self.layout_upses {
            let draw: Kilowatts =
                member_pdus.iter().map(|p| scratch.pdu_draw[p.index()]).sum();
            dc_draw += draw;
            upses.insert(
                *ups_id,
                LevelUtilization::new(draw, *budget * capacity.ups(*ups_id)),
            );
        }

        let datacenter = LevelUtilization::new(
            dc_draw,
            self.datacenter_budget * capacity.datacenter_capacity,
        );

        // Compute the most restrictive cap per server in the dense scratch vector.
        let caps = &mut scratch.caps;
        let mut apply_cap = |servers: &[ServerId], fraction: f64| {
            for &s in servers {
                let entry = &mut caps[s.index()];
                *entry = entry.min(fraction);
            }
        };

        for (row_id, servers, _, _) in &self.layout_rows {
            let util = &rows[row_id];
            if util.is_over_budget() {
                apply_cap(servers, 1.0 / util.utilization);
            }
        }
        for (pdu_id, member_rows, _, _) in &self.layout_pdus {
            let util = &pdus[pdu_id];
            if util.is_over_budget() {
                let fraction = 1.0 / util.utilization;
                for row in member_rows {
                    apply_cap(&self.layout_rows[row.index()].1, fraction);
                }
            }
        }
        for (ups_id, member_pdus, _) in &self.layout_upses {
            let util = &upses[ups_id];
            if util.is_over_budget() {
                let fraction = 1.0 / util.utilization;
                for pdu in member_pdus {
                    for row in &self.layout_pdus[pdu.index()].1 {
                        apply_cap(&self.layout_rows[row.index()].1, fraction);
                    }
                }
            }
        }
        if datacenter.is_over_budget() {
            let fraction = 1.0 / datacenter.utilization;
            for (_, servers, _, _) in &self.layout_rows {
                apply_cap(servers, fraction);
            }
        }

        let capping: Vec<CappingDirective> = scratch
            .caps
            .iter()
            .enumerate()
            .filter(|(_, &fraction)| fraction < 1.0)
            .map(|(index, &power_fraction)| CappingDirective {
                server: ServerId::new(index),
                power_fraction,
            })
            .collect();

        PowerAssessment { rows, pdus, upses, datacenter, capping }
    }
}

/// Reusable dense intermediates for [`PowerHierarchy::assess_with_scratch`].
#[derive(Debug, Default, Clone)]
pub struct HierarchyScratch {
    row_draw: Vec<Kilowatts>,
    pdu_draw: Vec<Kilowatts>,
    caps: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LayoutConfig;

    fn hierarchy_and_layout() -> (PowerHierarchy, crate::topology::Layout) {
        let layout = LayoutConfig::small_test_cluster().build();
        (PowerHierarchy::from_layout(&layout), layout)
    }

    #[test]
    fn idle_cluster_is_within_all_budgets() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let power = vec![Kilowatts::new(1.6); layout.server_count()];
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(!assessment.any_over_budget());
        assert!(assessment.capping.is_empty());
        assert!(assessment.peak_row_utilization() < 0.5);
        assert_eq!(assessment.rows.len(), 2);
        assert!(assessment.datacenter.headroom().value() > 0.0);
    }

    #[test]
    fn row_draw_aggregates_member_servers() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let mut power = vec![Kilowatts::new(2.0); layout.server_count()];
        power[0] = Kilowatts::new(5.0);
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        let row0 = layout.servers()[0].row;
        let expected: f64 = layout.rows()[row0.index()]
            .servers
            .iter()
            .map(|s| power[s.index()].value())
            .sum();
        assert!((assessment.rows[&row0].draw.value() - expected).abs() < 1e-9);
        assert!((assessment.peak_row_power().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn over_budget_row_caps_only_its_servers() {
        let (hierarchy, layout) = hierarchy_and_layout();
        // Row budget is 4 × 6.5 = 26 kW; drive row 0 to 32 kW and keep row 1 idle.
        let mut power = vec![Kilowatts::new(1.6); layout.server_count()];
        for &s in &layout.rows()[0].servers {
            power[s.index()] = Kilowatts::new(8.0);
        }
        let assessment = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(assessment.any_over_budget());
        assert_eq!(assessment.over_budget_rows(), vec![RowId::new(0)]);
        let capped: Vec<ServerId> = assessment.capping.iter().map(|c| c.server).collect();
        for &s in &layout.rows()[0].servers {
            assert!(capped.contains(&s), "row-0 servers must be capped");
        }
        for &s in &layout.rows()[1].servers {
            assert!(!capped.contains(&s), "row-1 servers must not be capped");
        }
        // The cap fraction restores the row to its budget.
        let fraction = assessment.capping[0].power_fraction;
        let row_util = assessment.rows[&RowId::new(0)].utilization;
        assert!((fraction - 1.0 / row_util).abs() < 1e-9);
        assert!(fraction < 1.0 && fraction > 0.0);
    }

    #[test]
    fn ups_failure_reduces_capacity_and_triggers_capping() {
        let (hierarchy, layout) = hierarchy_and_layout();
        // Load everything at 80 % of TDP: fine at full capacity, over budget at 60 %.
        let power = vec![Kilowatts::new(5.2); layout.server_count()];
        let healthy = hierarchy.assess(&power, &CapacityState::healthy());
        assert!(!healthy.any_over_budget());
        let mut degraded_state = CapacityState::healthy();
        degraded_state.ups_capacity.insert(UpsId::new(0), 0.6);
        let degraded = hierarchy.assess(&power, &degraded_state);
        assert!(degraded.any_over_budget());
        // All servers under that UPS (which covers the whole small cluster) are capped.
        assert_eq!(degraded.capping.len(), layout.server_count());
    }

    #[test]
    fn most_restrictive_cap_wins() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let power = vec![Kilowatts::new(6.0); layout.server_count()];
        let mut state = CapacityState::healthy();
        // Row 0 capacity cut hard, datacenter capacity cut mildly.
        state.row_capacity.insert(RowId::new(0), 0.5);
        state.datacenter_capacity = 0.9;
        let assessment = hierarchy.assess(&power, &state);
        let row0_cap = assessment
            .capping
            .iter()
            .find(|c| c.server == layout.rows()[0].servers[0])
            .expect("row-0 server capped");
        let row1_cap = assessment
            .capping
            .iter()
            .find(|c| c.server == layout.rows()[1].servers[0])
            .expect("row-1 server capped by datacenter level");
        assert!(row0_cap.power_fraction < row1_cap.power_fraction);
    }

    #[test]
    fn row_budget_lookup() {
        let (hierarchy, layout) = hierarchy_and_layout();
        let budget = hierarchy.row_budget(RowId::new(0));
        assert_eq!(budget, layout.rows()[0].power_budget);
    }

    #[test]
    #[should_panic(expected = "unknown row id")]
    fn unknown_row_budget_panics() {
        let (hierarchy, _) = hierarchy_and_layout();
        let _ = hierarchy.row_budget(RowId::new(99));
    }
}
