//! Electrical power model.
//!
//! * [`server`] — server power as a polynomial of GPU load with a significant idle floor
//!   (§2.2: even idle GPU servers draw substantial power for fans, CPUs, memory and storage).
//! * [`hierarchy`] — the three-level power delivery hierarchy (rows → PDU pairs → UPS → ATS)
//!   with per-level budgets, utilization assessment and proportional power capping when a
//!   level exceeds its budget (Eq. 4), including the reduced capacity that follows a UPS
//!   failure (§5.4 uses 75 %).

pub mod hierarchy;
pub mod server;

pub use hierarchy::{CapacityState, CappingDirective, LevelUtilization, PowerAssessment, PowerHierarchy};
pub use server::ServerPowerModel;
