//! Cooling and power failure injection.
//!
//! §2 describes the redundancy of both infrastructures and §5.4 evaluates TAPAS during
//! emergencies: an AHU/cooling failure reduces the effective cooling capacity to ≈90 %, and a
//! UPS failure in a 4N/3 redundancy group reduces the usable power capacity to 75 %. This
//! module models failures as *windows* in simulated time; at any instant the active windows
//! collapse into a [`FailureState`] that the engine consumes.

use crate::ids::{AisleId, UpsId};
use crate::power::hierarchy::CapacityState;
use crate::topology::Layout;
use serde::{Deserialize, Serialize};
use simkit::time::SimTime;

/// The kinds of infrastructure failures the simulator injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureKind {
    /// One or more AHUs in a single aisle fail: the remaining AHUs must supply the airflow,
    /// shrinking the aisle's available airflow proportionally.
    AhuFailure {
        /// The affected aisle.
        aisle: AisleId,
        /// Number of failed AHUs in that aisle.
        failed_units: usize,
    },
    /// A datacenter-level cooling device fails: every aisle's effective airflow capacity is
    /// scaled by this fraction (the paper's thermal emergency uses 0.9).
    CoolingDeviceFailure {
        /// Remaining fraction of cooling capacity, in `(0, 1]`.
        capacity_fraction: f64,
    },
    /// A UPS fails: with 4N/3 redundancy the surviving units absorb the load, reducing the
    /// usable power capacity (the paper's power emergency uses 0.75).
    UpsFailure {
        /// The failed UPS.
        ups: UpsId,
        /// Remaining fraction of power capacity across the hierarchy, in `(0, 1]`.
        capacity_fraction: f64,
    },
}

/// A failure active during `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureWindow {
    /// What failed.
    pub kind: FailureKind,
    /// Start of the outage (inclusive).
    pub start: SimTime,
    /// End of the outage (exclusive).
    pub end: SimTime,
}

impl FailureWindow {
    /// Returns `true` if the window is active at `time`.
    #[must_use]
    pub fn is_active(&self, time: SimTime) -> bool {
        time >= self.start && time < self.end
    }
}

/// A schedule of failure windows for one simulation run.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    windows: Vec<FailureWindow>,
}

impl FailureSchedule {
    /// An empty schedule (no failures).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a failure window.
    pub fn add(&mut self, window: FailureWindow) -> &mut Self {
        self.windows.push(window);
        self
    }

    /// Convenience: the paper's thermal emergency (cooling capacity reduced to 90 %) during
    /// `[start, end)`.
    pub fn with_thermal_emergency(mut self, start: SimTime, end: SimTime) -> Self {
        self.windows.push(FailureWindow {
            kind: FailureKind::CoolingDeviceFailure { capacity_fraction: 0.9 },
            start,
            end,
        });
        self
    }

    /// Convenience: the paper's power emergency (power capacity reduced to 75 %) during
    /// `[start, end)`.
    pub fn with_power_emergency(mut self, start: SimTime, end: SimTime) -> Self {
        self.windows.push(FailureWindow {
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: 0.75 },
            start,
            end,
        });
        self
    }

    /// The scheduled windows.
    #[must_use]
    pub fn windows(&self) -> &[FailureWindow] {
        &self.windows
    }

    /// Collapses the schedule into the failure state at an instant.
    #[must_use]
    pub fn state_at(&self, time: SimTime) -> FailureState {
        let mut state = FailureState::healthy();
        self.state_into(time, &mut state);
        state
    }

    /// [`Self::state_at`] writing into a reusable state: the failure lists keep their
    /// allocations across steps, so the steady-state step loop allocates nothing even while
    /// failure windows are active.
    ///
    /// Overlapping windows on the *same* UPS combine to the most severe residual fraction
    /// (matching how overlaps across different UPSes always combined); previously the
    /// schedule-order-last window won, which could understate an ongoing severe failure.
    pub fn state_into(&self, time: SimTime, state: &mut FailureState) {
        state.clear();
        for window in self.windows.iter().filter(|w| w.is_active(time)) {
            match window.kind {
                FailureKind::AhuFailure { aisle, failed_units } => {
                    state.fail_ahus(aisle, failed_units);
                }
                FailureKind::CoolingDeviceFailure { capacity_fraction } => {
                    state.global_cooling_fraction =
                        state.global_cooling_fraction.min(capacity_fraction.clamp(0.0, 1.0));
                }
                FailureKind::UpsFailure { ups, capacity_fraction } => {
                    state.fail_ups(ups, capacity_fraction.clamp(0.0, 1.0));
                }
            }
        }
    }
}

/// The set of failures active at one instant.
///
/// The failed-entity lists are small sparse vectors (a handful of entries during an
/// emergency, none otherwise), kept sorted by id for deterministic iteration and
/// serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureState {
    /// Number of failed AHUs per affected aisle, sorted by aisle id.
    failed_ahus: Vec<(AisleId, usize)>,
    /// Global cooling capacity fraction (1.0 when healthy).
    pub global_cooling_fraction: f64,
    /// Failed UPSes and the residual power capacity fraction they impose, sorted by UPS id.
    failed_upses: Vec<(UpsId, f64)>,
}

impl FailureState {
    /// No active failures.
    #[must_use]
    pub fn healthy() -> Self {
        Self {
            failed_ahus: Vec::new(),
            global_cooling_fraction: 1.0,
            failed_upses: Vec::new(),
        }
    }

    /// Clears all failures back to healthy, keeping the list allocations.
    pub fn clear(&mut self) {
        self.failed_ahus.clear();
        self.failed_upses.clear();
        self.global_cooling_fraction = 1.0;
    }

    /// Records `failed_units` additional failed AHUs in an aisle.
    pub fn fail_ahus(&mut self, aisle: AisleId, failed_units: usize) {
        match self.failed_ahus.binary_search_by_key(&aisle, |&(id, _)| id) {
            Ok(slot) => self.failed_ahus[slot].1 += failed_units,
            Err(slot) => self.failed_ahus.insert(slot, (aisle, failed_units)),
        }
    }

    /// Records a UPS failure leaving `capacity_fraction` of power capacity. Repeated
    /// failures of the same UPS keep the most severe fraction.
    pub fn fail_ups(&mut self, ups: UpsId, capacity_fraction: f64) {
        match self.failed_upses.binary_search_by_key(&ups, |&(id, _)| id) {
            Ok(slot) => {
                let entry = &mut self.failed_upses[slot].1;
                *entry = entry.min(capacity_fraction);
            }
            Err(slot) => self.failed_upses.insert(slot, (ups, capacity_fraction)),
        }
    }

    /// The failed AHU counts per affected aisle, sorted by aisle id.
    #[must_use]
    pub fn failed_ahus(&self) -> &[(AisleId, usize)] {
        &self.failed_ahus
    }

    /// The failed UPSes and their residual capacity fractions, sorted by UPS id.
    #[must_use]
    pub fn failed_upses(&self) -> &[(UpsId, f64)] {
        &self.failed_upses
    }

    /// Returns `true` if nothing is failed.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.failed_ahus.is_empty()
            && self.failed_upses.is_empty()
            && (self.global_cooling_fraction - 1.0).abs() < f64::EPSILON
    }

    /// Effective airflow capacity fraction for an aisle: the global cooling fraction times the
    /// fraction of that aisle's AHUs that are still running.
    #[must_use]
    pub fn aisle_airflow_fraction(&self, aisle: AisleId, ahu_count: usize) -> f64 {
        let failed = self
            .failed_ahus
            .binary_search_by_key(&aisle, |&(id, _)| id)
            .map(|slot| self.failed_ahus[slot].1)
            .unwrap_or(0);
        let running = ahu_count.saturating_sub(failed);
        let ahu_fraction = if ahu_count == 0 {
            0.0
        } else {
            running as f64 / ahu_count as f64
        };
        self.global_cooling_fraction * ahu_fraction
    }

    /// Derives the power-capacity state for the hierarchy from the failed UPSes.
    ///
    /// With the paper's 4N/3 redundancy the load of a failed UPS is redistributed across the
    /// survivors, so the failure manifests as a datacenter-wide capacity reduction (to the
    /// smallest residual fraction among active failures) rather than as a dead branch.
    #[must_use]
    pub fn capacity_state(&self, layout: &Layout) -> CapacityState {
        let mut capacity = CapacityState::healthy();
        self.capacity_state_into(layout, &mut capacity);
        capacity
    }

    /// [`Self::capacity_state`] writing into a reusable state whose dense per-level grids
    /// keep their allocations across steps.
    pub fn capacity_state_into(&self, layout: &Layout, capacity: &mut CapacityState) {
        capacity.reset();
        if let Some(min_fraction) = self
            .failed_upses
            .iter()
            .map(|&(_, fraction)| fraction)
            .min_by(|a, b| a.partial_cmp(b).expect("finite fractions"))
        {
            capacity.datacenter_capacity = min_fraction;
            for ups in layout.upses() {
                capacity.set_ups_capacity(ups.id, min_fraction);
            }
            for row in layout.rows() {
                capacity.set_row_capacity(row.id, min_fraction);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LayoutConfig;

    fn t(minutes: u64) -> SimTime {
        SimTime::from_minutes(minutes)
    }

    #[test]
    fn empty_schedule_is_healthy() {
        let schedule = FailureSchedule::none();
        let state = schedule.state_at(t(100));
        assert!(state.is_healthy());
        assert_eq!(state.aisle_airflow_fraction(AisleId::new(0), 4), 1.0);
        let layout = LayoutConfig::small_test_cluster().build();
        let capacity = state.capacity_state(&layout);
        assert_eq!(capacity.datacenter_capacity, 1.0);
        assert!(capacity.is_full());
    }

    #[test]
    fn window_activation_boundaries() {
        let window = FailureWindow {
            kind: FailureKind::CoolingDeviceFailure { capacity_fraction: 0.9 },
            start: t(10),
            end: t(20),
        };
        assert!(!window.is_active(t(9)));
        assert!(window.is_active(t(10)));
        assert!(window.is_active(t(19)));
        assert!(!window.is_active(t(20)));
    }

    #[test]
    fn ahu_failure_scales_only_its_aisle() {
        let mut schedule = FailureSchedule::none();
        schedule.add(FailureWindow {
            kind: FailureKind::AhuFailure { aisle: AisleId::new(1), failed_units: 1 },
            start: t(0),
            end: t(60),
        });
        let state = schedule.state_at(t(30));
        assert!(!state.is_healthy());
        assert_eq!(state.aisle_airflow_fraction(AisleId::new(1), 4), 0.75);
        assert_eq!(state.aisle_airflow_fraction(AisleId::new(0), 4), 1.0);
        // All AHUs failed -> zero airflow, never negative.
        let mut schedule2 = FailureSchedule::none();
        schedule2.add(FailureWindow {
            kind: FailureKind::AhuFailure { aisle: AisleId::new(0), failed_units: 9 },
            start: t(0),
            end: t(60),
        });
        assert_eq!(schedule2.state_at(t(0)).aisle_airflow_fraction(AisleId::new(0), 4), 0.0);
    }

    #[test]
    fn cooling_failure_applies_globally_and_combines_with_ahu() {
        let mut schedule = FailureSchedule::none().with_thermal_emergency(t(0), t(100));
        schedule.add(FailureWindow {
            kind: FailureKind::AhuFailure { aisle: AisleId::new(0), failed_units: 2 },
            start: t(0),
            end: t(100),
        });
        let state = schedule.state_at(t(50));
        assert!((state.global_cooling_fraction - 0.9).abs() < 1e-12);
        assert!((state.aisle_airflow_fraction(AisleId::new(0), 4) - 0.9 * 0.5).abs() < 1e-12);
        assert!((state.aisle_airflow_fraction(AisleId::new(3), 4) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ups_failure_reduces_power_capacity_everywhere() {
        let layout = LayoutConfig::production_datacenter().build();
        let schedule = FailureSchedule::none().with_power_emergency(t(0), t(30));
        let state = schedule.state_at(t(10));
        let capacity = state.capacity_state(&layout);
        assert!((capacity.datacenter_capacity - 0.75).abs() < 1e-12);
        for ups in layout.upses() {
            assert!((capacity.ups(ups.id) - 0.75).abs() < 1e-12);
        }
        for row in layout.rows() {
            assert!((capacity.row(row.id) - 0.75).abs() < 1e-12);
        }
        // Outside the window everything recovers.
        assert!(schedule.state_at(t(40)).is_healthy());
        // Reusing the same state buffer across instants tracks the windows exactly.
        let mut reused = FailureState::healthy();
        let mut reused_capacity = CapacityState::healthy();
        for minutes in [0u64, 10, 29, 30, 31, 40] {
            schedule.state_into(t(minutes), &mut reused);
            assert_eq!(reused, schedule.state_at(t(minutes)), "at {minutes} min");
            reused.capacity_state_into(&layout, &mut reused_capacity);
            let fresh = schedule.state_at(t(minutes)).capacity_state(&layout);
            assert!(
                (reused_capacity.datacenter_capacity - fresh.datacenter_capacity).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn overlapping_same_ups_failures_keep_the_most_severe() {
        // Two concurrent windows on the same UPS: the worse residual fraction governs,
        // regardless of schedule order (previously the schedule-order-last window won).
        let mut schedule = FailureSchedule::none();
        schedule.add(FailureWindow {
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: 0.5 },
            start: t(0),
            end: t(60),
        });
        schedule.add(FailureWindow {
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: 0.8 },
            start: t(10),
            end: t(60),
        });
        let state = schedule.state_at(t(30));
        assert_eq!(state.failed_upses(), &[(UpsId::new(0), 0.5)]);
        let layout = LayoutConfig::small_test_cluster().build();
        assert!((state.capacity_state(&layout).datacenter_capacity - 0.5).abs() < 1e-12);
        // Once the severe window ends, the milder one governs alone.
        let mut late = FailureSchedule::none();
        late.add(FailureWindow {
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: 0.5 },
            start: t(0),
            end: t(20),
        });
        late.add(FailureWindow {
            kind: FailureKind::UpsFailure { ups: UpsId::new(0), capacity_fraction: 0.8 },
            start: t(10),
            end: t(60),
        });
        assert_eq!(late.state_at(t(30)).failed_upses(), &[(UpsId::new(0), 0.8)]);
    }

    #[test]
    fn overlapping_failures_take_the_most_severe() {
        let schedule = FailureSchedule::none()
            .with_thermal_emergency(t(0), t(100))
            .with_power_emergency(t(0), t(100));
        let mut schedule = schedule;
        schedule.add(FailureWindow {
            kind: FailureKind::CoolingDeviceFailure { capacity_fraction: 0.8 },
            start: t(20),
            end: t(40),
        });
        let state = schedule.state_at(t(30));
        assert!((state.global_cooling_fraction - 0.8).abs() < 1e-12);
        assert_eq!(schedule.windows().len(), 3);
    }
}
