//! The failure-management comparison of Table 2.
//!
//! §5.4 injects a power emergency (capacity reduced to 75 %) and a thermal emergency
//! (capacity reduced to 90 %) during a 5-minute peak-load period and compares the Baseline's
//! uniform frequency capping against TAPAS's selective response (routing away + SaaS
//! reconfiguration). The reported numbers are the performance impact on IaaS and SaaS and
//! the quality impact on SaaS.

use llm_sim::config::InstanceConfig;
use serde::{Deserialize, Serialize};
use tapas::emergency::{EmergencyKind, EmergencyResponder};
use tapas::profiles::ProfileStore;

/// One cell group of Table 2: the impact of one policy during one emergency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergencyImpact {
    /// Performance impact on IaaS workloads (percent, negative = slower).
    pub iaas_perf_pct: f64,
    /// Performance impact on SaaS workloads (percent, negative = slower).
    pub saas_perf_pct: f64,
    /// Quality impact on IaaS workloads (always zero — IaaS results are never altered).
    pub iaas_quality_pct: f64,
    /// Quality impact on SaaS workloads (percent, negative = lower quality).
    pub saas_quality_pct: f64,
}

/// The full Table 2: Baseline vs TAPAS under power and thermal emergencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergencyComparison {
    /// Baseline during the power emergency (75 % capacity).
    pub power_baseline: EmergencyImpact,
    /// TAPAS during the power emergency.
    pub power_tapas: EmergencyImpact,
    /// Baseline during the thermal emergency (90 % capacity).
    pub thermal_baseline: EmergencyImpact,
    /// TAPAS during the thermal emergency.
    pub thermal_tapas: EmergencyImpact,
}

/// Runs the Table 2 scenario: a 50/50 IaaS/SaaS peak-load cluster hit by each emergency.
#[must_use]
pub fn run_table2(profiles: &ProfileStore, saas_fraction: f64) -> EmergencyComparison {
    let responder = EmergencyResponder::new(0.85);
    let current = InstanceConfig::default_70b();

    let impact_from_baseline = |kind, capacity| {
        let plan = responder.baseline_response(kind, capacity);
        EmergencyImpact {
            iaas_perf_pct: plan.iaas_perf_impact_pct(),
            saas_perf_pct: plan.saas_perf_impact_pct(),
            iaas_quality_pct: 0.0,
            saas_quality_pct: plan.saas_quality_impact_pct(),
        }
    };
    let impact_from_tapas = |kind, capacity| {
        let plan = responder.tapas_response(kind, capacity, saas_fraction, &current, profiles);
        EmergencyImpact {
            iaas_perf_pct: plan.iaas_perf_impact_pct(),
            saas_perf_pct: plan.saas_perf_impact_pct(),
            iaas_quality_pct: 0.0,
            saas_quality_pct: plan.saas_quality_impact_pct(),
        }
    };

    EmergencyComparison {
        power_baseline: impact_from_baseline(EmergencyKind::Power, 0.75),
        power_tapas: impact_from_tapas(EmergencyKind::Power, 0.75),
        thermal_baseline: impact_from_baseline(EmergencyKind::Thermal, 0.9),
        thermal_tapas: impact_from_tapas(EmergencyKind::Thermal, 0.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::engine::Datacenter;
    use dc_sim::topology::LayoutConfig;
    use llm_sim::hardware::GpuHardware;

    fn profiles() -> ProfileStore {
        let dc = Datacenter::new(LayoutConfig::small_test_cluster().build(), 42);
        ProfileStore::offline_profiling(&dc, &GpuHardware::a100())
    }

    #[test]
    fn table2_shape_matches_the_paper() {
        let table = run_table2(&profiles(), 0.5);

        // Baseline: both IaaS and SaaS lose performance, quality untouched.
        assert!(table.power_baseline.iaas_perf_pct < -15.0);
        assert!(table.power_baseline.saas_perf_pct < -10.0);
        assert_eq!(table.power_baseline.saas_quality_pct, 0.0);
        assert!(table.thermal_baseline.iaas_perf_pct < 0.0);
        assert!(
            table.thermal_baseline.iaas_perf_pct > table.power_baseline.iaas_perf_pct,
            "the milder thermal emergency should hurt less than the power emergency"
        );

        // TAPAS: IaaS completely unaffected; SaaS trades a bounded amount of quality.
        assert_eq!(table.power_tapas.iaas_perf_pct, 0.0);
        assert_eq!(table.thermal_tapas.iaas_perf_pct, 0.0);
        assert!(table.power_tapas.saas_quality_pct <= 0.0);
        assert!(table.power_tapas.saas_quality_pct >= -20.0);
        assert!(
            table.thermal_tapas.saas_quality_pct >= table.power_tapas.saas_quality_pct,
            "thermal emergency should cost no more quality than the power emergency"
        );
        // IaaS quality is never touched by either policy.
        assert_eq!(table.power_tapas.iaas_quality_pct, 0.0);
        assert_eq!(table.power_baseline.iaas_quality_pct, 0.0);
    }
}
