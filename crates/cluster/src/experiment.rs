//! Experiment configuration.

use dc_sim::failures::FailureSchedule;
use dc_sim::topology::LayoutConfig;
use dc_sim::weather::Climate;
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use tapas::policy::Policy;

/// Everything that defines one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Physical layout of the datacenter.
    pub layout: LayoutConfig,
    /// Scheduling policy under test.
    pub policy: Policy,
    /// Fraction of VMs that are SaaS (the rest are IaaS).
    pub saas_fraction: f64,
    /// Regional climate for the outside-temperature model.
    pub climate: Climate,
    /// Simulated duration.
    pub duration: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Number of SaaS endpoints.
    pub endpoint_count: usize,
    /// Peak request rate per SaaS VM (requests per minute at the top of the diurnal cycle).
    pub requests_per_vm_per_minute: f64,
    /// Fraction of servers occupied at time zero.
    pub initial_occupancy: f64,
    /// Infrastructure failures to inject.
    pub failures: FailureSchedule,
    /// Random seed (drives weather, arrivals, request shapes and per-entity offsets).
    pub seed: u64,
}

impl ExperimentConfig {
    /// A tiny configuration for unit tests and doctests: 8 servers, 2 simulated hours at
    /// 5-minute steps.
    #[must_use]
    pub fn small_smoke_test() -> Self {
        Self {
            layout: LayoutConfig::small_test_cluster(),
            policy: Policy::Baseline,
            saas_fraction: 0.5,
            climate: Climate::temperate(),
            duration: SimTime::from_hours(2),
            step: SimDuration::from_minutes(5),
            endpoint_count: 2,
            requests_per_vm_per_minute: 12.0,
            initial_occupancy: 0.9,
            failures: FailureSchedule::none(),
            seed: 42,
        }
    }

    /// The real-cluster experiment of Fig. 18: two rows of 80 A100 servers, one hour at
    /// 1-minute resolution, 50/50 IaaS/SaaS.
    #[must_use]
    pub fn real_cluster_hour(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_hours(1),
            step: SimDuration::from_minutes(1),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.95,
            failures: FailureSchedule::none(),
            seed: 7,
        }
    }

    /// The large-scale week-long simulation of Fig. 19/20: ~1000 servers, one week at
    /// 5-minute resolution.
    #[must_use]
    pub fn production_week(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::production_datacenter(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(7),
            step: SimDuration::from_minutes(5),
            endpoint_count: 10,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            failures: FailureSchedule::none(),
            seed: 11,
        }
    }

    /// A medium configuration (one aisle pair, two days) used by integration tests and the
    /// ablation bench when the full week would be too slow.
    #[must_use]
    pub fn medium(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(2),
            step: SimDuration::from_minutes(10),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            failures: FailureSchedule::none(),
            seed: 13,
        }
    }

    /// Sets the IaaS/SaaS mix (Fig. 20's sensitivity axis).
    #[must_use]
    pub fn with_saas_fraction(mut self, fraction: f64) -> Self {
        self.saas_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Adds extra servers beyond the provisioned budgets to model oversubscription (Fig. 21):
    /// the budgets stay fixed while `extra_fraction` more racks are installed per row.
    #[must_use]
    pub fn with_oversubscription(mut self, extra_fraction: f64) -> Self {
        let base = self.layout.racks_per_row as f64;
        let extra = (base * extra_fraction).round() as usize;
        // Keep the budgets at the original provisioning by shrinking the provisioning
        // fractions in proportion to the added racks.
        let scale = base / (base + extra as f64);
        self.layout.racks_per_row += extra;
        self.layout.row_power_provisioning *= scale;
        self.layout.aisle_airflow_provisioning *= scale;
        self
    }

    /// Total number of servers in the configured layout.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.layout.server_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_scale() {
        assert_eq!(ExperimentConfig::small_smoke_test().server_count(), 8);
        assert_eq!(ExperimentConfig::real_cluster_hour(Policy::Tapas).server_count(), 80);
        assert_eq!(ExperimentConfig::production_week(Policy::Tapas).server_count(), 1040);
        assert_eq!(ExperimentConfig::medium(Policy::Baseline).policy, Policy::Baseline);
    }

    #[test]
    fn saas_fraction_is_clamped() {
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(1.4);
        assert_eq!(config.saas_fraction, 1.0);
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(-0.2);
        assert_eq!(config.saas_fraction, 0.0);
    }

    #[test]
    fn oversubscription_adds_racks_but_keeps_budgets() {
        let base = ExperimentConfig::real_cluster_hour(Policy::Baseline);
        let over = base.clone().with_oversubscription(0.4);
        assert!(over.server_count() > base.server_count());
        // Budgets stay roughly the same: provisioning fraction × racks is constant.
        let base_budget = base.layout.racks_per_row as f64 * base.layout.row_power_provisioning;
        let over_budget = over.layout.racks_per_row as f64 * over.layout.row_power_provisioning;
        assert!((base_budget - over_budget).abs() < 1e-9);
        // Zero oversubscription changes nothing.
        let same = base.clone().with_oversubscription(0.0);
        assert_eq!(same.server_count(), base.server_count());
    }
}
