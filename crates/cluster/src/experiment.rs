//! Experiment configuration: single-datacenter runs ([`ExperimentConfig`]) and
//! multi-datacenter fleets ([`FleetConfig`], one [`SiteConfig`] per datacenter plus the
//! [`GeoPolicy`] that splits VM arrivals across them).

use dc_sim::failures::FailureSchedule;
use dc_sim::topology::LayoutConfig;
use dc_sim::weather::Climate;
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use tapas::policy::Policy;
use workload::arrivals::{ArrivalConfig, VmArrivalGenerator};
use workload::endpoints::EndpointCatalog;
use workload::vm::Vm;

/// Everything that defines one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentConfig {
    /// Physical layout of the datacenter.
    pub layout: LayoutConfig,
    /// Scheduling policy under test.
    pub policy: Policy,
    /// Fraction of VMs that are SaaS (the rest are IaaS).
    pub saas_fraction: f64,
    /// Regional climate for the outside-temperature model.
    pub climate: Climate,
    /// Simulated duration.
    pub duration: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Number of SaaS endpoints.
    pub endpoint_count: usize,
    /// Peak request rate per SaaS VM (requests per minute at the top of the diurnal cycle).
    pub requests_per_vm_per_minute: f64,
    /// Fraction of servers occupied at time zero.
    pub initial_occupancy: f64,
    /// Overrides the mean number of additional VM arrivals per day (before any fleet
    /// scaling). `None` keeps the evaluation-week default of 5 % of the server count per
    /// day; arrival-driven scenarios (e.g. fleet geo-routing studies) raise it so load
    /// builds over the horizon instead of arriving entirely at time zero.
    pub arrivals_per_day: Option<f64>,
    /// Infrastructure failures to inject.
    pub failures: FailureSchedule,
    /// Random seed (drives weather, arrivals, request shapes and per-entity offsets).
    pub seed: u64,
}

// Hand-written (the other configs use the derive) so experiment artifacts serialized
// before `arrivals_per_day` existed still load: the vendored derive rejects a missing
// key, but this field must default to `None` for backward compatibility.
impl Deserialize for ExperimentConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            layout: Deserialize::from_value(value.get("layout")?)?,
            policy: Deserialize::from_value(value.get("policy")?)?,
            saas_fraction: Deserialize::from_value(value.get("saas_fraction")?)?,
            climate: Deserialize::from_value(value.get("climate")?)?,
            duration: Deserialize::from_value(value.get("duration")?)?,
            step: Deserialize::from_value(value.get("step")?)?,
            endpoint_count: Deserialize::from_value(value.get("endpoint_count")?)?,
            requests_per_vm_per_minute: Deserialize::from_value(
                value.get("requests_per_vm_per_minute")?,
            )?,
            initial_occupancy: Deserialize::from_value(value.get("initial_occupancy")?)?,
            arrivals_per_day: match value.get("arrivals_per_day") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => None,
            },
            failures: Deserialize::from_value(value.get("failures")?)?,
            seed: Deserialize::from_value(value.get("seed")?)?,
        })
    }
}

impl ExperimentConfig {
    /// A tiny configuration for unit tests and doctests: 8 servers, 2 simulated hours at
    /// 5-minute steps.
    #[must_use]
    pub fn small_smoke_test() -> Self {
        Self {
            layout: LayoutConfig::small_test_cluster(),
            policy: Policy::Baseline,
            saas_fraction: 0.5,
            climate: Climate::temperate(),
            duration: SimTime::from_hours(2),
            step: SimDuration::from_minutes(5),
            endpoint_count: 2,
            requests_per_vm_per_minute: 12.0,
            initial_occupancy: 0.9,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            seed: 42,
        }
    }

    /// The real-cluster experiment of Fig. 18: two rows of 80 A100 servers, one hour at
    /// 1-minute resolution, 50/50 IaaS/SaaS.
    #[must_use]
    pub fn real_cluster_hour(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_hours(1),
            step: SimDuration::from_minutes(1),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.95,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            seed: 7,
        }
    }

    /// The large-scale week-long simulation of Fig. 19/20: ~1000 servers, one week at
    /// 5-minute resolution.
    #[must_use]
    pub fn production_week(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::production_datacenter(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(7),
            step: SimDuration::from_minutes(5),
            endpoint_count: 10,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            seed: 11,
        }
    }

    /// A medium configuration (one aisle pair, two days) used by integration tests and the
    /// ablation bench when the full week would be too slow.
    #[must_use]
    pub fn medium(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(2),
            step: SimDuration::from_minutes(10),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            seed: 13,
        }
    }

    /// Sets the IaaS/SaaS mix (Fig. 20's sensitivity axis).
    #[must_use]
    pub fn with_saas_fraction(mut self, fraction: f64) -> Self {
        self.saas_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Adds extra servers beyond the provisioned budgets to model oversubscription (Fig. 21):
    /// the budgets stay fixed while `extra_fraction` more racks are installed per row.
    #[must_use]
    pub fn with_oversubscription(mut self, extra_fraction: f64) -> Self {
        let base = self.layout.racks_per_row as f64;
        let extra = (base * extra_fraction).round() as usize;
        // Keep the budgets at the original provisioning by shrinking the provisioning
        // fractions in proportion to the added racks.
        let scale = base / (base + extra as f64);
        self.layout.racks_per_row += extra;
        self.layout.row_power_provisioning *= scale;
        self.layout.aisle_airflow_provisioning *= scale;
        self
    }

    /// Total number of servers in the configured layout.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.layout.server_count()
    }

    /// The SaaS endpoint catalog this configuration implies. Shared by the
    /// single-datacenter simulator and the fleet-level arrival stream so both draw the
    /// same endpoints.
    #[must_use]
    pub fn endpoint_catalog(&self) -> EndpointCatalog {
        let saas_target =
            (self.server_count() as f64 * self.initial_occupancy * self.saas_fraction)
                .round() as usize;
        EndpointCatalog::evaluation(
            self.endpoint_count.max(1),
            self.requests_per_vm_per_minute,
            self.seed,
        )
        .scaled_to_total_vms(saas_target.max(self.endpoint_count.max(1)))
    }

    /// Generates the VM arrival stream (initial population followed by the sorted arrival
    /// process), scaled by `scale` for fleets of several sites. `scale = 1.0` reproduces
    /// the single-datacenter stream bit for bit, which is what keeps a pinned 1-site fleet
    /// digest-identical to [`crate::simulator::ClusterSimulator`].
    #[must_use]
    pub fn vm_stream(&self, catalog: &EndpointCatalog, scale: f64) -> Vec<Vm> {
        assert!(scale > 0.0, "arrival scale must be positive");
        let mut arrival_config = ArrivalConfig::evaluation_week(self.server_count());
        arrival_config.saas_fraction = self.saas_fraction;
        arrival_config.initial_population =
            (self.server_count() as f64 * self.initial_occupancy * scale).round() as usize;
        if let Some(rate) = self.arrivals_per_day {
            arrival_config.arrivals_per_day = rate;
        }
        arrival_config.arrivals_per_day *= scale;
        arrival_config.horizon = self.duration;
        VmArrivalGenerator::new(arrival_config, self.seed).generate(catalog)
    }
}

/// How a fleet splits each step's VM arrivals across its sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeoPolicy {
    /// Every arrival goes to one site. A pinned 1-site fleet (or a pinned site of a larger
    /// fleet) reproduces the single-datacenter simulation bit for bit.
    Pinned(usize),
    /// Deterministic weighted round-robin over the sites' [`SiteConfig::arrival_share`]s,
    /// oblivious to telemetry — the naive baseline geo routing is compared against.
    RoundRobin,
    /// TAPAS geo routing: steer each arrival to the site with the most power headroom and
    /// thermal slack, and shift load away from sites in power/thermal emergencies.
    Headroom,
}

impl GeoPolicy {
    /// Short label used in fleet reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            GeoPolicy::Pinned(site) => format!("Pinned({site})"),
            GeoPolicy::RoundRobin => "RoundRobin".to_string(),
            GeoPolicy::Headroom => "Headroom".to_string(),
        }
    }
}

/// One datacenter cell of a fleet: its physical layout, regional climate and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Human-readable site name (used in fleet reports).
    pub name: String,
    /// Physical layout of the site's datacenter.
    pub layout: LayoutConfig,
    /// Regional climate of the site.
    pub climate: Climate,
    /// Site seed: drives the site's weather trace, physics offsets and request draws.
    /// Distinct per site so site telemetry is statistically independent.
    pub seed: u64,
    /// Relative share of arrivals the site receives under [`GeoPolicy::RoundRobin`].
    pub arrival_share: f64,
}

/// A multi-datacenter experiment: the shared workload/policy shape plus one
/// [`SiteConfig`] per datacenter and the geo placement policy that splits arrivals.
///
/// By construction (`single_site`, `evaluation`) the base configuration's layout, climate
/// and seed equal site 0's, so the single-datacenter path is exactly the 1-site fleet and
/// existing digests are preserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Workload shape, scheduling policy, duration, step and failure schedule shared by
    /// every site (each site overrides layout, climate and seed from its [`SiteConfig`]).
    pub base: ExperimentConfig,
    /// The fleet's datacenters, in site-ordinal order.
    pub sites: Vec<SiteConfig>,
    /// How arrivals are split across sites.
    pub geo: GeoPolicy,
    /// Scales the fleet-wide arrival stream relative to what `base` alone would generate
    /// (`1.0` = the single-datacenter stream, `sites.len()` = a fleet-sized stream).
    pub arrival_scale: f64,
}

/// A named climate preset constructor, as cycled by `FleetConfig::evaluation`.
type ClimatePreset = (&'static str, fn() -> Climate);

/// The climate presets `FleetConfig::evaluation` cycles through, with their name suffixes.
const EVALUATION_CLIMATES: [ClimatePreset; 3] =
    [("hot", Climate::hot), ("temperate", Climate::temperate), ("cold", Climate::cold)];

impl FleetConfig {
    /// Expresses a single-datacenter experiment as a 1-site fleet. Running it produces a
    /// site report bit-identical to `ClusterSimulator::new(base).run()`.
    #[must_use]
    pub fn single_site(base: ExperimentConfig) -> Self {
        let site = SiteConfig {
            name: "site0".to_string(),
            layout: base.layout.clone(),
            climate: base.climate,
            seed: base.seed,
            arrival_share: 1.0,
        };
        Self { base, sites: vec![site], geo: GeoPolicy::Pinned(0), arrival_scale: 1.0 }
    }

    /// An evaluation fleet of `site_count` copies of `base`'s layout spread across the
    /// paper's three regional climates (hot, temperate, cold, cycling), with distinct
    /// per-site seeds, a fleet-sized arrival stream and TAPAS geo routing. Site 0 keeps
    /// `base`'s seed; `base.climate` is normalized to site 0's so the base-equals-site-0
    /// invariant holds.
    ///
    /// # Panics
    /// Panics if `site_count` is zero.
    #[must_use]
    pub fn evaluation(mut base: ExperimentConfig, site_count: usize) -> Self {
        assert!(site_count > 0, "a fleet needs at least one site");
        let sites: Vec<SiteConfig> = (0..site_count)
            .map(|site| {
                let (suffix, climate) = EVALUATION_CLIMATES[site % EVALUATION_CLIMATES.len()];
                SiteConfig {
                    name: format!("site{site}-{suffix}"),
                    layout: base.layout.clone(),
                    climate: climate(),
                    // Golden-ratio stride keeps per-site streams far apart; site 0 keeps
                    // the base seed.
                    seed: base
                        .seed
                        .wrapping_add((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    arrival_share: 1.0,
                }
            })
            .collect();
        base.climate = sites[0].climate;
        Self {
            base,
            sites,
            geo: GeoPolicy::Headroom,
            arrival_scale: site_count as f64,
        }
    }

    /// Returns a copy with a different geo policy (for baseline comparisons).
    #[must_use]
    pub fn with_geo(mut self, geo: GeoPolicy) -> Self {
        self.geo = geo;
        self
    }

    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The full [`ExperimentConfig`] of one site: the base with the site's layout, climate
    /// and seed substituted.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_experiment(&self, site: usize) -> ExperimentConfig {
        let site = &self.sites[site];
        let mut config = self.base.clone();
        config.layout = site.layout.clone();
        config.climate = site.climate;
        config.seed = site.seed;
        config
    }

    /// Validates the cross-field invariants the simulator relies on.
    ///
    /// # Panics
    /// Panics if there are no sites, a pinned site is out of range, the arrival scale is
    /// not positive, or — under [`GeoPolicy::RoundRobin`], the only policy that consumes
    /// arrival shares — any share is negative or non-finite, or every share is zero.
    pub fn validate(&self) {
        assert!(!self.sites.is_empty(), "a fleet needs at least one site");
        assert!(self.arrival_scale > 0.0, "arrival scale must be positive");
        if let GeoPolicy::Pinned(site) = self.geo {
            assert!(site < self.sites.len(), "pinned site {site} out of range");
        }
        if self.geo == GeoPolicy::RoundRobin {
            assert!(
                self.sites
                    .iter()
                    .all(|s| s.arrival_share.is_finite() && s.arrival_share >= 0.0),
                "arrival shares must be finite and non-negative"
            );
            assert!(
                self.sites.iter().any(|s| s.arrival_share > 0.0),
                "at least one site must have a positive arrival share"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_scale() {
        assert_eq!(ExperimentConfig::small_smoke_test().server_count(), 8);
        assert_eq!(ExperimentConfig::real_cluster_hour(Policy::Tapas).server_count(), 80);
        assert_eq!(ExperimentConfig::production_week(Policy::Tapas).server_count(), 1040);
        assert_eq!(ExperimentConfig::medium(Policy::Baseline).policy, Policy::Baseline);
    }

    #[test]
    fn saas_fraction_is_clamped() {
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(1.4);
        assert_eq!(config.saas_fraction, 1.0);
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(-0.2);
        assert_eq!(config.saas_fraction, 0.0);
    }

    #[test]
    fn evaluation_fleet_cycles_climates_with_distinct_seeds() {
        let fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 4);
        fleet.validate();
        assert_eq!(fleet.site_count(), 4);
        assert_eq!(fleet.geo, GeoPolicy::Headroom);
        assert_eq!(fleet.arrival_scale, 4.0);
        // Climates cycle hot/temperate/cold and the base is normalized to site 0.
        assert_eq!(fleet.sites[0].climate, Climate::hot());
        assert_eq!(fleet.sites[1].climate, Climate::temperate());
        assert_eq!(fleet.sites[2].climate, Climate::cold());
        assert_eq!(fleet.sites[3].climate, Climate::hot());
        assert_eq!(fleet.base.climate, Climate::hot());
        // Seeds are pairwise distinct and site 0 keeps the base seed.
        assert_eq!(fleet.sites[0].seed, fleet.base.seed);
        let mut seeds: Vec<u64> = fleet.sites.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
        // Site experiments carry the overrides.
        let site2 = fleet.site_experiment(2);
        assert_eq!(site2.climate, Climate::cold());
        assert_eq!(site2.seed, fleet.sites[2].seed);
        assert_eq!(site2.policy, fleet.base.policy);
    }

    #[test]
    fn single_site_fleet_mirrors_the_base() {
        let base = ExperimentConfig::real_cluster_hour(Policy::Tapas);
        let fleet = FleetConfig::single_site(base.clone());
        fleet.validate();
        assert_eq!(fleet.site_count(), 1);
        assert_eq!(fleet.geo, GeoPolicy::Pinned(0));
        assert_eq!(fleet.arrival_scale, 1.0);
        assert_eq!(fleet.site_experiment(0), base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pinned_site_out_of_range_fails_validation() {
        FleetConfig::single_site(ExperimentConfig::small_smoke_test())
            .with_geo(GeoPolicy::Pinned(3))
            .validate();
    }

    #[test]
    fn experiment_config_round_trips_through_json() {
        let mut config = ExperimentConfig::production_week(Policy::PlaceRoute);
        config.failures = FailureSchedule::none()
            .with_power_emergency(SimTime::from_hours(3), SimTime::from_hours(5));
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    fn configs_serialized_before_the_arrivals_field_still_deserialize() {
        let config = ExperimentConfig::small_smoke_test();
        let json = serde_json::to_string(&config).expect("serialize");
        // A pre-fleet-layer artifact has no `arrivals_per_day` key at all.
        let legacy = json.replace("\"arrivals_per_day\":null,", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: ExperimentConfig = serde_json::from_str(&legacy).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_arrival_share_fails_round_robin_validation() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2)
            .with_geo(GeoPolicy::RoundRobin);
        fleet.sites[0].arrival_share = -1.0;
        fleet.validate();
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_arrival_share_fails_round_robin_validation() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2)
            .with_geo(GeoPolicy::RoundRobin);
        fleet.sites[1].arrival_share = f64::NAN;
        fleet.validate();
    }

    #[test]
    fn shares_are_ignored_by_policies_that_do_not_split_on_them() {
        // A Headroom fleet with all-zero shares is valid: shares only weight round-robin.
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2);
        for site in &mut fleet.sites {
            site.arrival_share = 0.0;
        }
        fleet.validate();
        fleet.clone().with_geo(GeoPolicy::Pinned(0)).validate();
    }

    #[test]
    fn fleet_config_round_trips_through_json() {
        for geo in [GeoPolicy::Pinned(1), GeoPolicy::RoundRobin, GeoPolicy::Headroom] {
            let fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 3)
                .with_geo(geo);
            let json = serde_json::to_string(&fleet).expect("serialize");
            let back: FleetConfig = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, fleet);
            // Reproducible artifact: re-serializing the round-tripped value is stable.
            assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
        }
    }

    #[test]
    fn fleet_arrival_stream_scales_and_matches_the_single_dc_stream_at_one() {
        let config = ExperimentConfig::small_smoke_test();
        let catalog = config.endpoint_catalog();
        let single = config.vm_stream(&catalog, 1.0);
        let again = config.vm_stream(&catalog, 1.0);
        assert_eq!(single, again, "stream generation must be deterministic");
        let tripled = config.vm_stream(&catalog, 3.0);
        assert!(tripled.len() > single.len() * 2, "scale must grow the stream");
    }

    #[test]
    fn oversubscription_adds_racks_but_keeps_budgets() {
        let base = ExperimentConfig::real_cluster_hour(Policy::Baseline);
        let over = base.clone().with_oversubscription(0.4);
        assert!(over.server_count() > base.server_count());
        // Budgets stay roughly the same: provisioning fraction × racks is constant.
        let base_budget = base.layout.racks_per_row as f64 * base.layout.row_power_provisioning;
        let over_budget = over.layout.racks_per_row as f64 * over.layout.row_power_provisioning;
        assert!((base_budget - over_budget).abs() < 1e-9);
        // Zero oversubscription changes nothing.
        let same = base.clone().with_oversubscription(0.0);
        assert_eq!(same.server_count(), base.server_count());
    }
}
