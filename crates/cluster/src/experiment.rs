//! Experiment configuration: single-datacenter runs ([`ExperimentConfig`]) and
//! multi-datacenter fleets ([`FleetConfig`], one [`SiteConfig`] per datacenter plus the
//! [`GeoPolicy`] that splits VM arrivals across them).
//!
//! Scenario diversity (heatwaves, grid-price curves, failures, demand surges) does not
//! live in config fields: experiments *compose* a [`crate::scenario::Scenario`] and the
//! simulators resolve it into dense per-step inputs. Validation across the whole surface
//! is typed — [`ExperimentConfig::validate`] and [`FleetConfig::check`] return
//! [`ScenarioError`] instead of panicking.

use crate::scenario::{ResolvedTimeline, Scenario, ScenarioError};
use dc_sim::failures::FailureSchedule;
use dc_sim::topology::LayoutConfig;
use dc_sim::weather::Climate;
use serde::{Deserialize, Serialize};
use simkit::time::{SimDuration, SimTime};
use tapas::policy::Policy;
use workload::arrivals::{ArrivalConfig, VmArrivalGenerator};
use workload::endpoints::EndpointCatalog;
use workload::vm::Vm;

/// Tunables of the per-request serving fabric (see `crate::fabric`). The fabric is
/// opt-in: [`ExperimentConfig::request_fabric`] is `None` by default and every legacy
/// code path (RNG draws, report bytes, digests) is untouched until it is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFabricConfig {
    /// Scales the generated request rate relative to the endpoint catalog's diurnal
    /// per-VM peak rates (`1.0` = the catalog's calibrated demand).
    pub rate_scale: f64,
    /// The headline SLO multiplier for attainment reporting. The paper's SLO is 5× the
    /// unloaded latency; the full attainment curve is recorded regardless.
    pub slo_multiplier: f64,
    /// Enables deadline shedding: a queued request that cannot start within
    /// `slo_multiplier ×` its endpoint's unloaded TTFT is shed (counted, never served)
    /// instead of burning KV budget after its SLO is already blown. Off by default so
    /// pre-fault-tolerance runs keep their exact request outcomes.
    pub deadline_shedding: bool,
    /// Retry budget for preempted requests before they are dropped as timeouts.
    pub max_retries: u32,
    /// Base of the deterministic exponential backoff applied to requeued requests
    /// (`backoff_base_ms << (attempt - 1)` milliseconds, capped).
    pub backoff_base_ms: u64,
}

impl Default for RequestFabricConfig {
    fn default() -> Self {
        Self {
            rate_scale: 1.0,
            slo_multiplier: 5.0,
            deadline_shedding: false,
            max_retries: 3,
            backoff_base_ms: 256,
        }
    }
}

// Hand-written serde: the fault-tolerance knobs are emitted only when they differ from
// the defaults, so every fabric-enabled artifact pinned before they existed keeps its
// exact bytes, and old artifacts (which lack the keys) still load.
impl Serialize for RequestFabricConfig {
    fn to_value(&self) -> serde::Value {
        let defaults = Self::default();
        let mut entries = vec![
            (String::from("rate_scale"), self.rate_scale.to_value()),
            (String::from("slo_multiplier"), self.slo_multiplier.to_value()),
        ];
        if self.deadline_shedding != defaults.deadline_shedding {
            entries.push((String::from("deadline_shedding"), self.deadline_shedding.to_value()));
        }
        if self.max_retries != defaults.max_retries {
            entries.push((String::from("max_retries"), self.max_retries.to_value()));
        }
        if self.backoff_base_ms != defaults.backoff_base_ms {
            entries.push((String::from("backoff_base_ms"), self.backoff_base_ms.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RequestFabricConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let defaults = Self::default();
        Ok(Self {
            rate_scale: Deserialize::from_value(value.get("rate_scale")?)?,
            slo_multiplier: Deserialize::from_value(value.get("slo_multiplier")?)?,
            deadline_shedding: match value.get("deadline_shedding") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => defaults.deadline_shedding,
            },
            max_retries: match value.get("max_retries") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => defaults.max_retries,
            },
            backoff_base_ms: match value.get("backoff_base_ms") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => defaults.backoff_base_ms,
            },
        })
    }
}

/// Everything that defines one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Physical layout of the datacenter.
    pub layout: LayoutConfig,
    /// Scheduling policy under test.
    pub policy: Policy,
    /// Fraction of VMs that are SaaS (the rest are IaaS).
    pub saas_fraction: f64,
    /// Regional climate for the outside-temperature model.
    pub climate: Climate,
    /// Simulated duration.
    pub duration: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Number of SaaS endpoints.
    pub endpoint_count: usize,
    /// Peak request rate per SaaS VM (requests per minute at the top of the diurnal cycle).
    pub requests_per_vm_per_minute: f64,
    /// Fraction of servers occupied at time zero.
    pub initial_occupancy: f64,
    /// Overrides the mean number of additional VM arrivals per day (before any fleet
    /// scaling). `None` keeps the evaluation-week default of 5 % of the server count per
    /// day; arrival-driven scenarios (e.g. fleet geo-routing studies) raise it so load
    /// builds over the horizon instead of arriving entirely at time zero.
    pub arrivals_per_day: Option<f64>,
    /// Infrastructure failures to inject. Legacy shortcut kept for pinned artifacts: the
    /// windows merge into the resolved scenario timeline, so `failures` and
    /// `scenario` failure events behave identically. New code should prefer
    /// [`Scenario`] events (site-targetable, validated).
    pub failures: FailureSchedule,
    /// The typed event timeline this experiment runs under (weather episodes,
    /// grid-price curves, failures, demand shaping). The default empty scenario
    /// reproduces the pre-scenario behaviour bit for bit. For fleets this is shared
    /// fleet-wide with per-site targeting; [`FleetConfig::site_experiment`] hands each
    /// cell its single-site view.
    pub scenario: Scenario,
    /// Random seed (drives weather, arrivals, request shapes and per-entity offsets).
    pub seed: u64,
    /// Per-request serving fabric, off by default. `None` keeps the run byte-identical
    /// to a build without the fabric subsystem.
    pub request_fabric: Option<RequestFabricConfig>,
}

// Hand-written serde on both sides. Serialize: the vendored derive writes `Option` as
// `null`, which would insert a `request_fabric` key into every artifact and break the
// pinned pre-fabric goldens — so the key is emitted only when the fabric is enabled,
// with every pre-existing field in declaration order exactly as the derive wrote it.
impl Serialize for ExperimentConfig {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            (String::from("layout"), self.layout.to_value()),
            (String::from("policy"), self.policy.to_value()),
            (String::from("saas_fraction"), self.saas_fraction.to_value()),
            (String::from("climate"), self.climate.to_value()),
            (String::from("duration"), self.duration.to_value()),
            (String::from("step"), self.step.to_value()),
            (String::from("endpoint_count"), self.endpoint_count.to_value()),
            (
                String::from("requests_per_vm_per_minute"),
                self.requests_per_vm_per_minute.to_value(),
            ),
            (String::from("initial_occupancy"), self.initial_occupancy.to_value()),
            (String::from("arrivals_per_day"), self.arrivals_per_day.to_value()),
            (String::from("failures"), self.failures.to_value()),
            (String::from("scenario"), self.scenario.to_value()),
            (String::from("seed"), self.seed.to_value()),
        ];
        if let Some(fabric) = &self.request_fabric {
            entries.push((String::from("request_fabric"), fabric.to_value()));
        }
        serde::Value::Map(entries)
    }
}

// Deserialize is hand-written (the other configs use the derive) so experiment artifacts
// serialized before `arrivals_per_day` / `scenario` / `request_fabric` existed still
// load: the vendored derive rejects a missing key, but these fields must default for
// backward compatibility.
impl Deserialize for ExperimentConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            layout: Deserialize::from_value(value.get("layout")?)?,
            policy: Deserialize::from_value(value.get("policy")?)?,
            saas_fraction: Deserialize::from_value(value.get("saas_fraction")?)?,
            climate: Deserialize::from_value(value.get("climate")?)?,
            duration: Deserialize::from_value(value.get("duration")?)?,
            step: Deserialize::from_value(value.get("step")?)?,
            endpoint_count: Deserialize::from_value(value.get("endpoint_count")?)?,
            requests_per_vm_per_minute: Deserialize::from_value(
                value.get("requests_per_vm_per_minute")?,
            )?,
            initial_occupancy: Deserialize::from_value(value.get("initial_occupancy")?)?,
            arrivals_per_day: match value.get("arrivals_per_day") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => None,
            },
            failures: Deserialize::from_value(value.get("failures")?)?,
            scenario: match value.get("scenario") {
                Ok(field) => Deserialize::from_value(field)?,
                Err(_) => Scenario::default(),
            },
            seed: Deserialize::from_value(value.get("seed")?)?,
            request_fabric: match value.get("request_fabric") {
                Ok(field) => Some(Deserialize::from_value(field)?),
                Err(_) => None,
            },
        })
    }
}

impl ExperimentConfig {
    /// A tiny configuration for unit tests and doctests: 8 servers, 2 simulated hours at
    /// 5-minute steps.
    #[must_use]
    pub fn small_smoke_test() -> Self {
        Self {
            layout: LayoutConfig::small_test_cluster(),
            policy: Policy::Baseline,
            saas_fraction: 0.5,
            climate: Climate::temperate(),
            duration: SimTime::from_hours(2),
            step: SimDuration::from_minutes(5),
            endpoint_count: 2,
            requests_per_vm_per_minute: 12.0,
            initial_occupancy: 0.9,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            scenario: Scenario::default(),
            seed: 42,
            request_fabric: None,
        }
    }

    /// The real-cluster experiment of Fig. 18: two rows of 80 A100 servers, one hour at
    /// 1-minute resolution, 50/50 IaaS/SaaS.
    #[must_use]
    pub fn real_cluster_hour(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_hours(1),
            step: SimDuration::from_minutes(1),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.95,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            scenario: Scenario::default(),
            seed: 7,
            request_fabric: None,
        }
    }

    /// The large-scale week-long simulation of Fig. 19/20: ~1000 servers, one week at
    /// 5-minute resolution.
    #[must_use]
    pub fn production_week(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::production_datacenter(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(7),
            step: SimDuration::from_minutes(5),
            endpoint_count: 10,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            scenario: Scenario::default(),
            seed: 11,
            request_fabric: None,
        }
    }

    /// A medium configuration (one aisle pair, two days) used by integration tests and the
    /// ablation bench when the full week would be too slow.
    #[must_use]
    pub fn medium(policy: Policy) -> Self {
        Self {
            layout: LayoutConfig::real_cluster_two_rows(),
            policy,
            saas_fraction: 0.5,
            climate: Climate::hot(),
            duration: SimTime::from_days(2),
            step: SimDuration::from_minutes(10),
            endpoint_count: 4,
            requests_per_vm_per_minute: 170.0,
            initial_occupancy: 0.92,
            arrivals_per_day: None,
            failures: FailureSchedule::none(),
            scenario: Scenario::default(),
            seed: 13,
            request_fabric: None,
        }
    }

    /// Sets the IaaS/SaaS mix (Fig. 20's sensitivity axis).
    #[must_use]
    pub fn with_saas_fraction(mut self, fraction: f64) -> Self {
        self.saas_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the scheduling policy under test.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the regional climate.
    #[must_use]
    pub fn with_climate(mut self, climate: Climate) -> Self {
        self.climate = climate;
        self
    }

    /// Sets the simulated horizon.
    #[must_use]
    pub fn with_duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the step length.
    #[must_use]
    pub fn with_step(mut self, step: SimDuration) -> Self {
        self.step = step;
        self
    }

    /// Sets the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of servers occupied at time zero.
    #[must_use]
    pub fn with_initial_occupancy(mut self, occupancy: f64) -> Self {
        self.initial_occupancy = occupancy.clamp(0.0, 1.0);
        self
    }

    /// Overrides the mean additional VM arrivals per day (see
    /// [`Self::arrivals_per_day`]).
    #[must_use]
    pub fn with_arrivals_per_day(mut self, rate: f64) -> Self {
        self.arrivals_per_day = Some(rate);
        self
    }

    /// Sets the legacy failure schedule (prefer scenario failure events; both merge into
    /// the same resolved timeline).
    #[must_use]
    pub fn with_failures(mut self, failures: FailureSchedule) -> Self {
        self.failures = failures;
        self
    }

    /// Composes a scenario into the experiment.
    #[must_use]
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Enables the per-request serving fabric (see `crate::fabric`).
    #[must_use]
    pub fn with_request_fabric(mut self, fabric: RequestFabricConfig) -> Self {
        self.request_fabric = Some(fabric);
        self
    }

    /// Validates the configuration's scenario (a standalone experiment is site 0 of a
    /// 1-site fleet, but site-targeted events are allowed here because the config may be
    /// the shared base of a larger fleet — [`FleetConfig::check`] bounds them).
    ///
    /// # Errors
    /// Returns the first violated event invariant as a [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.scenario.validate_events()
    }

    /// Resolves the composed scenario (and the legacy failure schedule it subsumes) into
    /// the dense per-step timeline this experiment runs under, viewed as site 0.
    #[must_use]
    pub fn resolved_timeline(&self) -> ResolvedTimeline {
        self.scenario.resolve(
            0,
            self.duration,
            self.step,
            self.endpoint_count.max(1),
            &self.failures,
        )
    }

    /// Adds extra servers beyond the provisioned budgets to model oversubscription (Fig. 21):
    /// the budgets stay fixed while `extra_fraction` more racks are installed per row.
    #[must_use]
    pub fn with_oversubscription(mut self, extra_fraction: f64) -> Self {
        let base = self.layout.racks_per_row as f64;
        let extra = (base * extra_fraction).round() as usize;
        // Keep the budgets at the original provisioning by shrinking the provisioning
        // fractions in proportion to the added racks.
        let scale = base / (base + extra as f64);
        self.layout.racks_per_row += extra;
        self.layout.row_power_provisioning *= scale;
        self.layout.aisle_airflow_provisioning *= scale;
        self
    }

    /// Total number of servers in the configured layout.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.layout.server_count()
    }

    /// The SaaS endpoint catalog this configuration implies.
    ///
    /// **This is the single shared generation path**: the single-datacenter simulator,
    /// the fleet-level arrival stream and any external tooling must all obtain their
    /// catalog here (and their VM stream from [`Self::vm_stream`] over it) so every
    /// consumer draws the same endpoints in the same order. Building a catalog any other
    /// way forfeits the pinned-fleet/single-DC equivalence; [`Self::vm_stream`] debug-asserts
    /// the catalog shape to catch drift.
    #[must_use]
    pub fn endpoint_catalog(&self) -> EndpointCatalog {
        let saas_target =
            (self.server_count() as f64 * self.initial_occupancy * self.saas_fraction)
                .round() as usize;
        EndpointCatalog::evaluation(
            self.endpoint_count.max(1),
            self.requests_per_vm_per_minute,
            self.seed,
        )
        .scaled_to_total_vms(saas_target.max(self.endpoint_count.max(1)))
    }

    /// Generates the VM arrival stream (initial population followed by the sorted arrival
    /// process), scaled by `scale` for fleets of several sites. `scale = 1.0` reproduces
    /// the single-datacenter stream bit for bit, which is what keeps a pinned 1-site fleet
    /// digest-identical to [`crate::simulator::ClusterSimulator`].
    ///
    /// Together with [`Self::endpoint_catalog`] this is the single shared
    /// workload-generation path — `catalog` must come from that method on the *same*
    /// configuration (replayed external traces enter through
    /// [`crate::simulator::ClusterSimulator::with_arrivals`] instead).
    #[must_use]
    pub fn vm_stream(&self, catalog: &EndpointCatalog, scale: f64) -> Vec<Vm> {
        assert!(scale > 0.0, "arrival scale must be positive");
        debug_assert_eq!(
            catalog.len(),
            self.endpoint_count.max(1),
            "vm_stream must be fed the catalog produced by endpoint_catalog() on this \
             configuration — it is the single shared generation path"
        );
        let mut arrival_config = ArrivalConfig::evaluation_week(self.server_count());
        arrival_config.saas_fraction = self.saas_fraction;
        arrival_config.initial_population =
            (self.server_count() as f64 * self.initial_occupancy * scale).round() as usize;
        if let Some(rate) = self.arrivals_per_day {
            arrival_config.arrivals_per_day = rate;
        }
        arrival_config.arrivals_per_day *= scale;
        arrival_config.horizon = self.duration;
        VmArrivalGenerator::new(arrival_config, self.seed).generate(catalog)
    }
}

/// How a fleet splits each step's VM arrivals across its sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeoPolicy {
    /// Every arrival goes to one site. A pinned 1-site fleet (or a pinned site of a larger
    /// fleet) reproduces the single-datacenter simulation bit for bit.
    Pinned(usize),
    /// Deterministic weighted round-robin over the sites' [`SiteConfig::arrival_share`]s,
    /// oblivious to telemetry — the naive baseline geo routing is compared against.
    RoundRobin,
    /// TAPAS geo routing: steer each arrival to the site with the most power headroom and
    /// thermal slack, and shift load away from sites in power/thermal emergencies.
    Headroom,
}

impl GeoPolicy {
    /// Short label used in fleet reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            GeoPolicy::Pinned(site) => format!("Pinned({site})"),
            GeoPolicy::RoundRobin => "RoundRobin".to_string(),
            GeoPolicy::Headroom => "Headroom".to_string(),
        }
    }
}

/// One datacenter cell of a fleet: its physical layout, regional climate and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Human-readable site name (used in fleet reports).
    pub name: String,
    /// Physical layout of the site's datacenter.
    pub layout: LayoutConfig,
    /// Regional climate of the site.
    pub climate: Climate,
    /// Site seed: drives the site's weather trace, physics offsets and request draws.
    /// Distinct per site so site telemetry is statistically independent.
    pub seed: u64,
    /// Relative share of arrivals the site receives under [`GeoPolicy::RoundRobin`].
    pub arrival_share: f64,
}

/// A multi-datacenter experiment: the shared workload/policy shape plus one
/// [`SiteConfig`] per datacenter and the geo placement policy that splits arrivals.
///
/// By construction (`single_site`, `evaluation`) the base configuration's layout, climate
/// and seed equal site 0's, so the single-datacenter path is exactly the 1-site fleet and
/// existing digests are preserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Workload shape, scheduling policy, duration, step and failure schedule shared by
    /// every site (each site overrides layout, climate and seed from its [`SiteConfig`]).
    pub base: ExperimentConfig,
    /// The fleet's datacenters, in site-ordinal order.
    pub sites: Vec<SiteConfig>,
    /// How arrivals are split across sites.
    pub geo: GeoPolicy,
    /// Scales the fleet-wide arrival stream relative to what `base` alone would generate
    /// (`1.0` = the single-datacenter stream, `sites.len()` = a fleet-sized stream).
    pub arrival_scale: f64,
}

/// A named climate preset constructor, as cycled by `FleetConfig::evaluation`.
type ClimatePreset = (&'static str, fn() -> Climate);

/// The climate presets `FleetConfig::evaluation` cycles through, with their name suffixes.
const EVALUATION_CLIMATES: [ClimatePreset; 3] =
    [("hot", Climate::hot), ("temperate", Climate::temperate), ("cold", Climate::cold)];

impl FleetConfig {
    /// Expresses a single-datacenter experiment as a 1-site fleet. Running it produces a
    /// site report bit-identical to `ClusterSimulator::new(base).run()`.
    #[must_use]
    pub fn single_site(base: ExperimentConfig) -> Self {
        let site = SiteConfig {
            name: "site0".to_string(),
            layout: base.layout.clone(),
            climate: base.climate,
            seed: base.seed,
            arrival_share: 1.0,
        };
        Self { base, sites: vec![site], geo: GeoPolicy::Pinned(0), arrival_scale: 1.0 }
    }

    /// An evaluation fleet of `site_count` copies of `base`'s layout spread across the
    /// paper's three regional climates (hot, temperate, cold, cycling), with distinct
    /// per-site seeds, a fleet-sized arrival stream and TAPAS geo routing. Site 0 keeps
    /// `base`'s seed; `base.climate` is normalized to site 0's so the base-equals-site-0
    /// invariant holds.
    ///
    /// # Panics
    /// Panics if `site_count` is zero.
    #[must_use]
    pub fn evaluation(mut base: ExperimentConfig, site_count: usize) -> Self {
        assert!(site_count > 0, "a fleet needs at least one site");
        let sites: Vec<SiteConfig> = (0..site_count)
            .map(|site| {
                let (suffix, climate) = EVALUATION_CLIMATES[site % EVALUATION_CLIMATES.len()];
                SiteConfig {
                    name: format!("site{site}-{suffix}"),
                    layout: base.layout.clone(),
                    climate: climate(),
                    // Golden-ratio stride keeps per-site streams far apart; site 0 keeps
                    // the base seed.
                    seed: base
                        .seed
                        .wrapping_add((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    arrival_share: 1.0,
                }
            })
            .collect();
        base.climate = sites[0].climate;
        Self {
            base,
            sites,
            geo: GeoPolicy::Headroom,
            arrival_scale: site_count as f64,
        }
    }

    /// Returns a copy with a different geo policy (for baseline comparisons).
    #[must_use]
    pub fn with_geo(mut self, geo: GeoPolicy) -> Self {
        self.geo = geo;
        self
    }

    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The full [`ExperimentConfig`] of one site: the base with the site's layout,
    /// climate and seed substituted, and the fleet scenario reduced to the site's view
    /// ([`Scenario::for_site`] — events targeting other sites are dropped).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_experiment(&self, site: usize) -> ExperimentConfig {
        let ordinal = site;
        let site = &self.sites[site];
        let mut config = self.base.clone();
        config.layout = site.layout.clone();
        config.climate = site.climate;
        config.seed = site.seed;
        config.scenario = self.base.scenario.for_site(ordinal);
        config
    }

    /// Validates the cross-field invariants the simulator relies on: at least one site, a
    /// positive arrival scale, an in-range pinned site, valid arrival shares under
    /// [`GeoPolicy::RoundRobin`] (the only policy that consumes them), and the composed
    /// scenario's event and site-range invariants.
    ///
    /// # Errors
    /// Returns the first violated invariant as a [`ScenarioError`] — the single typed
    /// validation path for the whole experiment surface.
    pub fn check(&self) -> Result<(), ScenarioError> {
        if self.sites.is_empty() {
            return Err(ScenarioError::NoSites);
        }
        // NaN must fail too, so test the accepting range rather than its negation.
        if self.arrival_scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ScenarioError::NonPositiveArrivalScale { scale: self.arrival_scale });
        }
        if let GeoPolicy::Pinned(site) = self.geo {
            if site >= self.sites.len() {
                return Err(ScenarioError::PinnedSiteOutOfRange {
                    site,
                    sites: self.sites.len(),
                });
            }
        }
        if self.geo == GeoPolicy::RoundRobin {
            for (site, config) in self.sites.iter().enumerate() {
                if !config.arrival_share.is_finite() || config.arrival_share < 0.0 {
                    return Err(ScenarioError::InvalidArrivalShare {
                        site,
                        share: config.arrival_share,
                    });
                }
            }
            if !self.sites.iter().any(|s| s.arrival_share > 0.0) {
                return Err(ScenarioError::NoPositiveArrivalShare);
            }
        }
        self.base.scenario.validate(self.sites.len())
    }

    /// The dense per-step timeline one site runs under: the site view of the fleet
    /// scenario resolved against the base duration/step (used e.g. to price a site's
    /// power series via [`crate::scenario::energy_cost_usd`]).
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn site_timeline(&self, site: usize) -> ResolvedTimeline {
        self.site_experiment(site).resolved_timeline()
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_scale() {
        assert_eq!(ExperimentConfig::small_smoke_test().server_count(), 8);
        assert_eq!(ExperimentConfig::real_cluster_hour(Policy::Tapas).server_count(), 80);
        assert_eq!(ExperimentConfig::production_week(Policy::Tapas).server_count(), 1040);
        assert_eq!(ExperimentConfig::medium(Policy::Baseline).policy, Policy::Baseline);
    }

    #[test]
    fn saas_fraction_is_clamped() {
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(1.4);
        assert_eq!(config.saas_fraction, 1.0);
        let config = ExperimentConfig::small_smoke_test().with_saas_fraction(-0.2);
        assert_eq!(config.saas_fraction, 0.0);
    }

    #[test]
    fn evaluation_fleet_cycles_climates_with_distinct_seeds() {
        let fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 4);
        fleet.check().expect("evaluation preset is valid");
        assert_eq!(fleet.site_count(), 4);
        assert_eq!(fleet.geo, GeoPolicy::Headroom);
        assert_eq!(fleet.arrival_scale, 4.0);
        // Climates cycle hot/temperate/cold and the base is normalized to site 0.
        assert_eq!(fleet.sites[0].climate, Climate::hot());
        assert_eq!(fleet.sites[1].climate, Climate::temperate());
        assert_eq!(fleet.sites[2].climate, Climate::cold());
        assert_eq!(fleet.sites[3].climate, Climate::hot());
        assert_eq!(fleet.base.climate, Climate::hot());
        // Seeds are pairwise distinct and site 0 keeps the base seed.
        assert_eq!(fleet.sites[0].seed, fleet.base.seed);
        let mut seeds: Vec<u64> = fleet.sites.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
        // Site experiments carry the overrides.
        let site2 = fleet.site_experiment(2);
        assert_eq!(site2.climate, Climate::cold());
        assert_eq!(site2.seed, fleet.sites[2].seed);
        assert_eq!(site2.policy, fleet.base.policy);
    }

    #[test]
    fn single_site_fleet_mirrors_the_base() {
        let base = ExperimentConfig::real_cluster_hour(Policy::Tapas);
        let fleet = FleetConfig::single_site(base.clone());
        fleet.check().expect("single-site preset is valid");
        assert_eq!(fleet.site_count(), 1);
        assert_eq!(fleet.geo, GeoPolicy::Pinned(0));
        assert_eq!(fleet.arrival_scale, 1.0);
        assert_eq!(fleet.site_experiment(0), base);
    }

    #[test]
    fn pinned_site_out_of_range_fails_validation() {
        let error = FleetConfig::single_site(ExperimentConfig::small_smoke_test())
            .with_geo(GeoPolicy::Pinned(3))
            .check()
            .unwrap_err();
        assert_eq!(error, ScenarioError::PinnedSiteOutOfRange { site: 3, sites: 1 });
        assert!(error.to_string().contains("out of range"));
    }

    #[test]
    fn fleet_check_bounds_scenario_site_targets() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2);
        fleet.base.scenario = Scenario::builder()
            .grid_price(5, SimTime::ZERO, SimTime::from_hours(1), 200.0)
            .build()
            .expect("event invariants hold");
        assert_eq!(
            fleet.check().unwrap_err(),
            ScenarioError::SiteOutOfRange { event: 0, site: 5, sites: 2 }
        );
        fleet.base.scenario = Scenario::builder()
            .grid_price(1, SimTime::ZERO, SimTime::from_hours(1), 200.0)
            .build()
            .expect("event invariants hold");
        fleet.check().expect("in-range target is valid");
    }

    #[test]
    fn experiment_config_round_trips_through_json() {
        let mut config = ExperimentConfig::production_week(Policy::PlaceRoute);
        config.failures = FailureSchedule::none()
            .with_power_emergency(SimTime::from_hours(3), SimTime::from_hours(5));
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    fn configs_serialized_before_the_arrivals_field_still_deserialize() {
        let config = ExperimentConfig::small_smoke_test();
        let json = serde_json::to_string(&config).expect("serialize");
        // A pre-fleet-layer artifact has no `arrivals_per_day` key at all, and a
        // pre-scenario artifact no `scenario` key either.
        let legacy = json
            .replace("\"arrivals_per_day\":null,", "")
            .replace(&format!("\"scenario\":{},", scenario_json(&config.scenario)), "");
        assert_ne!(legacy, json, "test must actually strip the fields");
        assert!(!legacy.contains("scenario"), "scenario key must be stripped");
        let back: ExperimentConfig = serde_json::from_str(&legacy).expect("deserialize");
        assert_eq!(back, config);
    }

    fn scenario_json(scenario: &Scenario) -> String {
        serde_json::to_string(scenario).expect("serialize scenario")
    }

    #[test]
    fn disabled_fabric_leaves_config_artifacts_byte_free_of_the_key() {
        // The opt-in field must be invisible in pre-fabric artifacts: pinned goldens
        // serialized before the fabric existed stay bit-identical.
        let config = ExperimentConfig::small_smoke_test();
        let json = serde_json::to_string(&config).expect("serialize");
        assert!(!json.contains("request_fabric"), "disabled fabric must not serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    fn enabled_fabric_round_trips_through_json() {
        let config = ExperimentConfig::small_smoke_test().with_request_fabric(
            RequestFabricConfig { rate_scale: 2.5, ..RequestFabricConfig::default() },
        );
        let json = serde_json::to_string(&config).expect("serialize");
        assert!(json.ends_with("\"request_fabric\":{\"rate_scale\":2.5,\"slo_multiplier\":5}}"));
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    fn fault_policy_knobs_serialize_only_when_non_default_and_round_trip() {
        let config = ExperimentConfig::small_smoke_test().with_request_fabric(
            RequestFabricConfig {
                deadline_shedding: true,
                max_retries: 5,
                backoff_base_ms: 128,
                ..RequestFabricConfig::default()
            },
        );
        let json = serde_json::to_string(&config).expect("serialize");
        assert!(json.ends_with(
            "\"request_fabric\":{\"rate_scale\":1,\"slo_multiplier\":5,\
             \"deadline_shedding\":true,\"max_retries\":5,\"backoff_base_ms\":128}}"
        ));
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, config);
    }

    #[test]
    fn with_builders_compose_a_full_experiment() {
        let scenario = Scenario::builder()
            .heatwave(0..1, 6.0)
            .build()
            .expect("valid scenario");
        let config = ExperimentConfig::small_smoke_test()
            .with_policy(Policy::Tapas)
            .with_climate(Climate::cold())
            .with_duration(SimTime::from_hours(6))
            .with_step(SimDuration::from_minutes(10))
            .with_seed(99)
            .with_initial_occupancy(0.4)
            .with_arrivals_per_day(12.0)
            .with_scenario(scenario.clone());
        assert_eq!(config.policy, Policy::Tapas);
        assert_eq!(config.climate, Climate::cold());
        assert_eq!(config.duration, SimTime::from_hours(6));
        assert_eq!(config.step, SimDuration::from_minutes(10));
        assert_eq!(config.seed, 99);
        assert_eq!(config.initial_occupancy, 0.4);
        assert_eq!(config.arrivals_per_day, Some(12.0));
        assert_eq!(config.scenario, scenario);
        config.validate().expect("valid config");
        // Occupancy is clamped like the saas fraction.
        assert_eq!(
            ExperimentConfig::small_smoke_test().with_initial_occupancy(1.7).initial_occupancy,
            1.0
        );
    }

    #[test]
    fn site_experiment_reduces_the_scenario_to_the_site_view() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 3);
        fleet.base.scenario = Scenario::builder()
            .heatwave(0..1, 5.0)
            .grid_price(1, SimTime::ZERO, SimTime::from_hours(1), 250.0)
            .build()
            .expect("valid scenario");
        fleet.check().expect("valid fleet");
        assert_eq!(fleet.site_experiment(0).scenario.events.len(), 1);
        assert_eq!(fleet.site_experiment(1).scenario.events.len(), 2);
        assert!(fleet
            .site_experiment(1)
            .scenario
            .events
            .iter()
            .all(|e| e.site() == crate::scenario::SiteSelector::All));
    }

    #[test]
    fn legacy_failures_and_scenario_events_merge_in_the_resolved_timeline() {
        let start = SimTime::from_minutes(30);
        let end = SimTime::from_minutes(90);
        let config = ExperimentConfig::small_smoke_test()
            .with_failures(FailureSchedule::none().with_power_emergency(start, end))
            .with_scenario(Scenario::thermal_emergency(start, end));
        let timeline = config.resolved_timeline();
        assert_eq!(timeline.failures().windows().len(), 2);
        let state = timeline.failures().state_at(SimTime::from_minutes(60));
        assert!((state.global_cooling_fraction - 0.9).abs() < 1e-12);
        assert_eq!(state.failed_upses().len(), 1);
    }

    #[test]
    fn negative_arrival_share_fails_round_robin_validation() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2)
            .with_geo(GeoPolicy::RoundRobin);
        fleet.sites[0].arrival_share = -1.0;
        let error = fleet.check().unwrap_err();
        assert_eq!(error, ScenarioError::InvalidArrivalShare { site: 0, share: -1.0 });
        assert!(error.to_string().contains("finite and non-negative"));
    }

    #[test]
    fn nan_arrival_share_fails_round_robin_validation() {
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2)
            .with_geo(GeoPolicy::RoundRobin);
        fleet.sites[1].arrival_share = f64::NAN;
        assert!(matches!(
            fleet.check().unwrap_err(),
            ScenarioError::InvalidArrivalShare { site: 1, .. }
        ));
        fleet.sites[1].arrival_share = 1.0;
        fleet.sites[0].arrival_share = 0.0;
        fleet.check().expect("one positive share is enough");
        fleet.sites[1].arrival_share = 0.0;
        assert_eq!(fleet.check().unwrap_err(), ScenarioError::NoPositiveArrivalShare);
    }

    #[test]
    fn shares_are_ignored_by_policies_that_do_not_split_on_them() {
        // A Headroom fleet with all-zero shares is valid: shares only weight round-robin.
        let mut fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 2);
        for site in &mut fleet.sites {
            site.arrival_share = 0.0;
        }
        fleet.check().expect("headroom ignores shares");
        fleet.clone().with_geo(GeoPolicy::Pinned(0)).check().expect("pinned ignores shares");
    }

    #[test]
    fn fleet_config_round_trips_through_json() {
        for geo in [GeoPolicy::Pinned(1), GeoPolicy::RoundRobin, GeoPolicy::Headroom] {
            let fleet = FleetConfig::evaluation(ExperimentConfig::small_smoke_test(), 3)
                .with_geo(geo);
            let json = serde_json::to_string(&fleet).expect("serialize");
            let back: FleetConfig = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, fleet);
            // Reproducible artifact: re-serializing the round-tripped value is stable.
            assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
        }
    }

    #[test]
    fn fleet_arrival_stream_scales_and_matches_the_single_dc_stream_at_one() {
        let config = ExperimentConfig::small_smoke_test();
        let catalog = config.endpoint_catalog();
        let single = config.vm_stream(&catalog, 1.0);
        let again = config.vm_stream(&catalog, 1.0);
        assert_eq!(single, again, "stream generation must be deterministic");
        let tripled = config.vm_stream(&catalog, 3.0);
        assert!(tripled.len() > single.len() * 2, "scale must grow the stream");
    }

    #[test]
    fn oversubscription_adds_racks_but_keeps_budgets() {
        let base = ExperimentConfig::real_cluster_hour(Policy::Baseline);
        let over = base.clone().with_oversubscription(0.4);
        assert!(over.server_count() > base.server_count());
        // Budgets stay roughly the same: provisioning fraction × racks is constant.
        let base_budget = base.layout.racks_per_row as f64 * base.layout.row_power_provisioning;
        let over_budget = over.layout.racks_per_row as f64 * over.layout.row_power_provisioning;
        assert!((base_budget - over_budget).abs() < 1e-9);
        // Zero oversubscription changes nothing.
        let same = base.clone().with_oversubscription(0.0);
        assert_eq!(same.server_count(), base.server_count());
    }
}
