//! Per-run metrics report.

use serde::{Deserialize, Serialize};
use simkit::events::{EventKind, EventLog};
use simkit::series::TimeSeries;
use simkit::stats::Summary;
use simkit::time::{SimDuration, SimTime};

/// Everything a simulation run records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The policy label the run used.
    pub policy: String,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Maximum GPU temperature per step (°C).
    pub max_gpu_temp: TimeSeries,
    /// Peak row power per step (kW).
    pub peak_row_power: TimeSeries,
    /// Total datacenter power per step (kW).
    pub datacenter_power: TimeSeries,
    /// Mean SaaS instance utilization per step.
    pub saas_utilization: TimeSeries,
    /// Provisioned row power budget (kW) of the most-loaded row, for normalization.
    pub row_power_budget_kw: f64,
    /// GPU throttle temperature (°C), for normalization.
    pub gpu_throttle_temp_c: f64,
    /// Events recorded during the run (throttling, capping, reconfigurations, …).
    pub events: EventLog,
    /// Per-request latency factors observed (latency relative to the unloaded latency).
    pub latency_factors: Vec<f64>,
    /// Per-request result quality observed.
    pub request_quality: Vec<f64>,
    /// Total requests served.
    pub requests_served: u64,
    /// Requests that violated their latency SLO.
    pub slo_violations: u64,
}

impl RunReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(policy: &str, horizon: SimTime, step: SimDuration) -> Self {
        Self {
            policy: policy.to_string(),
            horizon,
            step,
            max_gpu_temp: TimeSeries::new("max GPU temperature (°C)"),
            peak_row_power: TimeSeries::new("peak row power (kW)"),
            datacenter_power: TimeSeries::new("datacenter power (kW)"),
            saas_utilization: TimeSeries::new("mean SaaS utilization"),
            row_power_budget_kw: 0.0,
            gpu_throttle_temp_c: 85.0,
            events: EventLog::new(),
            latency_factors: Vec::new(),
            request_quality: Vec::new(),
            requests_served: 0,
            slo_violations: 0,
        }
    }

    /// Peak of the maximum-GPU-temperature series over the whole run.
    #[must_use]
    pub fn peak_temperature_c(&self) -> f64 {
        self.max_gpu_temp.peak().unwrap_or(0.0)
    }

    /// Peak of the peak-row-power series over the whole run.
    #[must_use]
    pub fn peak_row_power_kw(&self) -> f64 {
        self.peak_row_power.peak().unwrap_or(0.0)
    }

    /// Peak row power normalized by the row budget.
    #[must_use]
    pub fn normalized_peak_power(&self) -> f64 {
        if self.row_power_budget_kw > 0.0 {
            self.peak_row_power_kw() / self.row_power_budget_kw
        } else {
            0.0
        }
    }

    /// Peak temperature normalized by the GPU throttle temperature.
    #[must_use]
    pub fn normalized_peak_temperature(&self) -> f64 {
        if self.gpu_throttle_temp_c > 0.0 {
            self.peak_temperature_c() / self.gpu_throttle_temp_c
        } else {
            0.0
        }
    }

    /// Fraction of steps during which at least one GPU was thermally throttled.
    #[must_use]
    pub fn thermal_capped_time_fraction(&self) -> f64 {
        self.events
            .fraction_of_time(EventKind::ThermalThrottle, self.horizon, self.step)
    }

    /// Fraction of steps during which at least one power-hierarchy level was capped.
    #[must_use]
    pub fn power_capped_time_fraction(&self) -> f64 {
        self.events.fraction_of_time(EventKind::PowerCap, self.horizon, self.step)
    }

    /// P99 of the observed latency factors (1.0 = unloaded latency; the SLO is 5.0).
    #[must_use]
    pub fn p99_latency_factor(&self) -> f64 {
        simkit::stats::percentile(&self.latency_factors, 99.0).unwrap_or(1.0)
    }

    /// Fraction of requests that met the latency SLO.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.requests_served == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.requests_served as f64
        }
    }

    /// Mean result quality across requests (1.0 when every request hit the full-size model).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        simkit::stats::mean(&self.request_quality).unwrap_or(1.0)
    }

    /// Summary of the maximum-temperature series.
    ///
    /// # Panics
    /// Panics if the run recorded no steps.
    #[must_use]
    pub fn temperature_summary(&self) -> Summary {
        self.max_gpu_temp.summary()
    }

    /// One-line textual summary used by the bench harnesses.
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "{:<14} peak_temp={:6.1}C peak_row_power={:7.1}kW norm_power={:5.3} thermal_capped={:6.3}% power_capped={:6.3}% p99_latency={:5.2}x quality={:5.3}",
            self.policy,
            self.peak_temperature_c(),
            self.peak_row_power_kw(),
            self.normalized_peak_power(),
            self.thermal_capped_time_fraction() * 100.0,
            self.power_capped_time_fraction() * 100.0,
            self.p99_latency_factor(),
            self.mean_quality(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::events::Event;

    fn report_with_data() -> RunReport {
        let mut report = RunReport::new(
            "TAPAS",
            SimTime::from_minutes(20),
            SimDuration::from_minutes(5),
        );
        report.row_power_budget_kw = 200.0;
        for i in 0..4u64 {
            let t = SimTime::from_minutes(i * 5);
            report.max_gpu_temp.push(t, 60.0 + i as f64);
            report.peak_row_power.push(t, 150.0 + i as f64 * 10.0);
            report.datacenter_power.push(t, 400.0);
            report.saas_utilization.push(t, 0.5);
        }
        report.events.record(Event {
            time: SimTime::from_minutes(5),
            kind: EventKind::ThermalThrottle,
            entity: "server-1".into(),
            magnitude: 2.0,
            detail: String::new(),
        });
        report.latency_factors = vec![1.0, 1.2, 2.0, 8.0];
        report.request_quality = vec![1.0, 1.0, 0.72, 1.0];
        report.requests_served = 4;
        report.slo_violations = 1;
        report
    }

    #[test]
    fn aggregates_are_consistent() {
        let report = report_with_data();
        assert_eq!(report.peak_temperature_c(), 63.0);
        assert_eq!(report.peak_row_power_kw(), 180.0);
        assert!((report.normalized_peak_power() - 0.9).abs() < 1e-12);
        assert!((report.normalized_peak_temperature() - 63.0 / 85.0).abs() < 1e-12);
        assert!((report.thermal_capped_time_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(report.power_capped_time_fraction(), 0.0);
        assert!((report.slo_attainment() - 0.75).abs() < 1e-12);
        assert!((report.mean_quality() - 0.93).abs() < 1e-12);
        assert!(report.p99_latency_factor() > 7.0);
        assert_eq!(report.temperature_summary().count, 4);
        let line = report.one_liner();
        assert!(line.contains("TAPAS"));
        assert!(line.contains("peak_temp"));
    }

    #[test]
    fn empty_report_defaults() {
        let report = RunReport::new("Baseline", SimTime::from_hours(1), SimDuration::from_minutes(5));
        assert_eq!(report.peak_temperature_c(), 0.0);
        assert_eq!(report.normalized_peak_power(), 0.0);
        assert_eq!(report.slo_attainment(), 1.0);
        assert_eq!(report.mean_quality(), 1.0);
        assert_eq!(report.p99_latency_factor(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let report = report_with_data();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.requests_served, report.requests_served);
    }
}
