//! Per-run metrics reports: one [`RunReport`] per datacenter, aggregated fleet-wide by
//! [`FleetReport`] (site vectors in site-ordinal order, mirroring the dense-grid contract).

use serde::{Deserialize, Serialize};
use simkit::events::{EventKind, EventLog};
use simkit::series::TimeSeries;
use simkit::stats::Summary;
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Everything a simulation run records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The policy label the run used.
    pub policy: String,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Step length.
    pub step: SimDuration,
    /// Maximum GPU temperature per step (°C).
    pub max_gpu_temp: TimeSeries,
    /// Peak row power per step (kW).
    pub peak_row_power: TimeSeries,
    /// Total datacenter power per step (kW).
    pub datacenter_power: TimeSeries,
    /// Mean SaaS instance utilization per step.
    pub saas_utilization: TimeSeries,
    /// Provisioned row power budget (kW) of the most-loaded row, for normalization.
    pub row_power_budget_kw: f64,
    /// GPU throttle temperature (°C), for normalization.
    pub gpu_throttle_temp_c: f64,
    /// Events recorded during the run (throttling, capping, reconfigurations, …).
    pub events: EventLog,
    /// Per-request latency factors observed (latency relative to the unloaded latency).
    pub latency_factors: Vec<f64>,
    /// Per-request result quality observed.
    pub request_quality: Vec<f64>,
    /// Total requests served.
    pub requests_served: u64,
    /// Requests that violated their latency SLO.
    pub slo_violations: u64,
}

impl RunReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(policy: &str, horizon: SimTime, step: SimDuration) -> Self {
        Self {
            policy: policy.to_string(),
            horizon,
            step,
            max_gpu_temp: TimeSeries::new("max GPU temperature (°C)"),
            peak_row_power: TimeSeries::new("peak row power (kW)"),
            datacenter_power: TimeSeries::new("datacenter power (kW)"),
            saas_utilization: TimeSeries::new("mean SaaS utilization"),
            row_power_budget_kw: 0.0,
            gpu_throttle_temp_c: 85.0,
            events: EventLog::new(),
            latency_factors: Vec::new(),
            request_quality: Vec::new(),
            requests_served: 0,
            slo_violations: 0,
        }
    }

    /// Peak of the maximum-GPU-temperature series over the whole run.
    #[must_use]
    pub fn peak_temperature_c(&self) -> f64 {
        self.max_gpu_temp.peak().unwrap_or(0.0)
    }

    /// Peak of the peak-row-power series over the whole run.
    #[must_use]
    pub fn peak_row_power_kw(&self) -> f64 {
        self.peak_row_power.peak().unwrap_or(0.0)
    }

    /// Peak row power normalized by the row budget.
    #[must_use]
    pub fn normalized_peak_power(&self) -> f64 {
        if self.row_power_budget_kw > 0.0 {
            self.peak_row_power_kw() / self.row_power_budget_kw
        } else {
            0.0
        }
    }

    /// Peak temperature normalized by the GPU throttle temperature.
    #[must_use]
    pub fn normalized_peak_temperature(&self) -> f64 {
        if self.gpu_throttle_temp_c > 0.0 {
            self.peak_temperature_c() / self.gpu_throttle_temp_c
        } else {
            0.0
        }
    }

    /// Fraction of steps during which at least one GPU was thermally throttled.
    #[must_use]
    pub fn thermal_capped_time_fraction(&self) -> f64 {
        self.events
            .fraction_of_time(EventKind::ThermalThrottle, self.horizon, self.step)
    }

    /// Fraction of steps during which at least one power-hierarchy level was capped.
    #[must_use]
    pub fn power_capped_time_fraction(&self) -> f64 {
        self.events.fraction_of_time(EventKind::PowerCap, self.horizon, self.step)
    }

    /// Largest number of SLO-violation events logged in any single step — the
    /// "worst-step SLO" robustness metric of the scenario sweep. A run can keep mean
    /// attainment high while a single emergency step craters; this catches that step.
    #[must_use]
    pub fn worst_step_slo_violations(&self) -> usize {
        let step_minutes = self.step.as_minutes().max(1);
        let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
        for event in self.events.of_kind(EventKind::SloViolation) {
            *buckets.entry(event.time.as_minutes() / step_minutes).or_insert(0) += 1;
        }
        buckets.values().copied().max().unwrap_or(0)
    }

    /// Minute of the last thermal-throttle or power-cap event, if any. The scenario
    /// sweep compares it against the scenario's last emergency window
    /// ([`crate::scenario::Scenario::last_emergency_end`]) to measure how long a policy
    /// keeps struggling after the emergency itself has passed.
    #[must_use]
    pub fn last_stress_event_minute(&self) -> Option<u64> {
        [EventKind::ThermalThrottle, EventKind::PowerCap]
            .into_iter()
            .flat_map(|kind| self.events.of_kind(kind))
            .map(|event| event.time.as_minutes())
            .max()
    }

    /// P99 of the observed latency factors (1.0 = unloaded latency; the SLO is 5.0).
    #[must_use]
    pub fn p99_latency_factor(&self) -> f64 {
        simkit::stats::percentile(&self.latency_factors, 99.0).unwrap_or(1.0)
    }

    /// Fraction of requests that met the latency SLO.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.requests_served == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.requests_served as f64
        }
    }

    /// Mean result quality across requests (1.0 when every request hit the full-size model).
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        simkit::stats::mean(&self.request_quality).unwrap_or(1.0)
    }

    /// Summary of the maximum-temperature series.
    ///
    /// # Panics
    /// Panics if the run recorded no steps.
    #[must_use]
    pub fn temperature_summary(&self) -> Summary {
        self.max_gpu_temp.summary()
    }

    /// One-line textual summary used by the bench harnesses.
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "{:<14} peak_temp={:6.1}C peak_row_power={:7.1}kW norm_power={:5.3} thermal_capped={:6.3}% power_capped={:6.3}% p99_latency={:5.2}x quality={:5.3}",
            self.policy,
            self.peak_temperature_c(),
            self.peak_row_power_kw(),
            self.normalized_peak_power(),
            self.thermal_capped_time_fraction() * 100.0,
            self.power_capped_time_fraction() * 100.0,
            self.p99_latency_factor(),
            self.mean_quality(),
        )
    }
}

/// Everything a fleet run records: one full [`RunReport`] per site plus the geo routing
/// bookkeeping, with fleet-wide aggregates derived on demand.
///
/// All per-site vectors are indexed by site ordinal (the order of
/// [`crate::experiment::FleetConfig::sites`]), so consumers can zip them against the
/// fleet configuration without any map lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Label of the geo policy that split the arrivals.
    pub geo: String,
    /// Site names, by site ordinal.
    pub site_names: Vec<String>,
    /// Per-site run reports, by site ordinal.
    pub sites: Vec<RunReport>,
    /// VM arrivals routed to each site, by site ordinal.
    pub vms_routed: Vec<u64>,
    /// Arrivals steered to a healthy site while at least one site was in a power or
    /// thermal emergency.
    pub emergency_diversions: u64,
}

impl FleetReport {
    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total requests served fleet-wide.
    #[must_use]
    pub fn total_requests_served(&self) -> u64 {
        self.sites.iter().map(|s| s.requests_served).sum()
    }

    /// Total VM arrivals the fleet routed.
    #[must_use]
    pub fn total_vms_routed(&self) -> u64 {
        self.vms_routed.iter().sum()
    }

    /// Thermal throttle events summed over sites.
    #[must_use]
    pub fn thermal_throttle_events(&self) -> usize {
        self.sites.iter().map(|s| s.events.count(EventKind::ThermalThrottle)).sum()
    }

    /// Power capping events summed over sites.
    #[must_use]
    pub fn power_cap_events(&self) -> usize {
        self.sites.iter().map(|s| s.events.count(EventKind::PowerCap)).sum()
    }

    /// Site-minutes spent with at least one power-capped hierarchy level, summed over
    /// sites.
    #[must_use]
    pub fn power_capped_minutes(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.power_capped_time_fraction() * s.horizon.as_minutes() as f64)
            .sum()
    }

    /// Site-minutes spent with at least one thermally throttled GPU, summed over sites.
    #[must_use]
    pub fn thermal_throttled_minutes(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.thermal_capped_time_fraction() * s.horizon.as_minutes() as f64)
            .sum()
    }

    /// Largest number of SLO-violation events logged in any single step, fleet-wide
    /// (per-step counts sum across sites before taking the worst step).
    #[must_use]
    pub fn worst_step_slo_violations(&self) -> usize {
        let mut buckets: BTreeMap<u64, usize> = BTreeMap::new();
        for site in &self.sites {
            let step_minutes = site.step.as_minutes().max(1);
            for event in site.events.of_kind(EventKind::SloViolation) {
                *buckets.entry(event.time.as_minutes() / step_minutes).or_insert(0) += 1;
            }
        }
        buckets.values().copied().max().unwrap_or(0)
    }

    /// Minute of the last thermal-throttle or power-cap event across the fleet, if any.
    #[must_use]
    pub fn last_stress_event_minute(&self) -> Option<u64> {
        self.sites.iter().filter_map(RunReport::last_stress_event_minute).max()
    }

    /// The hottest GPU temperature any site reached.
    #[must_use]
    pub fn peak_temperature_c(&self) -> f64 {
        self.sites.iter().map(RunReport::peak_temperature_c).fold(0.0, f64::max)
    }

    /// Mean result quality across every request the fleet served.
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        let count: usize = self.sites.iter().map(|s| s.request_quality.len()).sum();
        if count == 0 {
            return 1.0;
        }
        let sum: f64 = self
            .sites
            .iter()
            .flat_map(|s| s.request_quality.iter())
            .sum();
        sum / count as f64
    }

    /// Fraction of requests fleet-wide that met the latency SLO.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        let served = self.total_requests_served();
        if served == 0 {
            return 1.0;
        }
        let violations: u64 = self.sites.iter().map(|s| s.slo_violations).sum();
        1.0 - violations as f64 / served as f64
    }

    /// One-line textual summary used by the bench harnesses and examples.
    #[must_use]
    pub fn one_liner(&self) -> String {
        format!(
            "fleet[{}] geo={:<10} routed={:?} throttle_events={} cap_events={} capped_minutes={:.0} peak_temp={:.1}C quality={:.3}",
            self.site_count(),
            self.geo,
            self.vms_routed,
            self.thermal_throttle_events(),
            self.power_cap_events(),
            self.power_capped_minutes(),
            self.peak_temperature_c(),
            self.mean_quality(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::events::Event;

    fn report_with_data() -> RunReport {
        let mut report = RunReport::new(
            "TAPAS",
            SimTime::from_minutes(20),
            SimDuration::from_minutes(5),
        );
        report.row_power_budget_kw = 200.0;
        for i in 0..4u64 {
            let t = SimTime::from_minutes(i * 5);
            report.max_gpu_temp.push(t, 60.0 + i as f64);
            report.peak_row_power.push(t, 150.0 + i as f64 * 10.0);
            report.datacenter_power.push(t, 400.0);
            report.saas_utilization.push(t, 0.5);
        }
        report.events.record(Event {
            time: SimTime::from_minutes(5),
            kind: EventKind::ThermalThrottle,
            entity: "server-1".into(),
            magnitude: 2.0,
            detail: String::new(),
        });
        report.latency_factors = vec![1.0, 1.2, 2.0, 8.0];
        report.request_quality = vec![1.0, 1.0, 0.72, 1.0];
        report.requests_served = 4;
        report.slo_violations = 1;
        report
    }

    #[test]
    fn aggregates_are_consistent() {
        let report = report_with_data();
        assert_eq!(report.peak_temperature_c(), 63.0);
        assert_eq!(report.peak_row_power_kw(), 180.0);
        assert!((report.normalized_peak_power() - 0.9).abs() < 1e-12);
        assert!((report.normalized_peak_temperature() - 63.0 / 85.0).abs() < 1e-12);
        assert!((report.thermal_capped_time_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(report.power_capped_time_fraction(), 0.0);
        assert!((report.slo_attainment() - 0.75).abs() < 1e-12);
        assert!((report.mean_quality() - 0.93).abs() < 1e-12);
        assert!(report.p99_latency_factor() > 7.0);
        assert_eq!(report.temperature_summary().count, 4);
        let line = report.one_liner();
        assert!(line.contains("TAPAS"));
        assert!(line.contains("peak_temp"));
    }

    #[test]
    fn worst_step_slo_and_last_stress_event_bucket_the_event_log() {
        let mut report = report_with_data();
        assert_eq!(report.worst_step_slo_violations(), 0);
        assert_eq!(report.last_stress_event_minute(), Some(5));
        // Two violations in the step starting at minute 10, one at minute 15.
        for minute in [10, 12, 15] {
            report.events.record(Event {
                time: SimTime::from_minutes(minute),
                kind: EventKind::SloViolation,
                entity: "vm-1".into(),
                magnitude: 6.0,
                detail: String::new(),
            });
        }
        report.events.record(Event {
            time: SimTime::from_minutes(15),
            kind: EventKind::PowerCap,
            entity: "row-0".into(),
            magnitude: 1.1,
            detail: String::new(),
        });
        assert_eq!(report.worst_step_slo_violations(), 2);
        assert_eq!(report.last_stress_event_minute(), Some(15));

        // Fleet-wide, the per-step counts of the two identical sites add up.
        let fleet = FleetReport {
            geo: "Headroom".to_string(),
            site_names: vec!["a".to_string(), "b".to_string()],
            sites: vec![report.clone(), report],
            vms_routed: vec![1, 1],
            emergency_diversions: 0,
        };
        assert_eq!(fleet.worst_step_slo_violations(), 4);
        assert_eq!(fleet.last_stress_event_minute(), Some(15));
    }

    #[test]
    fn empty_report_defaults() {
        let report = RunReport::new("Baseline", SimTime::from_hours(1), SimDuration::from_minutes(5));
        assert_eq!(report.peak_temperature_c(), 0.0);
        assert_eq!(report.normalized_peak_power(), 0.0);
        assert_eq!(report.slo_attainment(), 1.0);
        assert_eq!(report.mean_quality(), 1.0);
        assert_eq!(report.p99_latency_factor(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let report = report_with_data();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.requests_served, report.requests_served);
    }

    #[test]
    fn fleet_report_aggregates_across_sites() {
        let fleet = FleetReport {
            geo: "Headroom".to_string(),
            site_names: vec!["site0-hot".to_string(), "site1-cold".to_string()],
            sites: vec![report_with_data(), report_with_data()],
            vms_routed: vec![3, 5],
            emergency_diversions: 2,
        };
        assert_eq!(fleet.site_count(), 2);
        assert_eq!(fleet.total_requests_served(), 8);
        assert_eq!(fleet.total_vms_routed(), 8);
        assert_eq!(fleet.thermal_throttle_events(), 2);
        assert_eq!(fleet.power_cap_events(), 0);
        // Each site: 25 % of a 20-minute horizon throttled -> 5 site-minutes, 10 fleet-wide.
        assert!((fleet.thermal_throttled_minutes() - 10.0).abs() < 1e-9);
        assert_eq!(fleet.power_capped_minutes(), 0.0);
        assert_eq!(fleet.peak_temperature_c(), 63.0);
        assert!((fleet.mean_quality() - 0.93).abs() < 1e-12);
        assert!((fleet.slo_attainment() - 0.75).abs() < 1e-12);
        let line = fleet.one_liner();
        assert!(line.contains("fleet[2]") && line.contains("Headroom"));

        let json = serde_json::to_string(&fleet).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.site_names, fleet.site_names);
        assert_eq!(back.vms_routed, fleet.vms_routed);
        assert_eq!(back.emergency_diversions, 2);
    }
}
